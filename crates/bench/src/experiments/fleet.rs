//! Fleet: N concurrent synthetic sessions through the sharded
//! multi-session serving plane with batched RF inference.
//!
//! Not a paper figure — this is the serving experiment backing
//! `crates/fleet`: a population of distinct synthetic users (staggered
//! arrivals, the standard fault schedule on a subset) streams through a
//! sharded [`Fleet`], and the run must (a) stay bit-identical to N solo
//! [`StreamingEngine`] sessions, (b) admit every session with nothing
//! shed, and (c) exercise the batched classification path. Reported
//! figures: sessions per core, aggregate push p99, batched-vs-unbatched
//! speedup, and drain fairness under a deliberately hot shard.

use crate::context::{Context, Scale};
use crate::error::BenchError;
use crate::report::Report;
use airfinger_core::config::AirFingerConfig;
use airfinger_core::engine::StreamingEngine;
use airfinger_core::events::Recognition;
use airfinger_core::pipeline::AirFinger;
use airfinger_fleet::{drive, generate_population, Fleet, FleetConfig, PopulationSpec};
use airfinger_obs::monitor::with_horizon;
use airfinger_synth::dataset::{generate_corpus, generate_nongesture_corpus, CorpusSpec};
use std::sync::Arc;

/// Shards in the main run; also the hot-shard stride in the fairness run.
const SHARDS: usize = 8;

/// Samples fed per session per round by the population driver. The drain
/// quantum is twice this, so queues stay bounded without shedding.
const CHUNK: usize = 50;

/// Run the experiment.
///
/// # Errors
///
/// Propagates training, engine and fleet failures; fails when the fleet
/// violates the serving contract (shed sessions, missing batches, or any
/// divergence from the solo-session baseline).
pub fn run(ctx: &Context) -> Result<Report, BenchError> {
    let mut report = Report::new(
        "fleet",
        "sharded multi-session serving with batched RF inference",
    );
    let (sessions, samples) = match ctx.scale {
        Scale::Quick => (64, 600),
        Scale::Standard => (96, 1000),
        Scale::Full => (128, 1500),
    };

    // A compact pipeline with the non-gesture filter live (soak-style), so
    // the batched path also exercises rejections.
    let spec = CorpusSpec {
        users: 2,
        sessions: 2,
        reps: ctx.scale.scaled(10),
        seed: ctx.seed + 177,
        ..Default::default()
    };
    let non_spec = CorpusSpec {
        reps: ctx.scale.scaled(30),
        ..spec.clone()
    };
    let corpus = generate_corpus(&spec);
    let non = generate_nongesture_corpus(&non_spec);
    let mut af = AirFinger::new(AirFingerConfig {
        forest_trees: ctx.config.forest_trees.min(40),
        ..ctx.config
    });
    af.train_on_corpus(&corpus, Some(&non))?;
    let pipeline = Arc::new(af);

    // The scripted population: distinct user profiles cycled over session
    // ordinals, staggered arrivals, faults on every 16th session.
    let pop = PopulationSpec {
        sessions,
        samples_per_session: samples,
        users: ctx.scale.users(),
        seed: ctx.seed + 177,
        fault_every: 16,
        arrival_stagger_rounds: 1,
        chunk: CHUNK,
    };
    let gen_threads = airfinger_parallel::effective_threads(match ctx.config.n_threads {
        0 => None,
        n => Some(n),
    });
    let traces = generate_population(&pop, gen_threads);
    let channels = traces
        .first()
        .ok_or(BenchError::EmptyResult("empty population"))?
        .channel_count();
    let ids: Vec<u64> = (0..sessions as u64).collect();
    let horizon = samples / 5;

    // Unbatched sequential baseline: N solo engines, one after another,
    // same shared pipeline, same per-session monitor.
    let mut baseline: Vec<Vec<Recognition>> = Vec::with_capacity(sessions);
    let baseline_span = airfinger_obs::span!("fleet_baseline_seconds");
    for trace in &traces {
        let mut engine = StreamingEngine::with_shared(Arc::clone(&pipeline), channels)?;
        engine.attach_monitor(with_horizon(horizon));
        let mut log = Vec::new();
        let mut sample = vec![0.0; channels];
        for i in 0..trace.len() {
            for (k, v) in sample.iter_mut().enumerate() {
                *v = trace.channel(k)[i];
            }
            // Error-skip semantics match the fleet, which counts a failed
            // recognition against the session and keeps streaming.
            if let Ok(Some(event)) = engine.push(&sample) {
                log.push(event);
            }
        }
        if let Ok(Some(event)) = engine.flush() {
            log.push(event);
        }
        baseline.push(log);
    }
    let baseline_s = baseline_span.elapsed_s();
    drop(baseline_span);

    // The fleet run proper: sharded, batched, monitored.
    let config = FleetConfig {
        shards: SHARDS,
        sessions_per_shard: sessions.div_ceil(SHARDS),
        queue_capacity: 8 * CHUNK,
        quantum: 2 * CHUNK,
        monitor_horizon: horizon,
        threads: ctx.config.n_threads,
    };
    let mut fleet =
        Fleet::new(Arc::clone(&pipeline), channels, config).map_err(BenchError::Fleet)?;
    let drive_span = airfinger_obs::span!("fleet_drive_seconds");
    let driven = drive(&mut fleet, &ids, &traces, &pop).map_err(BenchError::Fleet)?;
    fleet.flush_sessions();
    let fleet_s = drive_span.elapsed_s();
    drop(drive_span);

    // Serving contract: everyone admitted, nobody shed, batching engaged.
    if fleet.admitted() != sessions as u64 || fleet.shed() != 0 {
        return Err(BenchError::Contract(format!(
            "expected {sessions} admitted / 0 shed, got {} / {}",
            fleet.admitted(),
            fleet.shed()
        )));
    }
    if fleet.batches() == 0 {
        return Err(BenchError::Contract(
            "no batched classification pass ran".into(),
        ));
    }
    // Identity contract: every fleet session's event log is bit-identical
    // to its solo baseline.
    for (id, expected) in ids.iter().zip(&baseline) {
        let got = fleet.session_recognitions(*id).unwrap_or(&[]);
        if got != expected.as_slice() {
            return Err(BenchError::Contract(format!(
                "session {id} diverged from its solo baseline \
                 ({} vs {} events)",
                got.len(),
                expected.len()
            )));
        }
    }

    let rollup = fleet.rollup();
    let (healthy, degraded, unhealthy) = rollup.health_counts();
    let round_threads = airfinger_parallel::effective_threads(match ctx.config.n_threads {
        0 => None,
        n => Some(n),
    })
    .min(SHARDS);
    let speedup = if fleet_s > 0.0 {
        baseline_s / fleet_s
    } else {
        0.0
    };

    // Fairness under a hot shard: 16 sessions all hashed onto shard 0,
    // fully queued up front, drained for a fixed number of rounds — the
    // per-session quantum must keep drain progress even.
    let hot = FleetConfig {
        shards: SHARDS,
        sessions_per_shard: 16,
        queue_capacity: samples,
        quantum: 32,
        monitor_horizon: 0,
        threads: ctx.config.n_threads,
    };
    let mut hot_fleet =
        Fleet::new(Arc::clone(&pipeline), channels, hot).map_err(BenchError::Fleet)?;
    let hot_ids: Vec<u64> = (0..16).map(|i| i * SHARDS as u64).collect();
    let mut sample = vec![0.0; channels];
    for (id, trace) in hot_ids.iter().zip(&traces) {
        hot_fleet.admit(*id).map_err(BenchError::Fleet)?;
        for i in 0..trace.len() {
            for (k, v) in sample.iter_mut().enumerate() {
                *v = trace.channel(k)[i];
            }
            hot_fleet.enqueue(*id, &sample).map_err(BenchError::Fleet)?;
        }
    }
    for _ in 0..8 {
        let _ = hot_fleet.run_round().map_err(BenchError::Fleet)?;
    }
    let drained: Vec<u64> = hot_ids
        .iter()
        .filter_map(|id| hot_fleet.session_samples_processed(*id))
        .collect();
    let fairness = match (drained.iter().min(), drained.iter().max()) {
        (Some(&min), Some(&max)) if max > 0 => min as f64 / max as f64,
        _ => 0.0,
    };
    if fairness < 0.5 {
        return Err(BenchError::Contract(format!(
            "hot-shard drain unfair: min/max processed ratio {fairness:.2}"
        )));
    }

    report.line(format!(
        "{sessions} sessions x {samples} samples over {SHARDS} shards \
         ({} per shard), {} rounds, {} fed",
        config.sessions_per_shard, driven.rounds, driven.fed
    ));
    report.line(format!(
        "batched {} windows in {} passes; all sessions bit-identical to solo baseline",
        fleet.batched_windows(),
        fleet.batches()
    ));
    report.line(format!(
        "health rollup: {healthy} healthy / {degraded} degraded / {unhealthy} unhealthy \
         (worst {})",
        rollup.worst
    ));
    if fleet_s > 0.0 && baseline_s > 0.0 {
        report.line(format!(
            "fleet {fleet_s:.2}s vs sequential baseline {baseline_s:.2}s \
             ({speedup:.2}x, {:.1} sessions/core on {round_threads} worker(s))",
            sessions as f64 / round_threads as f64
        ));
    }
    report.line(format!(
        "hot shard: 16 sessions on one shard, min/max drain ratio {fairness:.2}"
    ));

    report.metric("sessions", sessions as f64);
    report.metric("samples_per_session", samples as f64);
    report.metric("rounds", driven.rounds as f64);
    report.metric("batches", fleet.batches() as f64);
    report.metric("batched_windows", fleet.batched_windows() as f64);
    report.metric("sessions_admitted", fleet.admitted() as f64);
    report.metric("sessions_shed", fleet.shed() as f64);
    report.metric("sessions_per_core", sessions as f64 / round_threads as f64);
    report.metric("batched_speedup", speedup);
    report.metric("hot_shard_fairness", fairness);
    report.metric("health_degraded", degraded as f64);
    report.metric("health_unhealthy", unhealthy as f64);

    // Aggregate push p99 across every session of the main run, from the
    // fleet's own latency histogram.
    if airfinger_obs::recording() {
        let snapshot = airfinger_obs::global().snapshot();
        let push = snapshot
            .histogram("fleet_push_seconds", &[])
            .ok_or(BenchError::EmptyResult("fleet_push_seconds histogram"))?;
        let p99_us = push.percentiles.p99 * 1e6;
        report.line(format!(
            "aggregate push p99 {p99_us:.2} µs over {} pushes",
            push.count
        ));
        report.metric("push_p99_us", p99_us);
        if !p99_us.is_finite() || p99_us <= 0.0 {
            return Err(BenchError::Contract(
                "aggregate push p99 must be positive".into(),
            ));
        }
    }
    Ok(report)
}
