//! Profile: per-stage cost attribution and allocation accounting for the
//! streaming hot path.
//!
//! Not a paper figure — this is the measurement substrate for the speed
//! arc (ROADMAP item 2, "zero-alloc, branchless hot path"): a
//! single-threaded continuous session streams through a bare
//! [`StreamingEngine`] with the span profiler enabled, and the report
//! breaks the cost down by call path — self vs. cumulative nanoseconds
//! per pipeline stage, frames per stage, and allocation events/bytes per
//! push (when the `repro` binary's counting allocator is active).
//!
//! Everything except the `_ns`/throughput fields is a deterministic
//! function of `(scale, seed)`: frame counts, path sets, recognition
//! splits, and allocs-per-push are identical across `--threads` settings
//! and across runs, which is what lets `repro diff` ratchet against this
//! report. The profiler snapshot is scoped to this experiment's root
//! span, so experiments running concurrently in the same process cannot
//! leak frames into the breakdown.

use crate::context::Context;
use crate::error::BenchError;
use crate::report::Report;
use airfinger_core::config::AirFingerConfig;
use airfinger_core::engine::StreamingEngine;
use airfinger_core::pipeline::AirFinger;
use airfinger_obs::{alloc, profile};
use airfinger_synth::dataset::{generate_corpus, generate_nongesture_corpus, CorpusSpec};
use airfinger_synth::session::{generate_session, SessionSpec};

/// Root span around the streaming loop; the profiler snapshot is scoped
/// to the subtree under this path.
const ROOT: &str = "profile_stream_seconds";

/// The pipeline stages attributed in the breakdown. The streaming
/// engine computes SBC/threshold/segmentation incrementally (no span
/// per sample — that would be pure overhead), so the first three are
/// attributed by a batch analysis pass over the same trace inside the
/// root span; the rest fire per classified window on both paths.
const STAGES: [&str; 8] = [
    "sbc",
    "threshold",
    "segment",
    "filter",
    "features",
    "rf_predict",
    "zebra",
    "distinguish",
];

/// Run the experiment.
///
/// # Errors
///
/// Propagates training and engine failures; fails when the profiler
/// breakdown violates its structural contract (missing push path or
/// frame-count mismatch) while recording is on.
pub fn run(ctx: &Context) -> Result<Report, BenchError> {
    let mut report = Report::new(
        "profile",
        "per-stage cost attribution and allocation accounting",
    );
    let samples = match ctx.scale {
        crate::context::Scale::Quick => 4_000,
        crate::context::Scale::Standard => 10_000,
        crate::context::Scale::Full => 20_000,
    };

    // Same compact training recipe as the soak (distinct seed stream),
    // with the non-gesture filter live so the rejection stages appear in
    // the breakdown.
    let spec = CorpusSpec {
        users: 2,
        sessions: 2,
        reps: ctx.scale.scaled(10),
        seed: ctx.seed + 97,
        ..Default::default()
    };
    let non_spec = CorpusSpec {
        reps: ctx.scale.scaled(30),
        ..spec.clone()
    };
    let corpus = generate_corpus(&spec);
    let non = generate_nongesture_corpus(&non_spec);
    let mut af = AirFinger::new(AirFingerConfig {
        forest_trees: ctx.config.forest_trees.min(40),
        ..ctx.config
    });
    af.train_on_corpus(&corpus, Some(&non))?;

    let session = SessionSpec {
        samples,
        seed: ctx.seed + 97,
        ..Default::default()
    };
    let trace = generate_session(&session);
    let channels = trace.channel_count();
    let mut engine = StreamingEngine::new(af, channels)?;

    // Enable profiling for the streaming loop only: training above runs
    // (possibly parallel) un-profiled, so the breakdown is exactly the
    // single-threaded hot path.
    let profiling_was_enabled = profile::enabled();
    profile::set_enabled(true);

    let mut sample = vec![0.0; channels];
    let mut recognitions = 0usize;
    let mut rejections = 0usize;
    let alloc_before = alloc::thread_stats();
    let span = airfinger_obs::span!("profile_stream_seconds");
    for i in 0..trace.len() {
        for (k, v) in sample.iter_mut().enumerate() {
            *v = trace.channel(k)[i];
        }
        if let Some(event) = engine.push(&sample)? {
            if event.gesture().is_some() {
                recognitions += 1;
            } else {
                rejections += 1;
            }
        }
    }
    let elapsed = span.elapsed_s();
    let alloc_after = alloc::thread_stats();
    // Batch analysis pass, still under the root span: the streaming path
    // has no per-sample SBC/threshold/segment spans, so this is where
    // those stages get their cost attribution. A short dedicated trace —
    // the batch feature stage scales with the dominant window, and the
    // attribution needs the stages present, not a second soak.
    let batch_trace = generate_session(&SessionSpec {
        samples: 800,
        seed: ctx.seed + 98,
        ..Default::default()
    });
    let batch = engine.pipeline().recognize_primary(&batch_trace)?;
    drop(span);
    profile::set_enabled(profiling_was_enabled);
    engine.flush()?;
    alloc::publish();

    let delta = alloc_after.since(alloc_before);

    let scoped = profile::snapshot().under(ROOT);
    let push_path = format!("{ROOT};engine_push_seconds");
    let push = scoped.path(&push_path).copied().unwrap_or_default();

    // Per-push allocation pressure comes from the push path's scoped
    // stats — the profiler excludes its own bookkeeping there, so the
    // number does not shift with how many profiled ancestors sit above
    // the loop. The raw loop-wide delta (which includes bookkeeping) is
    // reported as context only.
    let allocs_per_push = push.alloc.count as f64 / samples as f64;
    let bytes_per_push = push.alloc.bytes as f64 / samples as f64;

    report.line(format!(
        "{samples} samples single-threaded, {recognitions} recognitions, \
         {rejections} rejections"
    ));
    report.line(format!(
        "push path: {} frames, cumulative {} ns, self {} ns",
        push.count, push.total_ns, push.self_ns
    ));
    report.line(format!(
        "batch analysis pass recognized: {}",
        if batch.gesture().is_some() {
            "gesture"
        } else {
            "no gesture"
        }
    ));
    report.metric(
        "batch_recognized",
        f64::from(u8::from(batch.gesture().is_some())),
    );
    if alloc::counting() {
        report.line(format!(
            "allocations: {:.3} events / {:.1} bytes per push \
             (push-scoped {} / {}, raw loop delta {} / {})",
            allocs_per_push,
            bytes_per_push,
            push.alloc.count,
            push.alloc.bytes,
            delta.count,
            delta.bytes
        ));
    } else {
        report.line("allocations: counting allocator not installed (0 reported)".to_string());
    }
    for stage in STAGES {
        let leaf = format!("pipeline_stage_seconds{{stage={stage}}}");
        let (count, self_ns) = scoped
            .paths
            .iter()
            .filter(|(path, _)| path.rsplit(';').next() == Some(leaf.as_str()))
            .fold((0u64, 0u64), |(c, n), (_, s)| (c + s.count, n + s.self_ns));
        report.line(format!(
            "  stage {stage:<12} {count:>6} frames, self {self_ns:>10} ns"
        ));
        report.metric(&format!("stage_{stage}_frames"), count as f64);
        report.metric(&format!("stage_{stage}_self_ns"), self_ns as f64);
    }

    report.metric("samples", samples as f64);
    report.metric("recognitions", recognitions as f64);
    report.metric("rejections", rejections as f64);
    report.metric("profile_scoped_paths", scoped.paths.len() as f64);
    report.metric("profile_scoped_frames", scoped.frames() as f64);
    report.metric("alloc_counting", f64::from(u8::from(alloc::counting())));
    report.metric("allocs_per_push", allocs_per_push);
    report.metric("alloc_bytes_per_push", bytes_per_push);
    report.metric("push_total_ns", push.total_ns as f64);
    report.metric("push_self_ns", push.self_ns as f64);
    if elapsed > 0.0 {
        report.line(format!(
            "single-thread throughput {:.0} samples/s ({:.2} µs/push mean)",
            samples as f64 / elapsed,
            1e6 * elapsed / samples as f64
        ));
        report.metric("throughput_samples_per_s", samples as f64 / elapsed);
    }

    // Structural contract: with recording live, every push must appear as
    // a frame under the root, and at least one window must have reached
    // the per-window stages so the breakdown is non-trivial.
    if airfinger_obs::recording() {
        if push.count != samples as u64 {
            return Err(BenchError::Contract(format!(
                "expected {samples} push frames under `{push_path}`, got {}",
                push.count
            )));
        }
        if recognitions + rejections == 0 {
            return Err(BenchError::Contract(
                "session produced no classified windows; stage breakdown is empty".into(),
            ));
        }
        for stage in ["sbc", "threshold", "segment", "features", "rf_predict"] {
            let leaf = format!("pipeline_stage_seconds{{stage={stage}}}");
            let present = scoped
                .paths
                .iter()
                .any(|(path, s)| path.rsplit(';').next() == Some(leaf.as_str()) && s.count > 0);
            if !present {
                return Err(BenchError::Contract(format!(
                    "stage `{stage}` missing from the scoped profile"
                )));
            }
        }
    }
    Ok(report)
}
