//! Events: the structured event journal, session-correlated telemetry,
//! and SLO error-budget burn-rate alerting, exercised end to end.
//!
//! Not a paper figure — this is the observability experiment backing
//! `obs::events` + `obs::budget`: three scripted runs share one trained
//! pipeline and must satisfy the journal/budget contract exactly.
//!
//! 1. **Clean solo soak** — a fault-free monitored session. The journal
//!    fills with recognition/rejection events, health never leaves
//!    `healthy`, and no burn alert of either speed may fire.
//! 2. **Faulted solo soak** — the standard spike+dropout schedule over
//!    ten health windows. The fast-burn alert must fire *exactly once*
//!    (the latch holds through the contiguous bad-window episode), the
//!    flight-recorder dump must cross-link a valid journal sequence
//!    range, and the journal must carry the full event cascade
//!    (transition → dump → burn).
//! 3. **Mini fleet** — an oversubscribed sharded fleet (14 arrivals into
//!    12 slots) with a fleet-attached journal. Admission/shed events and
//!    every session's buffered monitor events land in one global
//!    sequence whose bytes are thread-count-invariant: the reported
//!    FNV-1a checksum pins the exact journal content across `--threads`.
//!
//! Every reported metric is deterministic (no wall-clock figures), so
//! the whole report is byte-comparable between 1- and 4-thread runs.

use crate::context::{Context, Scale};
use crate::error::BenchError;
use crate::report::Report;
use airfinger_core::config::AirFingerConfig;
use airfinger_core::engine::StreamingEngine;
use airfinger_core::pipeline::AirFinger;
use airfinger_fleet::{drive, generate_population, Fleet, FleetConfig, PopulationSpec};
use airfinger_obs::events::Journal;
use airfinger_obs::{
    BudgetConfig, EngineMonitor, MonitorConfig, RecorderConfig, SloRules, WindowConfig,
};
use airfinger_synth::dataset::{generate_corpus, generate_nongesture_corpus, CorpusSpec};
use airfinger_synth::session::{generate_session, standard_fault_schedule, SessionSpec};
use std::sync::Arc;

/// Health windows per solo session; the fault schedule spans a fixed
/// window range at every scale (spike [20%, 45%), dropout [45%, 95%)),
/// so the bad-window pattern — and with it the burn-alert count — is
/// scale-invariant.
const WINDOWS_PER_SESSION: usize = 10;

/// Fleet shape: 14 staggered arrivals into `4 x 3` session slots, so
/// exactly two sessions (ids 12 and 13) are shed at admission.
const SHARDS: usize = 4;
const SESSIONS_PER_SHARD: usize = 3;
const ARRIVALS: usize = 14;
const EXPECTED_SHED: u64 = 2;

/// Journal capacity for every phase: large enough that nothing is ever
/// evicted, so `dropped == 0` doubles as a sizing contract.
const JOURNAL_CAPACITY: usize = 16_384;

/// FNV-1a (32-bit) over the journal's serialized bytes. 32 bits so the
/// checksum survives the report's `f64` metric slots exactly.
fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Count journal events carrying a given kind tag.
fn count_kind(journal: &Journal, tag: &str) -> u64 {
    journal
        .tail_after(0, journal.capacity())
        .iter()
        .filter(|e| e.kind.tag() == tag)
        .count() as u64
}

fn monitor_with_journal(horizon: usize, journal: &Journal) -> EngineMonitor {
    EngineMonitor::new(MonitorConfig {
        window: WindowConfig { horizon },
        rules: SloRules::default(),
        recorder: RecorderConfig::default(),
        budget: BudgetConfig::default(),
    })
    .with_journal(journal.clone())
}

/// Run the experiment.
///
/// # Errors
///
/// Propagates training, engine and fleet failures; fails when any phase
/// violates the journal/budget contract (a burn alert on the clean run,
/// anything other than exactly one fast-burn alert on the faulted run, a
/// dump without a journal cross-link, miscounted admission/shed events,
/// or a journal eviction).
pub fn run(ctx: &Context) -> Result<Report, BenchError> {
    let mut report = Report::new(
        "events",
        "structured event journal and error-budget burn-rate alerting",
    );
    let samples = match ctx.scale {
        Scale::Quick => 4_000,
        Scale::Standard => 10_000,
        Scale::Full => 20_000,
    };
    let horizon = samples / WINDOWS_PER_SESSION;

    // One compact pipeline (non-gesture filter live) shared by all three
    // phases, soak-style.
    let spec = CorpusSpec {
        users: 2,
        sessions: 2,
        reps: ctx.scale.scaled(10),
        seed: ctx.seed + 131,
        ..Default::default()
    };
    let non_spec = CorpusSpec {
        reps: ctx.scale.scaled(30),
        ..spec.clone()
    };
    let corpus = generate_corpus(&spec);
    let non = generate_nongesture_corpus(&non_spec);
    let mut af = AirFinger::new(AirFingerConfig {
        forest_trees: ctx.config.forest_trees.min(40),
        ..ctx.config
    });
    af.train_on_corpus(&corpus, Some(&non))?;
    let pipeline = Arc::new(af);

    // ---- Phase 1: clean solo soak — the error budget must stay whole.
    let clean_journal = Journal::new(JOURNAL_CAPACITY);
    let clean = solo_soak(
        &pipeline,
        samples,
        horizon,
        ctx.seed + 131,
        false,
        &clean_journal,
    )?;
    if clean.fast_alerts != 0 || clean.slow_alerts != 0 {
        return Err(BenchError::Contract(format!(
            "clean run burned budget: {} fast / {} slow alerts (want 0 / 0)",
            clean.fast_alerts, clean.slow_alerts
        )));
    }
    if clean.transitions != 0 {
        return Err(BenchError::Contract(format!(
            "clean run left healthy: {} health transitions (want 0)",
            clean.transitions
        )));
    }
    if count_kind(&clean_journal, "recognition") == 0 {
        return Err(BenchError::Contract(
            "clean run journaled no recognition events".into(),
        ));
    }

    // ---- Phase 2: faulted solo soak — fast burn fires exactly once.
    let fault_journal = Journal::new(JOURNAL_CAPACITY);
    let faulted = solo_soak(
        &pipeline,
        samples,
        horizon,
        ctx.seed + 131,
        true,
        &fault_journal,
    )?;
    if faulted.fast_alerts != 1 {
        return Err(BenchError::Contract(format!(
            "faulted run must trip the fast-burn alert exactly once, got {}",
            faulted.fast_alerts
        )));
    }
    if faulted.slow_alerts == 0 {
        return Err(BenchError::Contract(
            "faulted run never tripped the slow-burn alert".into(),
        ));
    }
    let burn_events = count_kind(&fault_journal, "burn");
    if burn_events != faulted.fast_alerts + faulted.slow_alerts {
        return Err(BenchError::Contract(format!(
            "journal carries {burn_events} burn events, budget fired {}",
            faulted.fast_alerts + faulted.slow_alerts
        )));
    }
    // The dump must cross-link the journal: a non-null sequence range
    // that actually covers journaled events.
    let dump_span = faulted
        .dump_journal_span
        .ok_or_else(|| BenchError::Contract("dump lacks a journal cross-link".into()))?;
    if dump_span.0 > dump_span.1 || count_kind(&fault_journal, "dump") != 1 {
        return Err(BenchError::Contract(format!(
            "dump journal range invalid: [{}, {}]",
            dump_span.0, dump_span.1
        )));
    }

    // ---- Phase 3: oversubscribed mini fleet with a fleet journal.
    let fleet_samples = match ctx.scale {
        Scale::Quick => 400,
        Scale::Standard => 800,
        Scale::Full => 1_200,
    };
    let pop = PopulationSpec {
        sessions: ARRIVALS,
        samples_per_session: fleet_samples,
        users: ctx.scale.users(),
        seed: ctx.seed + 131,
        fault_every: 4,
        arrival_stagger_rounds: 1,
        chunk: 50,
    };
    let gen_threads = airfinger_parallel::effective_threads(match ctx.config.n_threads {
        0 => None,
        n => Some(n),
    });
    let traces = generate_population(&pop, gen_threads);
    let channels = traces
        .first()
        .ok_or(BenchError::EmptyResult("empty population"))?
        .channel_count();
    let config = FleetConfig {
        shards: SHARDS,
        sessions_per_shard: SESSIONS_PER_SHARD,
        queue_capacity: 8 * pop.chunk,
        quantum: 2 * pop.chunk,
        monitor_horizon: fleet_samples / 5,
        threads: ctx.config.n_threads,
    };
    let mut fleet =
        Fleet::new(Arc::clone(&pipeline), channels, config).map_err(BenchError::Fleet)?;
    let fleet_journal = Journal::new(JOURNAL_CAPACITY);
    fleet.set_journal(fleet_journal.clone());
    let ids: Vec<u64> = (0..ARRIVALS as u64).collect();
    let driven = drive(&mut fleet, &ids, &traces, &pop).map_err(BenchError::Fleet)?;
    fleet.flush_sessions();

    let capacity = (SHARDS * SESSIONS_PER_SHARD) as u64;
    if fleet.admitted() != capacity || fleet.shed() != EXPECTED_SHED {
        return Err(BenchError::Contract(format!(
            "expected {capacity} admitted / {EXPECTED_SHED} shed, got {} / {}",
            fleet.admitted(),
            fleet.shed()
        )));
    }
    let admitted_events = count_kind(&fleet_journal, "admitted");
    let shed_events = count_kind(&fleet_journal, "shed");
    if admitted_events != fleet.admitted() || shed_events != fleet.shed() {
        return Err(BenchError::Contract(format!(
            "journal admission ledger diverged: {admitted_events} admitted / \
             {shed_events} shed events vs {} / {} counters",
            fleet.admitted(),
            fleet.shed()
        )));
    }
    // Correlation contract: every session-scoped event carries its shard,
    // and the shard matches the fleet's placement function.
    for event in fleet_journal.tail_after(0, fleet_journal.capacity()) {
        if let (Some(session), Some(shard)) = (event.session, event.shard) {
            if shard != session % SHARDS as u64 {
                return Err(BenchError::Contract(format!(
                    "event seq {} mis-correlated: session {session} on shard {shard}",
                    event.seq
                )));
            }
        }
    }
    let dropped = clean_journal.dropped() + fault_journal.dropped() + fleet_journal.dropped();
    if dropped != 0 {
        return Err(BenchError::Contract(format!(
            "journals evicted {dropped} events; capacity contract is zero loss"
        )));
    }
    // The determinism pin: the fleet journal's exact serialized bytes,
    // independent of worker-thread count.
    let fleet_bytes = fleet_journal.to_json_after(0, fleet_journal.capacity());
    let checksum = fnv1a32(fleet_bytes.as_bytes());

    report.line(format!(
        "clean soak: {samples} samples, {} journal events, 0 transitions, 0 burn alerts, \
         {:.0}% budget remaining",
        clean.events,
        clean.budget_remaining * 100.0
    ));
    report.line(format!(
        "faulted soak: {} journal events, {} bad / {} windows, fast burn fired once, \
         {} slow alert(s), dump journal span [{}, {}]",
        faulted.events,
        faulted.bad_windows,
        faulted.windows,
        faulted.slow_alerts,
        dump_span.0,
        dump_span.1
    ));
    report.line(format!(
        "fleet: {ARRIVALS} arrivals -> {} admitted / {} shed over {SHARDS} shards, \
         {} rounds, journal head seq {}",
        fleet.admitted(),
        fleet.shed(),
        driven.rounds,
        fleet_journal.head_seq()
    ));
    report.line(format!(
        "fleet journal: {} events retained, 0 evicted, fnv1a32 {checksum:#010x} \
         (thread-count-invariant)",
        fleet_journal.len()
    ));

    report.metric("clean_events", clean.events as f64);
    report.metric("clean_budget_remaining", clean.budget_remaining);
    report.metric("fault_events", faulted.events as f64);
    report.metric("fault_windows", faulted.windows as f64);
    report.metric("fault_bad_windows", faulted.bad_windows as f64);
    report.metric("fault_fast_alerts", faulted.fast_alerts as f64);
    report.metric("fault_slow_alerts", faulted.slow_alerts as f64);
    report.metric("dump_journal_first_seq", dump_span.0 as f64);
    report.metric("dump_journal_last_seq", dump_span.1 as f64);
    report.metric("fleet_admitted", fleet.admitted() as f64);
    report.metric("fleet_shed", fleet.shed() as f64);
    report.metric("fleet_journal_head", fleet_journal.head_seq() as f64);
    report.metric("fleet_journal_checksum", f64::from(checksum));
    Ok(report)
}

/// What one solo soak produced, in journal/budget terms.
struct SoloOutcome {
    events: u64,
    windows: u64,
    bad_windows: u64,
    fast_alerts: u64,
    slow_alerts: u64,
    budget_remaining: f64,
    transitions: usize,
    dump_journal_span: Option<(u64, u64)>,
}

/// Stream one synthetic session through a monitored engine wired to
/// `journal`, with or without the standard fault schedule.
fn solo_soak(
    pipeline: &Arc<AirFinger>,
    samples: usize,
    horizon: usize,
    seed: u64,
    faults: bool,
    journal: &Journal,
) -> Result<SoloOutcome, BenchError> {
    let session = SessionSpec {
        samples,
        seed,
        faults: if faults {
            standard_fault_schedule(samples, true, true)
        } else {
            Vec::new()
        },
        ..Default::default()
    };
    let trace = generate_session(&session);
    let channels = trace.channel_count();
    let mut engine = StreamingEngine::with_shared(Arc::clone(pipeline), channels)?;
    engine.attach_monitor(monitor_with_journal(horizon, journal));

    let mut sample = vec![0.0; channels];
    for i in 0..trace.len() {
        for (k, v) in sample.iter_mut().enumerate() {
            *v = trace.channel(k)[i];
        }
        let _ = engine.push(&sample);
    }
    engine.flush()?;

    let monitor = engine
        .monitor_mut()
        .ok_or_else(|| BenchError::Contract("monitor detached mid-soak".into()))?;
    let budget = monitor.budget();
    let outcome = SoloOutcome {
        events: monitor.events_emitted(),
        windows: budget.windows(),
        bad_windows: budget.bad_windows(),
        fast_alerts: budget.fast_alerts(),
        slow_alerts: budget.slow_alerts(),
        budget_remaining: budget.remaining(),
        transitions: monitor.transitions().len(),
        dump_journal_span: None,
    };
    let dumps = monitor.take_dumps();
    let span = dumps.first().and_then(|d| {
        let v = serde_json::from_str::<serde::Value>(&d.json).ok()?;
        let j = v.as_object()?.get("journal")?.as_object()?;
        Some((
            j.get("first_session_seq")?.as_f64()? as u64,
            j.get("last_session_seq")?.as_f64()? as u64,
        ))
    });
    Ok(SoloOutcome {
        dump_journal_span: span,
        ..outcome
    })
}
