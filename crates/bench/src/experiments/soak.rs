//! Soak: sustained streaming under the live health monitor, with the
//! standard fault schedule injected mid-session.
//!
//! This is not a paper figure — it is the reliability experiment backing
//! the monitoring subsystem: a multi-thousand-sample continuous session
//! streams through a monitored [`StreamingEngine`], the scripted ambient
//! spike and sensor dropout must drive the documented
//! `healthy → degraded → unhealthy` transitions, and the flight recorder
//! must produce exactly one schema-valid post-mortem dump for the single
//! unhealthy episode.

use crate::context::Context;
use crate::error::BenchError;
use crate::report::Report;
use airfinger_core::config::AirFingerConfig;
use airfinger_core::engine::StreamingEngine;
use airfinger_core::pipeline::AirFinger;
use airfinger_obs::{EngineMonitor, MonitorConfig, RecorderConfig, SloRules, WindowConfig};
use airfinger_synth::dataset::{generate_corpus, generate_nongesture_corpus, CorpusSpec};
use airfinger_synth::session::{generate_session, standard_fault_schedule, SessionSpec};

/// Health windows per soak session. The horizon scales with session
/// length so the fault schedule (spike [20%, 45%), dropout [45%, 95%))
/// covers the same number of windows at every scale: the spike stalls
/// two full windows (degraded, then recovery), the dropout four
/// (degraded → unhealthy → one dump).
const WINDOWS_PER_SESSION: usize = 10;

/// Run the experiment.
///
/// # Errors
///
/// Propagates training and engine failures; fails when the soak violates
/// the monitoring contract (missing transitions or dump-count mismatch).
pub fn run(ctx: &Context) -> Result<Report, BenchError> {
    let mut report = Report::new("soak", "sustained streaming soak with health monitoring");
    let samples = match ctx.scale {
        crate::context::Scale::Quick => 4_000,
        crate::context::Scale::Standard => 10_000,
        crate::context::Scale::Full => 20_000,
    };

    // A compact pipeline with the non-gesture filter live, so the soak
    // exercises the rejection path too.
    let spec = CorpusSpec {
        users: 2,
        sessions: 2,
        reps: ctx.scale.scaled(10),
        seed: ctx.seed + 91,
        ..Default::default()
    };
    let non_spec = CorpusSpec {
        reps: ctx.scale.scaled(30),
        ..spec.clone()
    };
    let corpus = generate_corpus(&spec);
    let non = generate_nongesture_corpus(&non_spec);
    let mut af = AirFinger::new(AirFingerConfig {
        forest_trees: ctx.config.forest_trees.min(40),
        ..ctx.config
    });
    af.train_on_corpus(&corpus, Some(&non))?;

    let session = SessionSpec {
        samples,
        seed: ctx.seed + 91,
        faults: standard_fault_schedule(samples, true, true),
        ..Default::default()
    };
    let trace = generate_session(&session);
    let channels = trace.channel_count();
    let horizon = samples / WINDOWS_PER_SESSION;
    let mut engine = StreamingEngine::new(af, channels)?;
    engine.attach_monitor(EngineMonitor::new(MonitorConfig {
        window: WindowConfig { horizon },
        rules: SloRules::default(),
        recorder: RecorderConfig::default(),
        budget: airfinger_obs::BudgetConfig::default(),
    }));

    let mut sample = vec![0.0; channels];
    let mut recognitions = 0usize;
    let span = airfinger_obs::span!("soak_stream_seconds");
    for i in 0..trace.len() {
        for (k, v) in sample.iter_mut().enumerate() {
            *v = trace.channel(k)[i];
        }
        if let Ok(Some(event)) = engine.push(&sample) {
            if event.gesture().is_some() {
                recognitions += 1;
            }
        }
    }
    let elapsed = span.elapsed_s();
    drop(span);
    engine.flush()?;

    let monitor = engine
        .monitor_mut()
        .ok_or_else(|| BenchError::Contract("monitor detached mid-soak".into()))?;
    let windows = monitor.windows_closed();
    let transitions: Vec<String> = monitor
        .transitions()
        .iter()
        .map(|t| format!("{} -> {} @w{}", t.from.tag(), t.to.tag(), t.window_index))
        .collect();
    let to_degraded = monitor
        .transitions()
        .iter()
        .filter(|t| t.to.level() == 1)
        .count();
    let to_unhealthy = monitor
        .transitions()
        .iter()
        .filter(|t| t.to.level() == 2)
        .count();
    let to_healthy = monitor
        .transitions()
        .iter()
        .filter(|t| t.to.level() == 0)
        .count();
    let final_health = monitor.health();
    let dumps = monitor.take_dumps();
    let dumps_valid = dumps.iter().all(|d| {
        serde_json::from_str::<serde::Value>(&d.json)
            .ok()
            .and_then(|v| {
                v.as_object()?
                    .get("schema")
                    .and_then(serde::Value::as_str)
                    .map(|s| s == "airfinger-flight-recorder-v1")
            })
            .unwrap_or(false)
    });

    report.line(format!(
        "{samples} samples through a monitored engine (horizon {horizon}), faults: spike + dropout"
    ));
    for t in &transitions {
        report.line(format!("  transition: {t}"));
    }
    report.line(format!(
        "{} windows, {recognitions} recognitions, {} dumps (valid: {dumps_valid}), final health {final_health}",
        windows,
        dumps.len()
    ));
    if elapsed > 0.0 {
        report.line(format!(
            "sustained throughput {:.0} samples/s ({:.2} µs/push mean)",
            samples as f64 / elapsed,
            1e6 * elapsed / samples as f64
        ));
        report.metric("throughput_samples_per_s", samples as f64 / elapsed);
    }
    report.metric("samples", samples as f64);
    report.metric("windows", windows as f64);
    report.metric("transitions_to_degraded", to_degraded as f64);
    report.metric("transitions_to_unhealthy", to_unhealthy as f64);
    report.metric("transitions_to_healthy", to_healthy as f64);
    report.metric("dumps", dumps.len() as f64);
    report.metric("dumps_valid", f64::from(u8::from(dumps_valid)));

    // The monitoring contract this experiment exists to enforce.
    if to_degraded == 0 || to_unhealthy == 0 {
        return Err(BenchError::Contract(format!(
            "faults must degrade then breach: {to_degraded} degraded / {to_unhealthy} unhealthy transitions"
        )));
    }
    if dumps.len() != 1 || !dumps_valid {
        return Err(BenchError::Contract(format!(
            "expected exactly one valid dump, got {} (valid: {dumps_valid})",
            dumps.len()
        )));
    }
    Ok(report)
}
