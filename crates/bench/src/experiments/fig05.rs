//! Fig. 5: effect of the SBC and DT algorithms — a noisy recording with
//! several gestures in it, before/after processing: the static offset
//! disappears, gesture/rest contrast rises, and the segmenter recovers the
//! gesture spans.

use crate::context::Context;
use crate::error::BenchError;
use crate::report::Report;
use airfinger_core::processing::DataProcessor;
use airfinger_dsp::sbc::{snr_improvement, Sbc};
use airfinger_nir_sim::ambient::Interference;
use airfinger_nir_sim::sampler::{Sampler, Scene};
use airfinger_nir_sim::SensorLayout;
use airfinger_synth::gesture::{Gesture, SampleLabel};
use airfinger_synth::trajectory::{MotionParams, Trajectory};

/// Run the experiment.
///
/// # Errors
///
/// Propagates DSP failures.
pub fn run(ctx: &Context) -> Result<Report, BenchError> {
    let mut report = Report::new("fig5", "SBC noise mitigation + DT segmentation");
    // One long recording holding three gestures with idle gaps, under
    // ambient drift and a passer-by.
    let params = MotionParams::default();
    let gestures = [Gesture::Click, Gesture::Circle, Gesture::Rub];
    let trajectories: Vec<Trajectory> = gestures
        .iter()
        .enumerate()
        .map(|(i, g)| Trajectory::generate(SampleLabel::Gesture(*g), &params, ctx.seed + i as u64))
        .collect();
    let gap = 1.0; // seconds of idle between gestures
    let total: f64 = trajectories
        .iter()
        .map(|t| t.duration_s() + gap)
        .sum::<f64>()
        + gap;
    let scene =
        Scene::new(SensorLayout::paper_prototype()).with_interference(Interference::passerby());
    let sampler = Sampler::new(scene, ctx.config.sample_rate_hz);
    // Piece the trajectories together on the timeline.
    let mut starts = Vec::new();
    let mut t0 = gap;
    for t in &trajectories {
        starts.push(t0);
        t0 += t.duration_s() + gap;
    }
    let rest = params.base;
    let trace = sampler.sample(total, ctx.seed, |t| {
        for (start, traj) in starts.iter().zip(&trajectories) {
            if t >= *start && t < *start + traj.duration_s() {
                return traj.position(t - *start);
            }
        }
        Some(rest)
    });
    // Ground-truth spans in samples.
    let rate = ctx.config.sample_rate_hz;
    let truth: Vec<(usize, usize)> = starts
        .iter()
        .zip(&trajectories)
        .map(|(s, t)| ((s * rate) as usize, ((s + t.duration_s()) * rate) as usize))
        .collect();
    // Contrast before/after SBC on the strongest channel.
    let strongest = (0..trace.channel_count())
        .max_by(|&a, &b| {
            let range = |k: usize| {
                let c = trace.channel(k);
                c.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                    - c.iter().cloned().fold(f64::INFINITY, f64::min)
            };
            range(a)
                .partial_cmp(&range(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .unwrap_or(0);
    let (raw_contrast, sbc_contrast) = snr_improvement(
        trace.channel(strongest),
        &truth,
        Sbc::new(ctx.config.sbc_window),
    )?;
    report.line(format!(
        "gesture/rest contrast on P{}: raw RSS {:.2}x -> after SBC {:.1}x",
        strongest + 1,
        raw_contrast,
        sbc_contrast
    ));
    // Segmentation quality.
    let processor = DataProcessor::new(ctx.config);
    let windows = processor.process(&trace);
    report.line(format!("true gesture spans: {truth:?}"));
    report.line(format!(
        "recovered segments:  {:?}",
        windows
            .iter()
            .map(|w| (w.segment.start, w.segment.end))
            .collect::<Vec<_>>()
    ));
    // Matching: each truth span should overlap exactly one segment.
    let mut matched = 0;
    for &(ts, te) in &truth {
        if windows
            .iter()
            .any(|w| w.segment.start < te && ts < w.segment.end)
        {
            matched += 1;
        }
    }
    report.line(format!("{matched}/{} gestures segmented", truth.len()));
    report.metric("contrast_gain", sbc_contrast / raw_contrast.max(1e-9));
    report.metric("segments_found", windows.len() as f64);
    report.metric("gestures_matched", matched as f64);
    report.metric("gestures_total", truth.len() as f64);
    report.paper_value("gestures_matched", 3.0);
    Ok(report)
}
