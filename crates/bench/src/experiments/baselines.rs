//! Baseline comparison backing §IV-C2: the paper rejects HMM, DTW and CNN
//! because RF has "lower computational expense … more suitable for
//! real-time gesture recognition on wearable smart devices". The DTW 1-NN
//! and Gaussian-HMM baselines run on the same corpus here so both accuracy
//! and per-prediction cost are measured side by side.

use crate::context::Context;
use crate::error::BenchError;
use crate::experiments::{eval_classifier_fold, merge_folds, pct};
use crate::report::Report;
use airfinger_core::processing::DataProcessor;
use airfinger_core::train::{all_gesture_feature_set, LabeledFeatures};
use airfinger_ml::classifier::Classifier;
use airfinger_ml::cnn::{CnnClassifier, CnnConfig};
use airfinger_ml::dtw::{DtwClassifier, DtwConfig};
use airfinger_ml::forest::{RandomForest, RandomForestConfig};
use airfinger_ml::hmm::{HmmClassifier, HmmConfig};
use airfinger_ml::split::stratified_k_fold;
use airfinger_synth::dataset::{generate_corpus, CorpusSpec};
use std::time::Instant;

use airfinger_dsp::filter::resample_linear as resample;

/// DTW works on raw temporal shape: the summed cross-channel energy
/// envelope of each gesture window, resampled to 64 points and
/// peak-normalized.
fn dtw_signatures(corpus: &airfinger_synth::dataset::Corpus, ctx: &Context) -> LabeledFeatures {
    let processor = DataProcessor::new(ctx.config);
    let mut out = LabeledFeatures::default();
    for s in corpus.samples() {
        let Some(g) = s.label.gesture() else { continue };
        let w = processor.primary_window(&s.trace);
        let envelopes = w.envelopes();
        let n = envelopes[0].len();
        let summed: Vec<f64> = (0..n)
            .map(|i| envelopes.iter().map(|c| c[i]).sum())
            .collect();
        let mut sig = resample(&summed, 64);
        let peak = sig.iter().copied().fold(f64::MIN_POSITIVE, f64::max);
        for v in &mut sig {
            *v /= peak;
        }
        out.x.push(sig);
        out.y.push(g.index());
        out.users.push(s.user);
        out.sessions.push(s.session);
        out.reps.push(s.rep);
    }
    out
}

/// Run the experiment.
///
/// # Errors
///
/// Propagates classifier failures.
pub fn run(ctx: &Context) -> Result<Report, BenchError> {
    let mut report = Report::new("baselines", "RF vs DTW 1-NN: accuracy and inference cost");
    let spec = CorpusSpec {
        users: 4,
        sessions: 2,
        reps: ctx.scale.scaled(8),
        seed: ctx.seed + 0xBA5E,
        ..Default::default()
    };
    let corpus = generate_corpus(&spec);
    report.line(format!("corpus: {} samples", corpus.len()));
    report.line(format!(
        "{:<6} {:>9} {:>16}",
        "model", "accuracy", "per-predict (µs)"
    ));

    // RF over the Table-I feature bank.
    let rf_features = all_gesture_feature_set(&corpus, &ctx.config);
    let rf_folds = stratified_k_fold(&rf_features.y, 3, ctx.seed);
    let rf_matrix = merge_folds(
        rf_folds
            .iter()
            .map(|split| {
                let mut rf = RandomForest::new(RandomForestConfig {
                    n_trees: ctx.config.forest_trees,
                    seed: ctx.seed,
                    ..Default::default()
                });
                eval_classifier_fold(&mut rf, &rf_features, split, 8)
            })
            .collect::<Result<Vec<_>, _>>()?,
        8,
    );
    // Inference cost on a trained model.
    let mut rf = RandomForest::new(RandomForestConfig {
        n_trees: ctx.config.forest_trees,
        seed: ctx.seed,
        ..Default::default()
    });
    rf.fit(&rf_features.x, &rf_features.y)?;
    let probe = rf_features.x[0].clone();
    // lint: wall-clock — the measured per-prediction cost IS this figure's result
    let t0 = Instant::now();
    for _ in 0..200 {
        let _ = rf.predict(&probe)?;
    }
    let rf_us = t0.elapsed().as_secs_f64() * 1e6 / 200.0;
    report.line(format!(
        "{:<6} {:>8.2}% {:>16.1}",
        "RF",
        pct(rf_matrix.accuracy()),
        rf_us
    ));

    // DTW 1-NN over temporal signatures.
    let dtw_features = dtw_signatures(&corpus, ctx);
    let dtw_folds = stratified_k_fold(&dtw_features.y, 3, ctx.seed);
    let dtw_matrix = merge_folds(
        dtw_folds
            .iter()
            .map(|split| {
                let mut c = DtwClassifier::new(DtwConfig::default());
                eval_classifier_fold(&mut c, &dtw_features, split, 8)
            })
            .collect::<Result<Vec<_>, _>>()?,
        8,
    );
    let mut dtw = DtwClassifier::new(DtwConfig::default());
    dtw.fit(&dtw_features.x, &dtw_features.y)?;
    let probe = dtw_features.x[0].clone();
    // lint: wall-clock — the measured per-prediction cost IS this figure's result
    let t0 = Instant::now();
    for _ in 0..50 {
        let _ = dtw.predict(&probe)?;
    }
    let dtw_us = t0.elapsed().as_secs_f64() * 1e6 / 50.0;
    report.line(format!(
        "{:<6} {:>8.2}% {:>16.1}",
        "DTW",
        pct(dtw_matrix.accuracy()),
        dtw_us
    ));

    // HMM per-class models over the same temporal signatures.
    let hmm_folds = stratified_k_fold(&dtw_features.y, 3, ctx.seed);
    let hmm_matrix = merge_folds(
        hmm_folds
            .iter()
            .map(|split| {
                let mut c = HmmClassifier::new(HmmConfig::default());
                eval_classifier_fold(&mut c, &dtw_features, split, 8)
            })
            .collect::<Result<Vec<_>, _>>()?,
        8,
    );
    let mut hmm = HmmClassifier::new(HmmConfig::default());
    hmm.fit(&dtw_features.x, &dtw_features.y)?;
    let probe = dtw_features.x[0].clone();
    // lint: wall-clock — the measured per-prediction cost IS this figure's result
    let t0 = Instant::now();
    for _ in 0..200 {
        let _ = hmm.predict(&probe)?;
    }
    let hmm_us = t0.elapsed().as_secs_f64() * 1e6 / 200.0;
    report.line(format!(
        "{:<6} {:>8.2}% {:>16.1}",
        "HMM",
        pct(hmm_matrix.accuracy()),
        hmm_us
    ));

    // CNN over the same temporal signatures.
    let cnn_folds = stratified_k_fold(&dtw_features.y, 3, ctx.seed);
    let cnn_matrix = merge_folds(
        cnn_folds
            .iter()
            .map(|split| {
                let mut c = CnnClassifier::new(CnnConfig {
                    seed: ctx.seed,
                    ..Default::default()
                });
                eval_classifier_fold(&mut c, &dtw_features, split, 8)
            })
            .collect::<Result<Vec<_>, _>>()?,
        8,
    );
    let mut cnn = CnnClassifier::new(CnnConfig {
        seed: ctx.seed,
        ..Default::default()
    });
    // lint: wall-clock — the measured training cost IS this figure's result
    let t_train = Instant::now();
    cnn.fit(&dtw_features.x, &dtw_features.y)?;
    let cnn_train_ms = t_train.elapsed().as_secs_f64() * 1e3;
    let probe = dtw_features.x[0].clone();
    // lint: wall-clock — the measured per-prediction cost IS this figure's result
    let t0 = Instant::now();
    for _ in 0..200 {
        let _ = cnn.predict(&probe)?;
    }
    let cnn_us = t0.elapsed().as_secs_f64() * 1e6 / 200.0;
    report.line(format!(
        "{:<6} {:>8.2}% {:>16.1}   (training {cnn_train_ms:.0} ms)",
        "CNN",
        pct(cnn_matrix.accuracy()),
        cnn_us
    ));

    report.metric("rf_accuracy", pct(rf_matrix.accuracy()));
    report.metric("dtw_accuracy", pct(dtw_matrix.accuracy()));
    report.metric("rf_predict_us", rf_us);
    report.metric("dtw_predict_us", dtw_us);
    report.metric("dtw_cost_ratio", dtw_us / rf_us.max(1e-9));
    report.metric("hmm_accuracy", pct(hmm_matrix.accuracy()));
    report.metric("hmm_predict_us", hmm_us);
    report.metric("cnn_accuracy", pct(cnn_matrix.accuracy()));
    report.metric("cnn_predict_us", cnn_us);
    report.line(format!(
        "DTW costs {:.0}x and HMM {:.0}x an RF prediction (the §IV-C2 argument for RF)",
        dtw_us / rf_us.max(1e-9),
        hmm_us / rf_us.max(1e-9)
    ));
    Ok(report)
}
