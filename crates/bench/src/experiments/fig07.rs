//! Fig. 7: signals of track-aimed gestures — per-photodiode timing of
//! scroll up vs scroll down, the `Δt` between `P1` and `P3`, and the
//! resulting ZEBRA decision.

use crate::context::Context;
use crate::error::BenchError;
use crate::report::Report;
use airfinger_core::processing::DataProcessor;
use airfinger_core::zebra::{ScrollDirection, Zebra};
use airfinger_synth::dataset::{generate_sample, CorpusSpec};
use airfinger_synth::gesture::{Gesture, SampleLabel};
use airfinger_synth::profile::UserProfile;

/// Run the experiment.
///
/// # Errors
///
/// Infallible today; `Result` for harness uniformity.
pub fn run(ctx: &Context) -> Result<Report, BenchError> {
    let mut report = Report::new("fig7", "track-aimed gesture signals and ZEBRA timing");
    let spec = CorpusSpec {
        users: 1,
        sessions: 1,
        reps: 1,
        seed: ctx.seed,
        ..Default::default()
    };
    let profile = UserProfile::sample(0, spec.seed);
    let processor = DataProcessor::new(ctx.config);
    let zebra = Zebra::new(ctx.config);
    let mut both_ok = true;
    for (g, expect) in [
        (Gesture::ScrollUp, ScrollDirection::Up),
        (Gesture::ScrollDown, ScrollDirection::Down),
    ] {
        let s = generate_sample(&profile, SampleLabel::Gesture(g), 0, 0, &spec);
        let w = processor.primary_window(&s.trace);
        let timing = w.channel_timing(&ctx.config);
        let ascents = w.ascents(&ctx.config);
        let track = zebra.track(&w);
        report.line(format!("{g}:"));
        report.line(format!(
            "  ascents {ascents:?}  active {:?}  envelope lag {:?} samples",
            timing.active, timing.lag_samples
        ));
        match track {
            Some(t) => {
                report.line(format!(
                    "  ZEBRA: {}  v = {:.0} mm/s ({:?})  Δt = {:?} s  T = {:.2} s",
                    t.direction, t.velocity_mm_s, t.velocity_source, t.delta_t_s, t.duration_s
                ));
                if t.direction != expect {
                    both_ok = false;
                }
            }
            None => {
                report.line("  ZEBRA: no track".to_string());
                both_ok = false;
            }
        }
    }
    report.metric("directions_correct", if both_ok { 100.0 } else { 0.0 });
    report.paper_value("directions_correct", 100.0);
    Ok(report)
}
