//! §VI "Outdoors Situation", implemented and evaluated: under noon
//! sunlight the plain DC front end saturates and recognition collapses;
//! the lock-in (chopped-LED) front end the paper proposes as future work
//! restores it.

use crate::context::Context;
use crate::error::BenchError;
use crate::experiments::pct;
use crate::report::Report;
use airfinger_core::train::all_gesture_feature_set;
use airfinger_ml::classifier::Classifier;
use airfinger_ml::forest::{RandomForest, RandomForestConfig};
use airfinger_ml::metrics::ConfusionMatrix;
use airfinger_synth::conditions::Condition;
use airfinger_synth::dataset::{generate_corpus, CorpusSpec, Frontend};

/// Run the experiment.
///
/// # Errors
///
/// Propagates classifier failures.
pub fn run(ctx: &Context) -> Result<Report, BenchError> {
    let mut report = Report::new(
        "outdoor",
        "outdoor sunlight: plain DC front end vs lock-in demodulation (§VI)",
    );
    report.line(format!(
        "{:>10} {:>10} {:>9}",
        "frontend", "ambient", "accuracy"
    ));
    let mut results = Vec::new();
    for frontend in [Frontend::Dc, Frontend::LockIn] {
        // Train indoors with the given front end…
        let train_spec = CorpusSpec {
            users: 2,
            sessions: 3,
            reps: ctx.scale.scaled(15),
            seed: ctx.seed + 0x0D00,
            frontend,
            ..Default::default()
        };
        let train = all_gesture_feature_set(&generate_corpus(&train_spec), &ctx.config);
        let mut rf = RandomForest::new(RandomForestConfig {
            n_trees: ctx.config.forest_trees,
            seed: ctx.seed,
            ..Default::default()
        });
        rf.fit(&train.x, &train.y)?;
        // …then test indoors and under noon sunlight.
        for (ambient_name, condition) in [
            ("indoor", Condition::Standard),
            ("noon sun", Condition::OutdoorNoon),
        ] {
            let test_spec = CorpusSpec {
                users: 2,
                sessions: 1,
                reps: ctx.scale.scaled(15),
                condition: condition.clone(),
                seed: ctx.seed + 0x0D00, // same volunteers, new condition
                frontend,
                ..Default::default()
            };
            let test = all_gesture_feature_set(&generate_corpus(&test_spec), &ctx.config);
            let pred = rf.predict_batch(&test.x)?;
            let m = ConfusionMatrix::from_predictions(&test.y, &pred, 8);
            let fe = match frontend {
                Frontend::Dc => "dc",
                Frontend::LockIn => "lock-in",
            };
            report.line(format!(
                "{fe:>10} {ambient_name:>10} {:>8.2}%",
                pct(m.accuracy())
            ));
            results.push((fe, ambient_name, m.accuracy()));
        }
    }
    let get = |fe: &str, amb: &str| {
        results
            .iter()
            .find(|(f, a, _)| *f == fe && *a == amb)
            .map(|(_, _, acc)| *acc)
            .unwrap_or(0.0)
    };
    report.metric("dc_indoor", pct(get("dc", "indoor")));
    report.metric("dc_outdoor", pct(get("dc", "noon sun")));
    report.metric("lockin_indoor", pct(get("lock-in", "indoor")));
    report.metric("lockin_outdoor", pct(get("lock-in", "noon sun")));
    report.line(format!(
        "sunlight costs the DC front end {:.1} pts; lock-in retains within {:.1} pts of indoor",
        pct(get("dc", "indoor") - get("dc", "noon sun")),
        pct((get("lock-in", "indoor") - get("lock-in", "noon sun")).abs()),
    ));
    Ok(report)
}
