//! Fig. 3: characteristic RSS readings of the eight gestures — one
//! volunteer, two sessions; each gesture must show a distinctive pattern
//! that is consistent across the two sessions.

use crate::context::Context;
use crate::error::BenchError;
use crate::experiments::pct;
use crate::report::Report;
use airfinger_core::detect::prepare_features;
use airfinger_core::processing::DataProcessor;
use airfinger_dsp::stats;
use airfinger_features::FeatureExtractor;
use airfinger_synth::dataset::{generate_sample, CorpusSpec};
use airfinger_synth::gesture::{Gesture, SampleLabel};
use airfinger_synth::profile::UserProfile;

use airfinger_dsp::filter::resample_linear as resample;

/// Pearson correlation of two equal-length series.
fn correlation(a: &[f64], b: &[f64]) -> f64 {
    let (ma, mb) = (stats::mean(a), stats::mean(b));
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for (x, y) in a.iter().zip(b) {
        num += (x - ma) * (y - mb);
        da += (x - ma) * (x - ma);
        db += (y - mb) * (y - mb);
    }
    if da <= 0.0 || db <= 0.0 {
        0.0
    } else {
        num / (da * db).sqrt()
    }
}

/// Run the experiment.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(ctx: &Context) -> Result<Report, BenchError> {
    let mut report = Report::new("fig3", "characteristic RSS readings per gesture");
    let spec = CorpusSpec {
        users: 1,
        sessions: 2,
        reps: 5,
        seed: ctx.seed,
        ..Default::default()
    };
    let profile = UserProfile::sample(0, spec.seed);
    let processor = DataProcessor::new(ctx.config);
    let extractor = FeatureExtractor::table1();
    report.line(format!(
        "{:>10} {:>8} {:>7} {:>10} {:>12}",
        "gesture", "dur(s)", "peaks", "energy", "xsession-r"
    ));
    // Consistency/distinctiveness are measured in the *feature space the
    // recognizer actually uses* (amplitude-normalized Table-I features):
    // the same gesture performed in two sessions must correlate strongly,
    // and more strongly than any two different gestures do.
    let mut rows: Vec<(Gesture, f64, f64, f64)> = Vec::new(); // (g, dur, peaks, energy)
    let mut session0: Vec<Vec<f64>> = Vec::new();
    let mut session1: Vec<Vec<f64>> = Vec::new();
    // The "characteristic pattern" of a gesture in a session is the mean
    // feature vector over its repetitions (Fig. 3 shows representative
    // waveforms, not single trials).
    let mean_features = |session: usize,
                         g: Gesture|
     -> Result<(Vec<f64>, f64, f64, f64), BenchError> {
        let label = SampleLabel::Gesture(g);
        let mut acc: Option<Vec<f64>> = None;
        let mut dur = 0.0;
        let mut peaks = 0.0;
        let mut energy = 0.0;
        for rep in 0..spec.reps {
            let s = generate_sample(&profile, label, session, rep, &spec);
            let w = processor.primary_window(&s.trace);
            let f = prepare_features(&extractor, &w);
            match &mut acc {
                Some(a) => {
                    for (x, y) in a.iter_mut().zip(&f) {
                        *x += y;
                    }
                }
                None => acc = Some(f),
            }
            dur += w.duration_s();
            peaks +=
                airfinger_features::location::number_of_peaks(&resample(&w.delta.concat(), 200), 3);
            energy += w.envelopes().concat().iter().sum::<f64>();
        }
        let n = spec.reps as f64;
        let mut mean = acc.ok_or(BenchError::EmptyResult(
            "fig3 needs at least one repetition",
        ))?;
        for v in &mut mean {
            *v /= n;
        }
        Ok((mean, dur / n, peaks / n, energy / n))
    };
    for g in Gesture::ALL {
        let (f0, dur, peaks, energy) = mean_features(0, g)?;
        let (f1, _, _, _) = mean_features(1, g)?;
        session0.push(f0);
        session1.push(f1);
        rows.push((g, dur, peaks, energy));
    }
    // Standardize each feature dimension over all 16 vectors so no single
    // large-scale feature dominates the correlation.
    let dims = session0[0].len();
    let all: Vec<&Vec<f64>> = session0.iter().chain(session1.iter()).collect();
    let mut mu = vec![0.0; dims];
    let mut sd = vec![0.0; dims];
    for v in &all {
        for (d, &x) in v.iter().enumerate() {
            mu[d] += x;
        }
    }
    for m in &mut mu {
        *m /= all.len() as f64;
    }
    for v in &all {
        for (d, &x) in v.iter().enumerate() {
            sd[d] += (x - mu[d]) * (x - mu[d]);
        }
    }
    for s in &mut sd {
        *s = (*s / all.len() as f64).sqrt().max(1e-12);
    }
    let z = |v: &[f64]| -> Vec<f64> {
        v.iter()
            .enumerate()
            .map(|(d, &x)| (x - mu[d]) / sd[d])
            .collect()
    };
    let z0: Vec<Vec<f64>> = session0.iter().map(|v| z(v)).collect();
    let z1: Vec<Vec<f64>> = session1.iter().map(|v| z(v)).collect();
    // Operational consistency: the session-1 performance of each gesture
    // must be *nearer* (in standardized feature space) to its own
    // session-0 performance than to any other gesture's — i.e. patterns
    // are unique per gesture and consistent across sessions.
    let mut matched = 0usize;
    for (i, (g, dur, peaks, energy)) in rows.iter().enumerate() {
        let own = correlation(&z1[i], &z0[i]);
        let best_other = (0..z0.len())
            .filter(|&j| j != i)
            .map(|j| correlation(&z1[i], &z0[j]))
            .fold(f64::NEG_INFINITY, f64::max);
        let consistent = own > best_other;
        if consistent {
            matched += 1;
        }
        report.line(format!(
            "{:>10} {:>8.2} {:>7.0} {:>10.0} {:>8.2}{}",
            g.name().replace(' ', ""),
            dur,
            peaks,
            energy,
            own,
            if consistent {
                "  ✓ nearest to itself"
            } else {
                "  ✗"
            },
        ));
    }
    report.line(format!(
        "{matched}/8 gestures: the second session's pattern is nearest to the first session's own pattern"
    ));
    report.metric("nn_consistency_pct", pct(matched as f64 / 8.0));
    report.paper_value("nn_consistency_pct", 100.0);
    Ok(report)
}
