//! Accuracy ablations for the design choices §IV motivates: SBC on/off,
//! dynamic (Otsu) vs fixed segmentation threshold, full 25-kind feature
//! bank vs the 9-kind subset vs a naive 3-stat baseline, and window
//! normalization on/off.

use crate::context::Context;
use crate::error::BenchError;
use crate::experiments::{eval_rf_fold, merge_folds, pct};
use crate::report::Report;
use airfinger_core::detect::prepare_features;
use airfinger_core::processing::DataProcessor;
use airfinger_core::train::LabeledFeatures;
use airfinger_dsp::segment::Segmenter;
use airfinger_features::{FeatureExtractor, FeatureKind};
use airfinger_ml::split::{leave_one_group_out, stratified_k_fold};
use airfinger_synth::dataset::Corpus;

/// How one ablation variant turns a corpus into features.
enum Variant {
    /// The production path: SBC + Otsu + 25-kind bank + normalization.
    Full,
    /// Features extracted from the raw RSS window instead of `ΔRSS²`.
    NoSbc,
    /// Segmentation against the fixed initial threshold (no Otsu).
    FixedThreshold,
    /// The 9-kind filter subset instead of the 25-kind bank.
    NineFeatures,
    /// A naive 3-statistic baseline (std dev, peaks, energy).
    NaiveFeatures,
    /// No per-window amplitude normalization.
    NoNormalization,
}

fn extract(corpus: &Corpus, ctx: &Context, variant: &Variant) -> LabeledFeatures {
    let processor = DataProcessor::new(ctx.config);
    let extractor = match variant {
        Variant::NineFeatures => FeatureExtractor::nongesture9(),
        Variant::NaiveFeatures => FeatureExtractor::new(vec![
            FeatureKind::StandardDeviation,
            FeatureKind::NumberOfPeaks,
            FeatureKind::AbsoluteEnergy,
        ]),
        _ => FeatureExtractor::table1(),
    };
    let mut out = LabeledFeatures::default();
    for s in corpus.samples() {
        let Some(g) = s.label.gesture() else { continue };
        let window = match variant {
            Variant::FixedThreshold => {
                // Segment against the constant initial threshold.
                let delta = processor.sbc(&s.trace);
                let smoothed = processor.smoothed(&delta);
                let fixed = vec![ctx.config.initial_threshold; smoothed.len()];
                let segments =
                    Segmenter::new(ctx.config.segmenter).segment_multi(&smoothed, &fixed);
                let seg = match (segments.first(), segments.last()) {
                    (Some(a), Some(b)) => airfinger_dsp::segment::Segment::new(a.start, b.end),
                    _ => airfinger_dsp::segment::Segment::new(0, s.trace.len()),
                };
                airfinger_core::processing::GestureWindow {
                    raw: s
                        .trace
                        .channels()
                        .iter()
                        .map(|c| seg.slice(c).to_vec())
                        .collect(),
                    delta: delta.iter().map(|c| seg.slice(c).to_vec()).collect(),
                    segment: seg,
                    thresholds: fixed,
                    sample_rate_hz: s.trace.sample_rate_hz(),
                }
            }
            _ => processor.primary_window(&s.trace),
        };
        let features = match variant {
            Variant::NoSbc => {
                // Swap in the raw RSS slices as the "delta" fed to features.
                let mut w = window.clone();
                w.delta = w.raw.clone();
                prepare_features(&extractor, &w)
            }
            Variant::NoNormalization => {
                let mut f = extractor.extract_multi(&window.delta);
                f.push(window.duration_s());
                f.into_iter()
                    .map(|v| if v.is_finite() { v } else { 0.0 })
                    .collect()
            }
            _ => prepare_features(&extractor, &window),
        };
        out.x.push(features);
        out.y.push(g.index());
        out.users.push(s.user);
        out.sessions.push(s.session);
        out.reps.push(s.rep);
    }
    out
}

/// Run the experiment.
///
/// # Errors
///
/// Propagates classifier failures.
pub fn run(ctx: &Context) -> Result<Report, BenchError> {
    let mut report = Report::new("ablation", "design-choice ablations (3-fold CV accuracy)");
    let corpus = ctx.corpus();
    report.line(format!("{:<20} {:>9} {:>9}", "variant", "3-fold", "LOUO"));
    let variants: [(&str, Variant); 6] = [
        ("full pipeline", Variant::Full),
        ("no SBC (raw RSS)", Variant::NoSbc),
        ("fixed threshold", Variant::FixedThreshold),
        ("9-feature subset", Variant::NineFeatures),
        ("naive 3 features", Variant::NaiveFeatures),
        ("no normalization", Variant::NoNormalization),
    ];
    for (name, variant) in variants {
        let features = extract(corpus, ctx, &variant);
        let folds = stratified_k_fold(&features.y, 3, ctx.seed + 0xAB);
        let merged = merge_folds(
            folds
                .iter()
                .map(|s| eval_rf_fold(&features, s, 8, ctx.config.forest_trees, ctx.seed + 0xAB))
                .collect::<Result<Vec<_>, _>>()?,
            8,
        );
        // Cross-user robustness: the paper motivates SBC and the feature
        // selection precisely with individual diversity, so every variant
        // is also scored leave-one-user-out.
        let louo = merge_folds(
            leave_one_group_out(&features.users)
                .iter()
                .map(|(u, s)| {
                    eval_rf_fold(
                        &features,
                        s,
                        8,
                        ctx.config.forest_trees,
                        ctx.seed + *u as u64,
                    )
                })
                .collect::<Result<Vec<_>, _>>()?,
            8,
        );
        report.line(format!(
            "{name:<20} {:>8.2}% {:>8.2}%",
            pct(merged.accuracy()),
            pct(louo.accuracy())
        ));
        let key = name.replace(' ', "_").replace(['(', ')'], "");
        report.metric(&key, pct(merged.accuracy()));
        report.metric(&format!("{key}_louo"), pct(louo.accuracy()));
    }
    Ok(report)
}
