//! Extension experiment: user enrollment closing the Fig. 11
//! individual-diversity gap.
//!
//! The paper's central cross-validation finding (§V-D) is that a brand-new
//! user starts at the leave-one-user-out accuracy, well below the
//! within-population figure. This experiment measures how quickly a short
//! enrollment session closes that gap: for each held-out user, the
//! recognizer is trained on the other volunteers plus `k` up-weighted
//! enrollment trials per gesture from the held-out user's *first* session,
//! and evaluated on the user's *later* sessions (so enrollment and test
//! never share a session). `k = 0` is exactly the Fig. 11 protocol
//! restricted to later-session test trials.

use crate::context::Context;
use crate::error::BenchError;
use crate::experiments::{merge_folds, pct};
use crate::report::Report;
use airfinger_core::adapt::UserAdapter;
use airfinger_core::config::AirFingerConfig;
use airfinger_core::pipeline::AirFinger;
use airfinger_core::train::LabeledFeatures;
use airfinger_ml::metrics::ConfusionMatrix;
use airfinger_synth::gesture::Gesture;

/// Enrollment trial counts per gesture to sweep (capped at the corpus'
/// repetitions per session).
const KS: [usize; 5] = [0, 1, 2, 4, 8];

fn accuracy_for(
    features: &LabeledFeatures,
    user: usize,
    k: usize,
    config: &AirFingerConfig,
) -> Result<ConfusionMatrix, BenchError> {
    let mut base = LabeledFeatures::default();
    let mut enroll = Vec::new();
    let mut test = Vec::new();
    for i in 0..features.len() {
        if features.users[i] != user {
            base.x.push(features.x[i].clone());
            base.y.push(features.y[i]);
            base.users.push(features.users[i]);
            base.sessions.push(features.sessions[i]);
            base.reps.push(features.reps[i]);
        } else if features.sessions[i] == 0 {
            if features.reps[i] < k {
                enroll.push(i);
            }
        } else {
            test.push(i);
        }
    }
    let mut adapter = UserAdapter::new(base);
    for &i in &enroll {
        let gesture = Gesture::from_index(features.y[i]).ok_or(BenchError::Pipeline(
            airfinger_core::AirFingerError::InvalidTrainingData(
                "enrollment label outside the gesture set",
            ),
        ))?;
        adapter.enroll_features(features.x[i].clone(), gesture);
    }
    let mut af = AirFinger::new(*config);
    adapter.apply(&mut af)?;
    let rec = af.detect_recognizer();
    let truth: Vec<usize> = test.iter().map(|&i| features.y[i]).collect();
    let mut pred = Vec::with_capacity(test.len());
    for &i in &test {
        pred.push(rec.predict_features(&features.x[i])?);
    }
    Ok(ConfusionMatrix::from_predictions(&truth, &pred, 6))
}

/// Run the experiment.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(ctx: &Context) -> Result<Report, BenchError> {
    let mut report = Report::new(
        "adaptation",
        "user enrollment closing the LOUO gap (extension)",
    );
    let features = ctx.detect_features();
    let users: Vec<usize> = {
        let mut u = features.users.clone();
        u.sort_unstable();
        u.dedup();
        u
    };
    let ks: Vec<usize> = KS
        .iter()
        .copied()
        .filter(|&k| k <= ctx.scale.reps())
        .collect();
    report.line(format!(
        "{} users; enrollment from session 0, evaluation on sessions 1..{}",
        users.len(),
        ctx.scale.sessions()
    ));
    report.line(format!(
        "{:>12} {:>10} {:>12}",
        "k/gesture", "accuracy", "macro-recall"
    ));
    let mut first = f64::NAN;
    let mut last = f64::NAN;
    for &k in &ks {
        let merged = merge_folds(
            users
                .iter()
                .map(|&u| {
                    let config = AirFingerConfig {
                        forest_trees: ctx.config.forest_trees,
                        train_seed: ctx.seed + 0xADA0 + u as u64,
                        ..ctx.config
                    };
                    accuracy_for(&features, u, k, &config)
                })
                .collect::<Result<Vec<_>, _>>()?,
            6,
        );
        let acc = pct(merged.accuracy());
        report.line(format!(
            "{:>12} {:>9.2}% {:>11.2}%",
            k,
            acc,
            pct(merged.macro_recall())
        ));
        report.metric(&format!("accuracy_k{k}"), acc);
        if k == 0 {
            first = acc;
        }
        last = acc;
    }
    report.line(format!(
        "enrollment recovers {:+.2} points over the unadapted LOUO baseline",
        last - first
    ));
    report.metric("recovered_points", last - first);
    report.line(
        "(paper reports no adaptation numbers; reference points are Fig. 11 \
         LOUO 83.61% and Fig. 10 within-population 98.44%)"
            .to_string(),
    );
    Ok(report)
}
