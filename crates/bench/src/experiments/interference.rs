//! §V-J4: other human interferences — recognition while another person
//! walks by, and while an IR remote control is used (indirectly vs pointed
//! straight at the sensor). Paper: passers-by and non-directly-pointed
//! remotes do not affect accuracy; a directly-pointed remote causes
//! recognition errors.

use crate::context::Context;
use crate::error::BenchError;
use crate::experiments::pct;
use crate::report::Report;
use airfinger_core::train::all_gesture_feature_set;
use airfinger_ml::classifier::Classifier;
use airfinger_ml::forest::{RandomForest, RandomForestConfig};
use airfinger_ml::metrics::ConfusionMatrix;
use airfinger_nir_sim::ambient::Interference;
use airfinger_synth::conditions::Condition;
use airfinger_synth::dataset::{generate_corpus, CorpusSpec};

/// Run the experiment.
///
/// # Errors
///
/// Propagates classifier failures.
pub fn run(ctx: &Context) -> Result<Report, BenchError> {
    let mut report = Report::new("interference", "passers-by and IR remote controls");
    let train_spec = CorpusSpec {
        users: 2,
        sessions: 3,
        reps: ctx.scale.scaled(25),
        seed: ctx.seed + 74,
        ..Default::default()
    };
    let train = all_gesture_feature_set(&generate_corpus(&train_spec), &ctx.config);
    let mut rf = RandomForest::new(RandomForestConfig {
        n_trees: ctx.config.forest_trees,
        seed: ctx.seed + 74,
        ..Default::default()
    });
    rf.fit(&train.x, &train.y)?;
    let scenarios: [(&str, Vec<Interference>); 4] = [
        ("baseline", vec![]),
        ("passerby", vec![Interference::passerby()]),
        (
            "remote (indirect)",
            vec![Interference::ir_remote_indirect()],
        ),
        ("remote (direct)", vec![Interference::ir_remote_direct()]),
    ];
    report.line(format!("{:>18} {:>9}", "scenario", "accuracy"));
    let mut acc_by: Vec<f64> = Vec::new();
    for (name, sources) in scenarios {
        let spec = CorpusSpec {
            users: 2,
            sessions: 1,
            reps: ctx.scale.scaled(25),
            condition: if sources.is_empty() {
                Condition::Standard
            } else {
                Condition::Interference { sources }
            },
            seed: ctx.seed + 74,
            ..Default::default()
        };
        let test = all_gesture_feature_set(&generate_corpus(&spec), &ctx.config);
        let pred = rf.predict_batch(&test.x)?;
        let m = ConfusionMatrix::from_predictions(&test.y, &pred, 8);
        report.line(format!("{:>18} {:>8.2}%", name, pct(m.accuracy())));
        acc_by.push(m.accuracy());
    }
    report.metric("baseline", pct(acc_by[0]));
    report.metric("passerby", pct(acc_by[1]));
    report.metric("remote_indirect", pct(acc_by[2]));
    report.metric("remote_direct", pct(acc_by[3]));
    report.line(format!(
        "passerby / indirect remote within {:.1} pts of baseline; direct remote drops {:.1} pts",
        pct((acc_by[0] - acc_by[1])
            .abs()
            .max((acc_by[0] - acc_by[2]).abs())),
        pct(acc_by[0] - acc_by[3]),
    ));
    Ok(report)
}
