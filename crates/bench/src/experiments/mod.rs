//! One module per reproduced table/figure of the paper's §V, plus shared
//! evaluation helpers.

pub mod ablation;
pub mod adaptation;
pub mod baselines;
pub mod board;
pub mod events;
pub mod fig03;
pub mod fig05;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fleet;
pub mod importance;
pub mod interference;
pub mod outdoor;
pub mod perf;
pub mod profile;
pub mod selection;
pub mod soak;
pub mod table2;

use airfinger_core::train::LabeledFeatures;
use airfinger_ml::classifier::Classifier;
use airfinger_ml::error::MlError;
use airfinger_ml::forest::{RandomForest, RandomForestConfig};
use airfinger_ml::metrics::ConfusionMatrix;
use airfinger_ml::split::{gather, Split};

/// Train a fresh random forest on the train side of `split` and evaluate
/// on the test side; returns the fold's confusion matrix.
///
/// # Errors
///
/// Propagates classifier training/prediction failures.
pub fn eval_rf_fold(
    features: &LabeledFeatures,
    split: &Split,
    n_classes: usize,
    trees: usize,
    seed: u64,
) -> Result<ConfusionMatrix, MlError> {
    let mut rf = RandomForest::new(RandomForestConfig {
        n_trees: trees,
        seed,
        ..Default::default()
    });
    eval_classifier_fold(&mut rf, features, split, n_classes)
}

/// Train `clf` on the train side of `split` and evaluate on the test side.
///
/// # Errors
///
/// Propagates classifier training/prediction failures.
pub fn eval_classifier_fold(
    clf: &mut dyn Classifier,
    features: &LabeledFeatures,
    split: &Split,
    n_classes: usize,
) -> Result<ConfusionMatrix, MlError> {
    let (xtr, ytr) = gather(&features.x, &features.y, &split.train);
    let (xte, yte) = gather(&features.x, &features.y, &split.test);
    clf.fit(&xtr, &ytr)?;
    let pred = clf.predict_batch(&xte)?;
    Ok(ConfusionMatrix::from_predictions(&yte, &pred, n_classes))
}

/// Merge per-fold confusion matrices.
#[must_use]
pub fn merge_folds(
    folds: impl IntoIterator<Item = ConfusionMatrix>,
    n_classes: usize,
) -> ConfusionMatrix {
    let mut total = ConfusionMatrix::new(n_classes);
    for f in folds {
        total.merge(&f);
    }
    total
}

/// Percentage helper.
#[must_use]
pub fn pct(x: f64) -> f64 {
    100.0 * x
}

/// The six detect-aimed gesture names, table order.
pub const DETECT_NAMES: [&str; 6] = ["circle", "2xcircle", "rub", "2xrub", "click", "2xclick"];

/// All eight gesture names, table order.
pub const ALL_NAMES: [&str; 8] = [
    "circle", "2xcircle", "rub", "2xrub", "click", "2xclick", "scrollup", "scrolldn",
];
