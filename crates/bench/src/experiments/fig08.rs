//! Fig. 8 / §V-D: accuracy vs sensing distance — three volunteers, eight
//! gestures, distances 0.5–12 cm. Paper: above 90 % in the 0.5–6 cm band,
//! degradation beyond.

use crate::context::{Context, Scale};
use crate::error::BenchError;
use crate::experiments::{eval_rf_fold, merge_folds, pct};
use crate::report::Report;
use airfinger_core::train::all_gesture_feature_set;
use airfinger_ml::split::stratified_k_fold;
use airfinger_synth::conditions::Condition;
use airfinger_synth::dataset::{generate_corpus, CorpusSpec};

/// The distances swept, in centimeters.
#[must_use]
pub fn distances_cm(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Full => (1..=24).map(|i| i as f64 * 0.5).collect(),
        Scale::Standard => vec![0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0],
        Scale::Quick => vec![1.0, 3.0, 6.0, 10.0],
    }
}

/// Run the experiment.
///
/// # Errors
///
/// Propagates classifier failures.
pub fn run(ctx: &Context) -> Result<Report, BenchError> {
    let mut report = Report::new("fig8", "accuracy vs sensing distance");
    report.line(format!("{:>9} {:>9}", "dist(cm)", "accuracy"));
    let mut in_band = Vec::new();
    let mut beyond = Vec::new();
    for (di, d_cm) in distances_cm(ctx.scale).iter().enumerate() {
        let spec = CorpusSpec {
            users: 3,
            sessions: 2,
            reps: ctx.scale.scaled(12),
            condition: Condition::Distance {
                height_m: d_cm / 100.0,
            },
            seed: ctx.seed + 800 + di as u64,
            ..Default::default()
        };
        let corpus = generate_corpus(&spec);
        let features = all_gesture_feature_set(&corpus, &ctx.config);
        let folds = stratified_k_fold(&features.y, 3, ctx.seed + di as u64);
        let merged = merge_folds(
            folds
                .iter()
                .map(|s| {
                    eval_rf_fold(
                        &features,
                        s,
                        8,
                        ctx.config.forest_trees,
                        ctx.seed + di as u64,
                    )
                })
                .collect::<Result<Vec<_>, _>>()?,
            8,
        );
        let acc = merged.accuracy();
        report.line(format!("{:>9.1} {:>8.2}%", d_cm, pct(acc)));
        if *d_cm <= 6.0 {
            in_band.push(acc);
        } else {
            beyond.push(acc);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    report.line(format!(
        "mean accuracy 0.5-6 cm: {:.2}%   beyond 6 cm: {:.2}%",
        pct(mean(&in_band)),
        pct(mean(&beyond))
    ));
    report.metric("mean_accuracy_optimal_band", pct(mean(&in_band)));
    report.metric("mean_accuracy_beyond_band", pct(mean(&beyond)));
    report.paper_value("mean_accuracy_optimal_band", 90.0);
    Ok(report)
}
