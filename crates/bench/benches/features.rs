//! Feature-extraction cost: the Table-I bank over a typical 3-channel
//! gesture window, plus the per-kind breakdown showing where the time goes
//! (the quadratic entropy estimators dominate).

use airfinger_features::{FeatureExtractor, FeatureKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn window(n: usize) -> Vec<Vec<f64>> {
    (0..3)
        .map(|k| {
            (0..n)
                .map(|i| {
                    let t = i as f64 / n as f64;
                    (60.0 + 20.0 * k as f64) * (std::f64::consts::TAU * 3.0 * t).sin().powi(2)
                })
                .collect()
        })
        .collect()
}

fn bench_features(c: &mut Criterion) {
    let channels = window(150);

    c.bench_function("table1_3ch_150", |b| {
        let e = FeatureExtractor::table1();
        b.iter(|| std::hint::black_box(e.extract_multi(&channels)));
    });

    c.bench_function("nongesture9_3ch_150", |b| {
        let e = FeatureExtractor::nongesture9();
        b.iter(|| std::hint::black_box(e.extract_multi(&channels)));
    });

    let mut group = c.benchmark_group("per_kind_150");
    for kind in [
        FeatureKind::SampleEntropy,
        FeatureKind::ApproximateEntropy,
        FeatureKind::Fft,
        FeatureKind::Cwt,
        FeatureKind::AugmentedDickeyFuller,
        FeatureKind::StandardDeviation,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, k| b.iter(|| std::hint::black_box(k.values(&channels[0]))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_features
}
criterion_main!(benches);
