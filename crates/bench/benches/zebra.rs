//! ZEBRA tracking cost: "simulate track-aimed gestures in terms of
//! direction, velocity, and displacement in real-time with low computation
//! and low energy costs" (§IV-D3).

use airfinger_core::config::AirFingerConfig;
use airfinger_core::processing::DataProcessor;
use airfinger_core::zebra::Zebra;
use airfinger_synth::dataset::{generate_sample, CorpusSpec};
use airfinger_synth::gesture::{Gesture, SampleLabel};
use airfinger_synth::profile::UserProfile;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_zebra(c: &mut Criterion) {
    let config = AirFingerConfig::default();
    let spec = CorpusSpec {
        users: 1,
        sessions: 1,
        reps: 1,
        ..Default::default()
    };
    let profile = UserProfile::sample(0, spec.seed);
    let sample = generate_sample(
        &profile,
        SampleLabel::Gesture(Gesture::ScrollUp),
        0,
        0,
        &spec,
    );
    let window = DataProcessor::new(config).primary_window(&sample.trace);
    let zebra = Zebra::new(config);

    c.bench_function("zebra_track", |b| {
        b.iter(|| std::hint::black_box(zebra.track(&window)));
    });

    c.bench_function("channel_timing", |b| {
        b.iter(|| std::hint::black_box(window.channel_timing(&config)));
    });

    c.bench_function("ascents", |b| {
        b.iter(|| std::hint::black_box(window.ascents(&config)));
    });

    let track = zebra.track(&window).expect("scroll tracked");
    c.bench_function("displacement_query", |b| {
        b.iter(|| std::hint::black_box(track.displacement_mm(0.25)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_zebra
}
criterion_main!(benches);
