//! Sequential vs parallel random-forest training and batch prediction.
//!
//! The forest's thread knob never changes the fitted model (see the
//! `parallel_determinism` integration test), so this bench isolates the
//! pure speedup: the same seeded fit at 1 thread and at the machine's
//! core count. On a 4-core runner the parallel fit should finish in
//! well under half the sequential time.

use airfinger_ml::classifier::Classifier;
use airfinger_ml::forest::{RandomForest, RandomForestConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// 8-class blobs in 40 dimensions, deterministic.
fn dataset(n_per_class: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut x = Vec::new();
    let mut y = Vec::new();
    let noise = |i: usize, j: usize| {
        let mut z = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (j as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 30)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    for class in 0..8usize {
        for i in 0..n_per_class {
            let row: Vec<f64> = (0..40)
                .map(|j| {
                    let center = if j % 8 == class { 2.0 } else { 0.0 };
                    center + noise(class * n_per_class + i, j)
                })
                .collect();
            x.push(row);
            y.push(class);
        }
    }
    (x, y)
}

fn forest(n_threads: usize) -> RandomForest {
    RandomForest::new(RandomForestConfig {
        n_trees: 100,
        seed: 7,
        n_threads,
        ..Default::default()
    })
}

fn bench_forest_parallel(c: &mut Criterion) {
    let (x, y) = dataset(40);
    let auto = airfinger_parallel::effective_threads(None);
    let thread_counts: Vec<usize> = if auto > 1 { vec![1, auto] } else { vec![1] };

    let mut group = c.benchmark_group("forest_train_320x40");
    group.sample_size(10);
    for &threads in &thread_counts {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut rf = forest(threads);
                    rf.fit(&x, &y).expect("fit");
                    std::hint::black_box(rf.n_classes())
                });
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("forest_predict_batch_320");
    for &threads in &thread_counts {
        let mut rf = forest(threads);
        rf.fit(&x, &y).expect("fit");
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| std::hint::black_box(rf.predict_batch(&x).expect("predict")));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_forest_parallel
}
criterion_main!(benches);
