//! Dynamic-threshold (Otsu) computation and gesture segmentation cost:
//! both must fit comfortably inside the 10 ms sample budget at 100 Hz.

use airfinger_dsp::segment::{Segmenter, SegmenterConfig, StreamingSegmenter};
use airfinger_dsp::threshold::{otsu_threshold, DynamicThreshold};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn delta_trace(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let burst = (i / 100) % 3 == 1;
            if burst {
                120.0 + 40.0 * ((i as f64) * 0.7).sin().abs()
            } else {
                4.0 + ((i * 7919) % 13) as f64 * 0.4
            }
        })
        .collect()
}

fn bench_segmentation(c: &mut Criterion) {
    let delta = delta_trace(2_000);

    c.bench_function("otsu_batch_2k", |b| {
        b.iter(|| std::hint::black_box(otsu_threshold(&delta)));
    });

    let mut group = c.benchmark_group("dynamic_threshold_stream");
    group.throughput(Throughput::Elements(delta.len() as u64));
    group.bench_function("observe_2k", |b| {
        b.iter(|| {
            let mut dt = DynamicThreshold::default();
            for &v in &delta {
                dt.observe(v);
            }
            std::hint::black_box(dt.threshold())
        });
    });
    group.finish();

    c.bench_function("segmenter_batch_2k", |b| {
        let seg = Segmenter::new(SegmenterConfig::default());
        b.iter(|| std::hint::black_box(seg.segment(&delta, 30.0)));
    });

    c.bench_function("segmenter_streaming_2k", |b| {
        b.iter(|| {
            let mut s = StreamingSegmenter::new(SegmenterConfig::default());
            let mut found = 0usize;
            for &v in &delta {
                if s.push(v, 30.0).is_some() {
                    found += 1;
                }
            }
            std::hint::black_box(found)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_segmentation
}
criterion_main!(benches);
