//! Classifier cost comparison — the paper's §V-E claim that "although LR
//! also performs not bad, its computing time is much longer than that of
//! RF". Training and single-sample inference are timed for all four
//! classifiers on an identical synthetic feature matrix.

use airfinger_ml::classifier::Classifier;
use airfinger_ml::forest::{RandomForest, RandomForestConfig};
use airfinger_ml::logistic::{LogisticRegression, LogisticRegressionConfig};
use airfinger_ml::naive_bayes::BernoulliNaiveBayes;
use airfinger_ml::tree::{DecisionTree, DecisionTreeConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// 8-class blobs in 40 dimensions, deterministic.
fn dataset(n_per_class: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut x = Vec::new();
    let mut y = Vec::new();
    let noise = |i: usize, j: usize| {
        let mut z = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (j as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 30)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    for class in 0..8usize {
        for i in 0..n_per_class {
            let row: Vec<f64> = (0..40)
                .map(|j| {
                    let center = if j % 8 == class { 2.0 } else { 0.0 };
                    center + noise(class * n_per_class + i, j)
                })
                .collect();
            x.push(row);
            y.push(class);
        }
    }
    (x, y)
}

type ClassifierFactory = Box<dyn Fn() -> Box<dyn Classifier>>;

fn bench_classifiers(c: &mut Criterion) {
    let (x, y) = dataset(40);
    let probe = x[3].clone();
    let make: Vec<(&str, ClassifierFactory)> = vec![
        (
            "RF",
            Box::new(|| {
                Box::new(RandomForest::new(RandomForestConfig {
                    n_trees: 100,
                    seed: 7,
                    ..Default::default()
                }))
            }),
        ),
        (
            "LR",
            Box::new(|| Box::new(LogisticRegression::new(LogisticRegressionConfig::default()))),
        ),
        (
            "DT",
            Box::new(|| Box::new(DecisionTree::new(DecisionTreeConfig::default()))),
        ),
        ("BNB", Box::new(|| Box::new(BernoulliNaiveBayes::default()))),
    ];

    let mut group = c.benchmark_group("train_320x40");
    group.sample_size(10);
    for (name, factory) in &make {
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| {
                let mut clf = factory();
                clf.fit(&x, &y).expect("fit");
                std::hint::black_box(clf.predict(&probe).expect("predict"))
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("predict_one");
    for (name, factory) in &make {
        let mut clf = factory();
        clf.fit(&x, &y).expect("fit");
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| std::hint::black_box(clf.predict(&probe).expect("predict")));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_classifiers
}
criterion_main!(benches);
