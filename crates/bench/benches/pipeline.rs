//! End-to-end pipeline cost: the per-sample streaming budget is 10 ms at
//! the prototype's 100 Hz; whole-recording recognition must also be fast
//! enough for "real-time gesture recognition on wearable smart devices".

use airfinger_core::config::AirFingerConfig;
use airfinger_core::engine::StreamingEngine;
use airfinger_core::pipeline::AirFinger;
use airfinger_synth::dataset::{generate_corpus, CorpusSpec};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn trained() -> (AirFinger, airfinger_synth::dataset::Corpus) {
    let spec = CorpusSpec {
        users: 2,
        sessions: 1,
        reps: 3,
        ..Default::default()
    };
    let corpus = generate_corpus(&spec);
    let mut af = AirFinger::new(AirFingerConfig {
        forest_trees: 30,
        ..Default::default()
    });
    af.train_on_corpus(&corpus, None).expect("training");
    (af, corpus)
}

fn bench_pipeline(c: &mut Criterion) {
    let (af, corpus) = trained();
    let trace = corpus.samples()[0].trace.clone();

    c.bench_function("recognize_primary", |b| {
        b.iter(|| std::hint::black_box(af.recognize_primary(&trace).expect("recognize")));
    });

    c.bench_function("segment_only", |b| {
        b.iter(|| std::hint::black_box(af.processor().process(&trace)));
    });

    let mut group = c.benchmark_group("streaming_push");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("per_sample", |b| {
        b.iter(|| {
            let mut engine = StreamingEngine::new(af.clone(), 3).expect("engine");
            let mut events = 0usize;
            for i in 0..trace.len() {
                let s = [
                    trace.channel(0)[i],
                    trace.channel(1)[i],
                    trace.channel(2)[i],
                ];
                if engine.push(&s).expect("push").is_some() {
                    events += 1;
                }
            }
            std::hint::black_box(events)
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_pipeline
}
criterion_main!(benches);
