//! Ablation timings for the design choices DESIGN.md calls out:
//! SBC window sizes, dynamic (Otsu) vs fixed thresholding, the full
//! 25-kind feature bank vs the 9-kind subset vs a naive 3-stat baseline,
//! and envelope smoothing on/off in the ascent primitive.

use airfinger_dsp::sbc::Sbc;
use airfinger_dsp::threshold::{otsu_threshold, DynamicThreshold};
use airfinger_features::{FeatureExtractor, FeatureKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn rss(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 400.0 + 60.0 * ((i as f64) * 0.21).sin())
        .collect()
}

fn bench_ablation(c: &mut Criterion) {
    let trace = rss(2_000);

    // SBC window size: the paper picks w = 10 ms (1 sample); larger
    // windows cost the same O(n) but change sensitivity.
    let mut group = c.benchmark_group("sbc_window");
    for w in [1usize, 3, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, &w| {
            let sbc = Sbc::new(w);
            b.iter(|| std::hint::black_box(sbc.apply(&trace)));
        });
    }
    group.finish();

    // Dynamic vs fixed thresholding: DT pays an Otsu pass.
    let delta = Sbc::new(1).apply(&trace);
    c.bench_function("threshold_fixed", |b| {
        b.iter(|| std::hint::black_box(delta.iter().filter(|&&v| v > 10.0).count()));
    });
    c.bench_function("threshold_otsu", |b| {
        b.iter(|| std::hint::black_box(otsu_threshold(&delta)));
    });
    c.bench_function("threshold_streaming_dt", |b| {
        b.iter(|| {
            let mut dt = DynamicThreshold::default();
            dt.observe_all(&delta);
            std::hint::black_box(dt.threshold())
        });
    });

    // Feature-set size: 25 kinds vs the bold 9 vs a naive 3-stat baseline.
    let seg: Vec<f64> = trace[100..250].to_vec();
    let naive = FeatureExtractor::new(vec![
        FeatureKind::StandardDeviation,
        FeatureKind::NumberOfPeaks,
        FeatureKind::AbsoluteEnergy,
    ]);
    let mut group = c.benchmark_group("feature_set");
    for (name, e) in [
        ("table1_25", FeatureExtractor::table1()),
        ("bold_9", FeatureExtractor::nongesture9()),
        ("naive_3", naive),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &e, |b, e| {
            b.iter(|| std::hint::black_box(e.extract(&seg)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_ablation
}
criterion_main!(benches);
