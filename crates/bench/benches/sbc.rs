//! SBC is O(n) (§IV-B1: "simple and efficient with O(n) time complexity"):
//! time per sample must stay flat as the trace grows.

use airfinger_dsp::sbc::Sbc;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn trace(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 300.0 + 40.0 * ((i as f64) * 0.13).sin())
        .collect()
}

fn bench_sbc(c: &mut Criterion) {
    let mut group = c.benchmark_group("sbc_batch");
    for n in [1_000usize, 10_000, 100_000] {
        let rss = trace(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &rss, |b, rss| {
            let sbc = Sbc::new(1);
            b.iter(|| std::hint::black_box(sbc.apply(rss)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("sbc_streaming");
    let rss = trace(10_000);
    group.throughput(Throughput::Elements(rss.len() as u64));
    group.bench_function("push_10k", |b| {
        b.iter(|| {
            let mut s = Sbc::new(1).stream();
            let mut acc = 0.0;
            for &v in &rss {
                acc += s.push(v);
            }
            std::hint::black_box(acc)
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sbc
}
criterion_main!(benches);
