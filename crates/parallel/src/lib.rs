//! Workspace-wide parallel execution layer.
//!
//! Everything here is built on [`std::thread::scope`] — no external
//! dependencies, no long-lived pool, no unsafe. The design constraint that
//! shapes the whole module is *determinism*: a parallel map must return
//! exactly what the sequential map would, in the same order, regardless of
//! the thread count. Callers that need per-item randomness derive an
//! independent RNG stream per item (e.g. per tree) rather than sharing one
//! sequential RNG, so results are bit-identical at any thread count.
//!
//! Thread-count resolution, in priority order:
//!
//! 1. an explicit caller request (`Some(n)` from a config field),
//! 2. the `AIRFINGER_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! A resolved count of 1 short-circuits to a plain in-place loop, so
//! single-core machines and `AIRFINGER_THREADS=1` runs never pay for thread
//! spawning.

use std::num::NonZeroUsize;

/// Environment variable overriding the worker-thread count for every
/// parallel operation in the workspace.
pub const THREADS_ENV: &str = "AIRFINGER_THREADS";

/// Resolve the effective worker-thread count.
///
/// `requested` is the caller's explicit choice (typically a config field
/// where 0 means "auto"). When it is `None` or `Some(0)`, the
/// [`THREADS_ENV`] environment variable is consulted; when that is unset,
/// empty, or unparseable, the count falls back to
/// [`std::thread::available_parallelism`] (and to 1 if even that is
/// unavailable). The result is always at least 1.
#[must_use]
pub fn effective_threads(requested: Option<usize>) -> usize {
    match requested {
        Some(n) if n > 0 => n,
        _ => env_threads().unwrap_or_else(auto_threads),
    }
}

fn env_threads() -> Option<usize> {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

fn auto_threads() -> usize {
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// Record how many jobs one worker executed during one dispatch. The
/// per-worker distribution is a scheduling observation, not a result, so
/// it lives in a histogram (which the determinism suite deliberately
/// ignores — only counters must be thread-count-invariant).
fn observe_worker_jobs(op: &'static str, jobs: usize) {
    if !airfinger_obs::recording() {
        return;
    }
    const EDGES: [f64; 11] = [
        1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
    ];
    // lint: metric-suffix — unitless jobs-per-worker distribution, not a latency
    airfinger_obs::histogram_with("parallel_worker_jobs", &[("op", op)], &EDGES)
        .observe(jobs as f64);
}

/// Map `f` over `items` using up to `threads` scoped worker threads,
/// preserving input order in the output.
///
/// The items are split into one contiguous chunk per worker, each worker
/// maps its chunk independently, and the chunks are reassembled in order —
/// so for any pure `f` the result is exactly `items.iter().map(f).collect()`
/// at every thread count. `f` receives `(index, item)` where `index` is the
/// item's position in `items`, which is what lets callers derive
/// deterministic per-item state (seeds, labels) independent of scheduling.
///
/// With `threads <= 1` or fewer than two items, the map runs inline on the
/// calling thread with no spawning at all.
pub fn par_map_indexed<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    // Counted at the dispatch site — once per item, never per worker — so
    // the total is identical at every thread count.
    airfinger_obs::counter!("parallel_jobs_total", op = "map").add(n as u64);
    let workers = threads.max(1).min(n);
    if workers <= 1 {
        let _busy = airfinger_obs::span!("parallel_worker_busy_seconds", op = "map");
        observe_worker_jobs("map", n);
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // Ceil-divide so the last chunk is never longer than the others.
    let chunk = n.div_ceil(workers);
    let mut chunks: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(c, slice)| {
                let f = &f;
                scope.spawn(move || {
                    let _busy = airfinger_obs::span!("parallel_worker_busy_seconds", op = "map");
                    observe_worker_jobs("map", slice.len());
                    slice
                        .iter()
                        .enumerate()
                        .map(|(i, t)| f(c * chunk + i, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                // Re-raise the worker's panic payload on the caller's
                // thread instead of panicking with a fresh message.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut out = Vec::with_capacity(n);
    for c in &mut chunks {
        out.append(c);
    }
    out
}

/// Order-preserving parallel map without the index; see
/// [`par_map_indexed`].
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items, threads, |_, t| f(t))
}

/// Mutate `items` in place using up to `threads` scoped worker threads.
///
/// The items are split into one contiguous chunk per worker via
/// [`slice::chunks_mut`], so every worker owns a disjoint sub-slice and no
/// locks are taken — this is the fleet layer's shard-drain primitive,
/// where each shard exclusively owns its sessions. `f` receives
/// `(index, &mut item)` with the item's global index. Because each item is
/// visited exactly once by exactly one worker, any per-item deterministic
/// `f` leaves `items` in a state independent of the thread count.
///
/// With `threads <= 1` or fewer than two items, the loop runs inline on
/// the calling thread with no spawning at all.
pub fn par_for_each_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    // Counted at the dispatch site — once per item, never per worker — so
    // the total is identical at every thread count.
    airfinger_obs::counter!("parallel_jobs_total", op = "for_each_mut").add(n as u64);
    let workers = threads.max(1).min(n);
    if workers <= 1 {
        let _busy = airfinger_obs::span!("parallel_worker_busy_seconds", op = "for_each_mut");
        observe_worker_jobs("for_each_mut", n);
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .enumerate()
            .map(|(c, slice)| {
                let f = &f;
                scope.spawn(move || {
                    let _busy =
                        airfinger_obs::span!("parallel_worker_busy_seconds", op = "for_each_mut");
                    observe_worker_jobs("for_each_mut", slice.len());
                    for (i, item) in slice.iter_mut().enumerate() {
                        f(c * chunk + i, item);
                    }
                })
            })
            .collect();
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

/// Run `count` independent jobs on up to `threads` workers and collect the
/// results in job order: the parallel equivalent of
/// `(0..count).map(f).collect()`.
///
/// Jobs are handed out dynamically from a shared atomic counter, so uneven
/// job durations (one slow experiment among many fast ones) still keep all
/// workers busy. Output order is by job index, never by completion order.
pub fn par_run<R, F>(count: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    airfinger_obs::counter!("parallel_jobs_total", op = "run").add(count as u64);
    let workers = threads.max(1).min(count);
    if workers <= 1 {
        let _busy = airfinger_obs::span!("parallel_worker_busy_seconds", op = "run");
        observe_worker_jobs("run", count);
        return (0..count).map(f).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    let next = AtomicUsize::new(0);
    let mut done: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let _busy = airfinger_obs::span!("parallel_worker_busy_seconds", op = "run");
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        mine.push((i, f(i)));
                    }
                    observe_worker_jobs("run", mine.len());
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    done.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(done.len(), count);
    done.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential_at_any_thread_count() {
        let items: Vec<u64> = (0..103).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 4, 7, 16, 200] {
            let got = par_map(&items, threads, |x| x * x + 1);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_indexed_passes_global_indices() {
        let items = vec![10u64; 57];
        for threads in [1, 3, 8] {
            let got = par_map_indexed(&items, threads, |i, x| i as u64 * 1000 + x);
            for (i, v) in got.iter().enumerate() {
                assert_eq!(*v, i as u64 * 1000 + 10, "threads={threads}");
            }
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, 8, |x| *x).is_empty());
        assert_eq!(par_map(&[42u32], 8, |x| *x + 1), vec![43]);
    }

    #[test]
    fn par_for_each_mut_visits_every_item_once() {
        for threads in [1, 2, 3, 8, 64] {
            let mut items: Vec<u64> = (0..97).collect();
            par_for_each_mut(&mut items, threads, |i, v| *v = *v * 2 + i as u64);
            let expect: Vec<u64> = (0..97).map(|i| i * 3).collect();
            assert_eq!(items, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_for_each_mut_handles_empty_and_single() {
        let mut empty: Vec<u32> = vec![];
        par_for_each_mut(&mut empty, 4, |_, _| {});
        assert!(empty.is_empty());
        let mut one = vec![7u32];
        par_for_each_mut(&mut one, 4, |_, v| *v += 1);
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn par_run_preserves_job_order() {
        for threads in [1, 2, 5, 32] {
            let got = par_run(41, threads, |i| i * 3);
            let expect: Vec<usize> = (0..41).map(|i| i * 3).collect();
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_run_zero_jobs() {
        assert!(par_run(0, 4, |i| i).is_empty());
    }

    #[test]
    fn effective_threads_explicit_wins() {
        assert_eq!(effective_threads(Some(3)), 3);
        assert_eq!(effective_threads(Some(1)), 1);
    }

    #[test]
    fn effective_threads_is_positive() {
        assert!(effective_threads(None) >= 1);
        assert!(effective_threads(Some(0)) >= 1);
    }
}
