//! End-to-end CLI test: generate → train → recognize → info through the
//! real binary.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_airfinger")
}

fn run(args: &[&str]) -> (bool, String) {
    let out = Command::new(bin())
        .args(args)
        .output()
        .expect("binary runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn generate_train_recognize_info_roundtrip() {
    let dir = std::env::temp_dir().join(format!("airfinger-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let corpus = dir.join("corpus.json");
    let model = dir.join("model.json");
    let corpus_s = corpus.to_str().expect("utf8 path");
    let model_s = model.to_str().expect("utf8 path");

    let (ok, text) = run(&[
        "generate",
        "--users",
        "2",
        "--sessions",
        "1",
        "--reps",
        "2",
        "--out",
        corpus_s,
    ]);
    assert!(ok, "generate failed: {text}");
    assert!(text.contains("32 samples"), "{text}");

    let (ok, text) = run(&[
        "train", "--corpus", corpus_s, "--trees", "20", "--out", model_s,
    ]);
    assert!(ok, "train failed: {text}");

    let (ok, text) = run(&[
        "recognize",
        "--model",
        model_s,
        "--corpus",
        corpus_s,
        "--limit",
        "8",
    ]);
    assert!(ok, "recognize failed: {text}");
    assert!(text.contains("accuracy"), "{text}");

    let (ok, text) = run(&["info", "--model", model_s, "--top", "3"]);
    assert!(ok, "info failed: {text}");
    assert!(text.contains("trained: true"), "{text}");
    assert!(text.contains("top 3 features"), "{text}");

    // Enrollment: a new user's trials fold into the trained model.
    let enroll = dir.join("enroll.json");
    let adapted = dir.join("adapted.json");
    let enroll_s = enroll.to_str().expect("utf8 path");
    let adapted_s = adapted.to_str().expect("utf8 path");
    let (ok, text) = run(&[
        "generate",
        "--users",
        "1",
        "--sessions",
        "1",
        "--reps",
        "2",
        "--seed",
        "777",
        "--out",
        enroll_s,
    ]);
    assert!(ok, "generate enroll failed: {text}");
    let (ok, text) = run(&[
        "adapt", "--model", model_s, "--corpus", corpus_s, "--enroll", enroll_s, "--trials", "1",
        "--out", adapted_s,
    ]);
    assert!(ok, "adapt failed: {text}");
    assert!(text.contains("enrolled 8 trials"), "{text}");
    let (ok, text) = run(&["recognize", "--model", adapted_s, "--corpus", enroll_s]);
    assert!(ok, "recognize with adapted model failed: {text}");
    assert!(text.contains("accuracy"), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_command_fails_with_help() {
    let (ok, text) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(text.contains("unknown command"));
}

#[test]
fn missing_flags_are_reported() {
    let (ok, text) = run(&["train"]);
    assert!(!ok);
    assert!(text.contains("--corpus"), "{text}");
}
