//! CLI subcommand implementations.

use crate::args::Args;
use airfinger_core::config::AirFingerConfig;
use airfinger_core::pipeline::AirFinger;
use airfinger_ml::metrics::ConfusionMatrix;
use airfinger_synth::dataset::{
    generate_corpus, generate_nongesture_corpus, Corpus, CorpusSpec, Frontend,
};
use airfinger_synth::gesture::Gesture;
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn fail(msg: impl std::fmt::Display) -> i32 {
    eprintln!("error: {msg}");
    2
}

/// Quick training pass shared by the soak-style commands (`monitor`,
/// `fleet`): a small gesture corpus plus non-gesture negatives so the
/// rejection stage is live while streaming.
fn train_quick(seed: u64, trees: usize) -> Result<AirFinger, String> {
    let spec = CorpusSpec {
        users: 2,
        sessions: 2,
        reps: 4,
        seed,
        ..Default::default()
    };
    let non_spec = CorpusSpec {
        reps: 12,
        ..spec.clone()
    };
    let corpus = generate_corpus(&spec);
    let non = generate_nongesture_corpus(&non_spec);
    eprintln!(
        "training on {} gesture + {} non-gesture samples ({trees} trees)…",
        corpus.len(),
        non.len()
    );
    let mut af = AirFinger::new(AirFingerConfig {
        forest_trees: trees,
        ..Default::default()
    });
    af.train_on_corpus(&corpus, Some(&non))
        .map_err(|e| e.to_string())?;
    Ok(af)
}

/// Write named text artifacts under `dir`, creating the directory (and
/// any missing parents) first. Shared by flight-recorder dumps and the
/// profiler exports so every CLI artifact lands under a caller-chosen
/// `--dump-dir`, never in the working directory.
fn write_artifacts(dir: &std::path::Path, files: &[(String, String)]) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    for (name, contents) in files {
        let path = dir.join(name);
        std::fs::write(&path, contents).map_err(|e| format!("write {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    }
    Ok(())
}

/// Write flight-recorder dumps under `dir`.
fn write_dumps(
    dir: &std::path::Path,
    dumps: &[airfinger_obs::recorder::Dump],
) -> Result<(), String> {
    let files: Vec<(String, String)> = dumps
        .iter()
        .map(|d| (d.file_name(), d.json.clone()))
        .collect();
    write_artifacts(dir, &files)
}

/// When `--profile` is on and the command has a `--dump-dir`, export the
/// profiler's collapsed stacks (flamegraph format) and JSON breakdown
/// there; without a dump dir the data stays scrapeable via `/profile`.
fn write_profile_artifacts(dump_dir: Option<&str>) -> Result<(), String> {
    if !airfinger_obs::profile::enabled() {
        return Ok(());
    }
    let Some(dir) = dump_dir else {
        eprintln!("note: --profile without --dump-dir: collapsed stacks not written");
        return Ok(());
    };
    let snapshot = airfinger_obs::profile::snapshot();
    write_artifacts(
        std::path::Path::new(dir),
        &[
            ("profile_collapsed.txt".to_string(), snapshot.collapsed()),
            ("profile.json".to_string(), snapshot.to_json()),
        ],
    )
}

/// One-line push-latency rollup from the global nanosecond histogram
/// (`engine_push_ns`, recorded by every `StreamingEngine::push`).
/// Silent when recording is off or nothing was pushed.
fn print_push_latency() {
    let Some(push) = airfinger_obs::latency::snapshot_all()
        .into_iter()
        .find(|s| s.id.name == "engine_push_ns")
    else {
        return;
    };
    if push.count == 0 {
        return;
    }
    println!(
        "push latency: p50 {} ns | p95 {} ns | p99 {} ns | max {} ns over {} pushes",
        push.p50_ns(),
        push.p95_ns(),
        push.p99_ns(),
        push.max_ns,
        push.count
    );
}

/// `airfinger generate`
pub(crate) fn generate(argv: &[String]) -> i32 {
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => return fail(e),
    };
    let run = || -> Result<(), String> {
        let spec = CorpusSpec {
            users: args.number("users", 3usize)?,
            sessions: args.number("sessions", 2usize)?,
            reps: args.number("reps", 5usize)?,
            seed: args.number("seed", 0x41F1_6E12u64)?,
            frontend: if args.flag("lockin") {
                Frontend::LockIn
            } else {
                Frontend::Dc
            },
            ..Default::default()
        };
        let out = args.required("out")?;
        let corpus = if args.flag("nongestures") {
            generate_nongesture_corpus(&spec)
        } else {
            generate_corpus(&spec)
        };
        eprintln!("generated {} samples", corpus.len());
        let file = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
        corpus
            .write_json(BufWriter::new(file))
            .map_err(|e| format!("serialize corpus: {e}"))?;
        eprintln!("wrote {out}");
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(e),
    }
}

fn load_corpus(path: &str) -> Result<Corpus, String> {
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    Corpus::read_json(BufReader::new(file)).map_err(|e| format!("parse {path}: {e}"))
}

/// `airfinger train`
pub(crate) fn train(argv: &[String]) -> i32 {
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => return fail(e),
    };
    let run = || -> Result<(), String> {
        let corpus = load_corpus(args.required("corpus")?)?;
        let non = match args.optional("nongestures") {
            Some(p) => Some(load_corpus(p)?),
            None => None,
        };
        let config = AirFingerConfig {
            forest_trees: args.number("trees", 100usize)?,
            ..Default::default()
        };
        let mut af = AirFinger::new(config);
        eprintln!("training on {} samples…", corpus.len());
        af.train_on_corpus(&corpus, non.as_ref())
            .map_err(|e| e.to_string())?;
        let out = args.required("out")?;
        let file = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
        serde_json::to_writer(BufWriter::new(file), &af)
            .map_err(|e| format!("serialize model: {e}"))?;
        eprintln!("wrote {out}");
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(e),
    }
}

fn load_model(path: &str) -> Result<AirFinger, String> {
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    serde_json::from_reader(BufReader::new(file)).map_err(|e| format!("parse {path}: {e}"))
}

/// `airfinger recognize`
pub(crate) fn recognize(argv: &[String]) -> i32 {
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => return fail(e),
    };
    let run = || -> Result<(), String> {
        let af = load_model(args.required("model")?)?;
        let corpus = load_corpus(args.required("corpus")?)?;
        let limit = args.number("limit", usize::MAX)?;
        let mut matrix = ConfusionMatrix::new(8);
        let mut rejected = 0usize;
        let mut shown = 0usize;
        for s in corpus.samples().iter().take(limit) {
            let event = af.recognize_primary(&s.trace).map_err(|e| e.to_string())?;
            match (s.label.gesture(), event.gesture()) {
                (Some(truth), Some(pred)) => matrix.record(truth.index(), pred.index()),
                _ => rejected += 1,
            }
            if shown < 10 {
                println!("{:<14} -> {}", s.label.to_string(), event);
                shown += 1;
            }
        }
        if matrix.total() > 0 {
            println!(
                "\naccuracy {:.2}% over {} samples ({} rejected/non-gesture)",
                100.0 * matrix.accuracy(),
                matrix.total(),
                rejected
            );
            for g in Gesture::ALL {
                if let Some(r) = matrix.recall(g.index()) {
                    println!("  {:<14} recall {:>6.2}%", g.to_string(), 100.0 * r);
                }
            }
        } else {
            println!("\n{rejected} samples, none carried gesture labels");
        }
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(e),
    }
}

/// `airfinger info`
pub(crate) fn info(argv: &[String]) -> i32 {
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => return fail(e),
    };
    let run = || -> Result<(), String> {
        let af = load_model(args.required("model")?)?;
        let top = args.number("top", 10usize)?;
        println!("trained: {}", af.is_trained());
        println!("interference filter: {}", af.has_filter());
        let c = af.config();
        println!(
            "config: {} Hz, SBC w={} samples, t_e={} samples, I_g={} ms, v'={} mm/s, {} trees",
            c.sample_rate_hz,
            c.sbc_window,
            c.segmenter.merge_gap,
            c.ig_ms,
            c.v_prime_mm_s,
            c.forest_trees
        );
        let importances = af.detect_recognizer().feature_importances();
        if !importances.is_empty() {
            let names = af.detect_recognizer().feature_names(3);
            println!("top {top} features:");
            for idx in airfinger_ml::forest::top_k_features(importances, top) {
                println!(
                    "  {:<34} {:.4}",
                    names.get(idx).cloned().unwrap_or_else(|| format!("f{idx}")),
                    importances[idx]
                );
            }
        }
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(e),
    }
}

/// `airfinger monitor`
pub(crate) fn monitor(argv: &[String]) -> i32 {
    use airfinger_core::engine::StreamingEngine;
    use airfinger_obs::{EngineMonitor, MonitorConfig, RecorderConfig, SloRules, WindowConfig};
    use airfinger_synth::session::{generate_session, standard_fault_schedule, SessionSpec};

    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => return fail(e),
    };
    let run = || -> Result<i32, String> {
        let samples = args.number("soak", 2000usize)?;
        let horizon = args.number("window", 400usize)?;
        let seed = args.number("seed", 0x41F1_6E12u64)?;
        let trees = args.number("trees", 40usize)?;
        let fault = args.optional("fault").unwrap_or("none");
        let (spike, dropout) = match fault {
            "none" => (false, false),
            "spike" => (true, false),
            "dropout" => (false, true),
            "both" => (true, true),
            other => {
                return Err(format!(
                    "--fault expects none|spike|dropout|both, got `{other}`"
                ))
            }
        };
        let dump_dir = args.optional("dump-dir");
        let journal_capacity = args.number("journal", 512usize)?;
        let journal = (journal_capacity > 0).then(|| {
            let journal = airfinger_obs::events::global().clone();
            journal.set_capacity(journal_capacity);
            journal
        });
        let af = train_quick(seed, trees)?;

        let session = SessionSpec {
            samples,
            seed,
            faults: standard_fault_schedule(samples, spike, dropout),
            ..Default::default()
        };
        for f in &session.faults {
            eprintln!(
                "fault: {:?} over samples {}..{}",
                f.kind,
                f.start,
                f.start + f.duration
            );
        }
        let trace = generate_session(&session);
        let channels = trace.channel_count();
        let mut engine = StreamingEngine::new(af, channels).map_err(|e| format!("engine: {e}"))?;
        let mut monitor = EngineMonitor::new(MonitorConfig {
            window: WindowConfig { horizon },
            rules: SloRules::default(),
            recorder: RecorderConfig::default(),
            budget: airfinger_obs::BudgetConfig::default(),
        });
        if let Some(journal) = &journal {
            // Single-threaded driver: publish events as they happen so
            // `/events` is live mid-soak with `--serve-metrics`.
            monitor = monitor.with_journal(journal.clone());
        }
        engine.attach_monitor(monitor);

        eprintln!("streaming {samples} samples (window horizon {horizon})…");
        let mut sample = vec![0.0; channels];
        let mut printed_transitions = 0usize;
        let mut recognitions = 0usize;
        for i in 0..trace.len() {
            for (k, v) in sample.iter_mut().enumerate() {
                *v = trace.channel(k)[i];
            }
            if let Ok(Some(event)) = engine.push(&sample) {
                if event.gesture().is_some() {
                    recognitions += 1;
                }
            }
            let Some(m) = engine.monitor() else { continue };
            let Some(w) = m.last_window() else { continue };
            if w.start_sample + w.samples != i as u64 + 1 {
                continue; // this push did not close a window
            }
            println!(
                "[monitor] window {:>3} | samples {:>4} | segments {:>2} | accepted {:>2} | \
                 rejected {:>2} | p95 {:>7.3} ms | threshold {:>8.1} | {}",
                w.index,
                w.samples,
                w.segments,
                w.recognitions,
                w.rejections,
                w.p95_push_seconds * 1e3,
                w.mean_threshold,
                m.health()
            );
            for t in &m.transitions()[printed_transitions..] {
                println!(
                    "[monitor] health transition at window {}: {} -> {}",
                    t.window_index, t.from, t.to
                );
            }
            printed_transitions = m.transitions().len();
        }
        engine.flush().map_err(|e| format!("flush: {e}"))?;

        let Some(m) = engine.monitor_mut() else {
            return Err("monitor detached mid-run".into());
        };
        let health = m.health();
        let transitions = m.transitions().len();
        let windows = m.windows_closed();
        let events_emitted = m.events_emitted();
        let fast_alerts = m.budget().fast_alerts();
        let slow_alerts = m.budget().slow_alerts();
        let budget_remaining = m.budget().remaining();
        let dumps = m.take_dumps();
        println!(
            "\nsoak complete: {samples} samples, {windows} windows, {recognitions} recognitions, \
             {transitions} health transitions, {} dumps, final health {health}",
            dumps.len()
        );
        println!(
            "journal: {events_emitted} events emitted | error budget: {fast_alerts} fast / \
             {slow_alerts} slow burn alerts, {:.0}% budget remaining",
            budget_remaining * 100.0
        );
        print_push_latency();
        if let Some(dir) = dump_dir {
            write_dumps(std::path::Path::new(dir), &dumps)?;
            if let Some(journal) = &journal {
                write_artifacts(
                    std::path::Path::new(dir),
                    &[(
                        "events.json".to_string(),
                        journal.to_json_after(0, journal.capacity()),
                    )],
                )?;
            }
        } else if !dumps.is_empty() {
            eprintln!("note: {} dumps discarded (no --dump-dir)", dumps.len());
        }
        write_profile_artifacts(dump_dir)?;

        let reached_unhealthy = engine
            .monitor()
            .is_some_and(|m| m.transitions().iter().any(|t| t.to.level() == 2));
        let dump_count = engine.monitor().map_or(0, EngineMonitor::dump_count);
        if spike || dropout {
            // Fault injection must be *seen*: at least one transition, and
            // a breach that reached Unhealthy must leave exactly one dump.
            if transitions == 0 {
                eprintln!("FAIL: injected fault produced no health transition");
                return Ok(1);
            }
            if reached_unhealthy && dump_count != 1 {
                eprintln!("FAIL: expected exactly one dump, got {dump_count}");
                return Ok(1);
            }
            Ok(0)
        } else if health.level() == 0 && dump_count == 0 && fast_alerts == 0 && slow_alerts == 0 {
            Ok(0)
        } else {
            eprintln!(
                "FAIL: clean session ended {health} with {dump_count} dumps and \
                 {} burn alerts",
                fast_alerts + slow_alerts
            );
            Ok(1)
        }
    };
    match run() {
        Ok(code) => code,
        Err(e) => fail(e),
    }
}

/// `airfinger fleet`
pub(crate) fn fleet(argv: &[String]) -> i32 {
    use airfinger_fleet::{drive, generate_population, Fleet, FleetConfig, PopulationSpec};

    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => return fail(e),
    };
    let run = || -> Result<i32, String> {
        let sessions = args.number("sessions", 8usize)?;
        let shards = args.number("shards", 4usize)?;
        let samples = args.number("samples", 2000usize)?;
        let queue = args.number("queue", 512usize)?;
        let chunk = args.number("chunk", 64usize)?;
        let stagger = args.number("stagger", 1usize)?;
        let fault_every = args.number("fault-every", 0usize)?;
        let seed = args.number("seed", 0x41F1_6E12u64)?;
        let trees = args.number("trees", 40usize)?;
        let dump_dir = args.optional("dump-dir");
        let journal_capacity = args.number("journal", 1024usize)?;
        let journal = (journal_capacity > 0).then(|| {
            let journal = airfinger_obs::events::global().clone();
            journal.set_capacity(journal_capacity);
            journal
        });

        let pipeline = std::sync::Arc::new(train_quick(seed, trees)?);
        let pop = PopulationSpec {
            sessions,
            samples_per_session: samples,
            users: 4,
            seed,
            fault_every,
            arrival_stagger_rounds: stagger,
            chunk: chunk.max(1),
        };
        eprintln!("generating {sessions} session traces ({samples} samples each)…");
        let traces = generate_population(&pop, airfinger_parallel::effective_threads(None));
        let channels = traces.first().map_or(0, |t| t.channel_count());
        let config = FleetConfig {
            shards,
            sessions_per_shard: sessions.div_ceil(shards.max(1)),
            queue_capacity: queue,
            quantum: 2 * chunk.max(1),
            monitor_horizon: samples / 5,
            threads: 0,
        };
        let mut fleet = Fleet::new(pipeline, channels, config).map_err(|e| e.to_string())?;
        if let Some(journal) = &journal {
            fleet.set_journal(journal.clone());
        }
        let ids: Vec<u64> = (0..sessions as u64).collect();
        eprintln!("driving {sessions} session(s) over {shards} shard(s)…");
        let driven = drive(&mut fleet, &ids, &traces, &pop).map_err(|e| e.to_string())?;
        fleet.flush_sessions();

        let rollup = fleet.rollup();
        println!(
            "fleet complete: {} admitted, {} shed, {} samples fed over {} rounds",
            fleet.admitted(),
            fleet.shed(),
            driven.fed,
            driven.rounds
        );
        println!(
            "batched {} gesture windows in {} forest passes",
            fleet.batched_windows(),
            fleet.batches()
        );
        for s in &rollup.shards {
            println!(
                "[shard {}] {} session(s), {} queued | {} healthy / {} degraded / {} unhealthy \
                 | worst {} | burn fast {:.2} slow {:.2}",
                s.shard,
                s.sessions,
                s.queued,
                s.healthy,
                s.degraded,
                s.unhealthy,
                s.worst,
                s.burn_fast,
                s.burn_slow
            );
        }
        println!(
            "fleet health {}: {} recognitions, {} errors, {} samples processed",
            rollup.worst, rollup.recognitions, rollup.errors, rollup.samples_processed
        );
        println!(
            "error budget: worst burn fast {:.2} / slow {:.2}, min remaining {:.0}%",
            rollup.burn_fast_worst,
            rollup.burn_slow_worst,
            rollup.budget_remaining_min * 100.0
        );
        print_push_latency();
        if let Some(journal) = &journal {
            println!(
                "journal: {} events published ({} retained, {} evicted)",
                journal.head_seq(),
                journal.len(),
                journal.dropped()
            );
        }
        for e in fleet.shed_log() {
            println!("shed: session {} ({})", e.session, e.reason.tag());
        }

        // Each session keeps its own flight recorder; dump sequence numbers
        // restart per session, so every session gets its own subdirectory.
        let dumps = fleet.take_dumps();
        if let Some(dir) = dump_dir {
            for (id, session_dumps) in &dumps {
                write_dumps(
                    &std::path::Path::new(dir).join(format!("session_{id}")),
                    session_dumps,
                )?;
            }
        } else if !dumps.is_empty() {
            let n: usize = dumps.iter().map(|(_, d)| d.len()).sum();
            eprintln!("note: {n} dumps discarded (no --dump-dir)");
        }
        if let (Some(dir), Some(journal)) = (dump_dir, &journal) {
            write_artifacts(
                std::path::Path::new(dir),
                &[(
                    "events.json".to_string(),
                    journal.to_json_after(0, journal.capacity()),
                )],
            )?;
        }
        write_profile_artifacts(dump_dir)?;

        // Every requested session must be accounted for: admitted, or
        // refused at admission, or evicted under backpressure.
        let accounted = fleet.admitted() as usize + driven.shed_on_admission.len();
        if accounted != sessions {
            eprintln!("FAIL: {sessions} sessions requested, {accounted} accounted for");
            return Ok(1);
        }
        Ok(0)
    };
    match run() {
        Ok(code) => code,
        Err(e) => fail(e),
    }
}

/// `airfinger adapt`
pub(crate) fn adapt(argv: &[String]) -> i32 {
    use airfinger_core::adapt::UserAdapter;
    use airfinger_core::train::all_gesture_feature_set;

    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => return fail(e),
    };
    let run = || -> Result<(), String> {
        let mut af = load_model(args.required("model")?)?;
        if !af.is_trained() {
            return Err("model is untrained; run `airfinger train` first".into());
        }
        let base = load_corpus(args.required("corpus")?)?;
        let enroll = load_corpus(args.required("enroll")?)?;
        let mix = args.number("mix", airfinger_core::adapt::DEFAULT_MIX)?;
        let per_gesture = args.number("trials", usize::MAX)?;

        eprintln!(
            "extracting features of the {}-sample base corpus…",
            base.len()
        );
        let mut adapter =
            UserAdapter::new(all_gesture_feature_set(&base, af.config())).with_mix(mix);
        let mut taken = [0usize; 8];
        for s in enroll.samples() {
            let Some(g) = s.label.gesture() else { continue };
            if taken[g.index()] >= per_gesture {
                continue;
            }
            taken[g.index()] += 1;
            adapter.enroll_trace(&af, &s.trace, g);
        }
        if adapter.enrolled_count() == 0 {
            return Err("enrollment corpus holds no gesture samples".into());
        }
        eprintln!(
            "enrolled {} trials (each counting {}× in retraining)…",
            adapter.enrolled_count(),
            adapter.boost()
        );
        adapter.apply(&mut af).map_err(|e| e.to_string())?;
        let out = args.required("out")?;
        let file = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
        serde_json::to_writer(BufWriter::new(file), &af)
            .map_err(|e| format!("serialize model: {e}"))?;
        eprintln!("wrote {out}");
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(e),
    }
}
