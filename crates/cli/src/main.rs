//! `airfinger` — the command-line face of the pipeline.
//!
//! ```text
//! airfinger generate --users 3 --sessions 2 --reps 5 --out corpus.json
//! airfinger train --corpus corpus.json --out model.json
//! airfinger recognize --model model.json --corpus corpus.json
//! airfinger adapt --model model.json --corpus corpus.json --enroll me.json --out adapted.json
//! airfinger info --model model.json
//! airfinger monitor --soak 4000 --fault dropout --dump-dir dumps/
//! airfinger fleet --sessions 32 --shards 4 --samples 2000 --fault-every 8
//! ```
//!
//! Every command also accepts the global observability flags
//! `--metrics PATH` (write a machine-readable run report on exit),
//! `--trace` (print every instrumentation span to stderr), and
//! `--trace-out PATH` (export the span timeline as Chrome trace_event
//! JSON, loadable in Perfetto or chrome://tracing).

mod args;
mod commands;

/// Strip the global `--metrics PATH` / `--trace` / `--trace-out PATH`
/// flags out of the argv, returning the remaining arguments, the
/// requested metrics path, and the requested trace path.
fn split_global_flags(argv: Vec<String>) -> (Vec<String>, Option<String>, Option<String>) {
    let mut rest = Vec::with_capacity(argv.len());
    let mut metrics = None;
    let mut trace_out = None;
    let mut it = argv.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--metrics" => match it.next() {
                Some(p) => metrics = Some(p),
                None => {
                    eprintln!("--metrics needs a path");
                    std::process::exit(2);
                }
            },
            "--trace" => airfinger_obs::set_trace(true),
            "--trace-out" => match it.next() {
                Some(p) => {
                    airfinger_obs::trace::set_capture(true);
                    trace_out = Some(p);
                }
                None => {
                    eprintln!("--trace-out needs a path");
                    std::process::exit(2);
                }
            },
            _ => rest.push(arg),
        }
    }
    (rest, metrics, trace_out)
}

fn main() {
    let (argv, metrics_path, trace_out) = split_global_flags(std::env::args().skip(1).collect());
    let command = argv.first().cloned().unwrap_or_default();
    let code = match argv.first().map(String::as_str) {
        Some("generate") => commands::generate(&argv[1..]),
        Some("train") => commands::train(&argv[1..]),
        Some("recognize") => commands::recognize(&argv[1..]),
        Some("adapt") => commands::adapt(&argv[1..]),
        Some("info") => commands::info(&argv[1..]),
        Some("monitor") => commands::monitor(&argv[1..]),
        Some("fleet") => commands::fleet(&argv[1..]),
        Some("--help") | Some("-h") | None => {
            print_help();
            0
        }
        Some(other) => {
            eprintln!("unknown command `{other}`");
            print_help();
            2
        }
    };
    if let Some(path) = metrics_path {
        let mut report = airfinger_obs::report::RunReport::new(
            "airfinger-cli",
            airfinger_obs::global().snapshot(),
        );
        report.meta("command", &command);
        report.meta("exit_code", code);
        match std::fs::write(&path, report.to_json()) {
            Ok(()) => eprintln!("[airfinger] wrote run report to {path}"),
            Err(e) => {
                eprintln!("[airfinger] failed to write run report to {path}: {e}");
                std::process::exit(if code == 0 { 1 } else { code });
            }
        }
    }
    if let Some(path) = trace_out {
        match airfinger_obs::trace::write_chrome_trace(&path) {
            Ok(()) => eprintln!("[airfinger] wrote Chrome trace to {path}"),
            Err(e) => {
                eprintln!("[airfinger] failed to write trace to {path}: {e}");
                std::process::exit(if code == 0 { 1 } else { code });
            }
        }
    }
    std::process::exit(code);
}

fn print_help() {
    println!("airfinger — micro finger gesture recognition via NIR light sensing");
    println!();
    println!("commands:");
    println!("  generate   synthesize a labelled gesture corpus (JSON)");
    println!("             --users N --sessions N --reps N --seed N --out PATH");
    println!("             [--nongestures] [--lockin]");
    println!("  train      train a pipeline from a corpus");
    println!("             --corpus PATH [--nongestures PATH] [--trees N] --out PATH");
    println!("  recognize  run a trained pipeline over a corpus and score it");
    println!("             --model PATH --corpus PATH [--limit N]");
    println!("  adapt      fold a user's enrollment trials into a trained model");
    println!("             --model PATH --corpus PATH --enroll PATH --out PATH");
    println!("             [--mix F] [--trials N]");
    println!("  info       describe a trained model");
    println!("             --model PATH [--top N]");
    println!("  monitor    soak-test a live engine with health monitoring and");
    println!("             a flight recorder; optional fault injection");
    println!("             [--soak N] [--fault none|spike|dropout|both]");
    println!("             [--window N] [--dump-dir PATH] [--seed N] [--trees N]");
    println!("  fleet      serve many concurrent synthetic sessions through the");
    println!("             sharded multi-session engine with batched inference");
    println!("             [--sessions N] [--shards N] [--samples N] [--queue N]");
    println!("             [--chunk N] [--stagger N] [--fault-every N]");
    println!("             [--seed N] [--trees N] [--dump-dir PATH]");
    println!();
    println!("global flags (any command):");
    println!("  --metrics PATH    write a machine-readable run report (counters,");
    println!("                    latency histograms with p50/p95/p99, quality");
    println!("                    metrics) as JSON on exit");
    println!("  --trace           print every instrumentation span to stderr");
    println!("  --trace-out PATH  export the span timeline as Chrome trace_event");
    println!("                    JSON (open in Perfetto or chrome://tracing)");
}
