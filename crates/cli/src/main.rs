//! `airfinger` — the command-line face of the pipeline.
//!
//! ```text
//! airfinger generate --users 3 --sessions 2 --reps 5 --out corpus.json
//! airfinger train --corpus corpus.json --out model.json
//! airfinger recognize --model model.json --corpus corpus.json
//! airfinger adapt --model model.json --corpus corpus.json --enroll me.json --out adapted.json
//! airfinger info --model model.json
//! ```

mod args;
mod commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match argv.first().map(String::as_str) {
        Some("generate") => commands::generate(&argv[1..]),
        Some("train") => commands::train(&argv[1..]),
        Some("recognize") => commands::recognize(&argv[1..]),
        Some("adapt") => commands::adapt(&argv[1..]),
        Some("info") => commands::info(&argv[1..]),
        Some("--help") | Some("-h") | None => {
            print_help();
            0
        }
        Some(other) => {
            eprintln!("unknown command `{other}`");
            print_help();
            2
        }
    };
    std::process::exit(code);
}

fn print_help() {
    println!("airfinger — micro finger gesture recognition via NIR light sensing");
    println!();
    println!("commands:");
    println!("  generate   synthesize a labelled gesture corpus (JSON)");
    println!("             --users N --sessions N --reps N --seed N --out PATH");
    println!("             [--nongestures] [--lockin]");
    println!("  train      train a pipeline from a corpus");
    println!("             --corpus PATH [--nongestures PATH] [--trees N] --out PATH");
    println!("  recognize  run a trained pipeline over a corpus and score it");
    println!("             --model PATH --corpus PATH [--limit N]");
    println!("  adapt      fold a user's enrollment trials into a trained model");
    println!("             --model PATH --corpus PATH --enroll PATH --out PATH");
    println!("             [--mix F] [--trials N]");
    println!("  info       describe a trained model");
    println!("             --model PATH [--top N]");
}
