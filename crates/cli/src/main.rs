//! `airfinger` — the command-line face of the pipeline.
//!
//! ```text
//! airfinger generate --users 3 --sessions 2 --reps 5 --out corpus.json
//! airfinger train --corpus corpus.json --out model.json
//! airfinger recognize --model model.json --corpus corpus.json
//! airfinger adapt --model model.json --corpus corpus.json --enroll me.json --out adapted.json
//! airfinger info --model model.json
//! airfinger monitor --soak 4000 --fault dropout --dump-dir dumps/
//! airfinger fleet --sessions 32 --shards 4 --samples 2000 --fault-every 8
//! ```
//!
//! Every command also accepts the global observability flags
//! `--metrics PATH` (write a machine-readable run report on exit),
//! `--trace` (print every instrumentation span to stderr),
//! `--trace-out PATH` (export the span timeline as Chrome trace_event
//! JSON, loadable in Perfetto or chrome://tracing), `--profile`
//! (per-stage cost attribution; `monitor`/`fleet` export collapsed
//! stacks under `--dump-dir`), and `--serve-metrics ADDR` (live
//! `/metrics`, `/health`, `/profile`, and `/events` scrape endpoints,
//! kept alive after the run for `--serve-linger MS`).

mod args;
mod commands;

/// Allocation accounting for `--profile` and the `/health` endpoint:
/// counting is a no-op-cheap wrapper around the system allocator, and
/// installing it unconditionally keeps "allocs per push" observable in
/// every CLI run rather than only in specially-built binaries.
#[global_allocator]
// lint: sync — CountingAlloc is two shared atomics; `GlobalAlloc` requires Sync
static ALLOC: airfinger_obs::CountingAlloc = airfinger_obs::CountingAlloc::new();

/// Global flags stripped out of the argv before subcommand dispatch.
#[derive(Default)]
struct GlobalFlags {
    rest: Vec<String>,
    metrics: Option<String>,
    trace_out: Option<String>,
    serve: Option<String>,
    serve_linger_ms: u64,
}

/// Strip the global observability flags out of the argv; side-effectful
/// switches (`--trace`, `--profile`) are applied directly.
fn split_global_flags(argv: Vec<String>) -> GlobalFlags {
    let mut flags = GlobalFlags::default();
    let mut it = argv.into_iter();
    let value = |flag: &str, it: &mut std::vec::IntoIter<String>| match it.next() {
        Some(v) => v,
        None => {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        }
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--metrics" => flags.metrics = Some(value("--metrics", &mut it)),
            "--trace" => airfinger_obs::set_trace(true),
            "--trace-out" => {
                airfinger_obs::trace::set_capture(true);
                flags.trace_out = Some(value("--trace-out", &mut it));
            }
            "--profile" => airfinger_obs::profile::set_enabled(true),
            "--serve-metrics" => flags.serve = Some(value("--serve-metrics", &mut it)),
            "--serve-linger" => {
                let raw = value("--serve-linger", &mut it);
                match raw.parse::<u64>() {
                    Ok(ms) => flags.serve_linger_ms = ms,
                    Err(_) => {
                        eprintln!("--serve-linger needs milliseconds, got `{raw}`");
                        std::process::exit(2);
                    }
                }
            }
            _ => flags.rest.push(arg),
        }
    }
    flags
}

fn main() {
    let flags = split_global_flags(std::env::args().skip(1).collect());
    let server =
        flags
            .serve
            .as_deref()
            .map(|addr| match airfinger_obs::ScrapeServer::start(addr) {
                Ok(server) => {
                    eprintln!(
                        "[airfinger] serving live telemetry on http://{}",
                        server.addr()
                    );
                    server
                }
                Err(e) => {
                    eprintln!("error: bind scrape server on {addr}: {e}");
                    std::process::exit(2);
                }
            });
    let (argv, metrics_path, trace_out) = (flags.rest, flags.metrics, flags.trace_out);
    let command = argv.first().cloned().unwrap_or_default();
    let code = match argv.first().map(String::as_str) {
        Some("generate") => commands::generate(&argv[1..]),
        Some("train") => commands::train(&argv[1..]),
        Some("recognize") => commands::recognize(&argv[1..]),
        Some("adapt") => commands::adapt(&argv[1..]),
        Some("info") => commands::info(&argv[1..]),
        Some("monitor") => commands::monitor(&argv[1..]),
        Some("fleet") => commands::fleet(&argv[1..]),
        Some("--help") | Some("-h") | None => {
            print_help();
            0
        }
        Some(other) => {
            eprintln!("unknown command `{other}`");
            print_help();
            2
        }
    };
    if let Some(path) = metrics_path {
        let mut report = airfinger_obs::report::RunReport::new(
            "airfinger-cli",
            airfinger_obs::global().snapshot(),
        );
        report.meta("command", &command);
        report.meta("exit_code", code);
        match std::fs::write(&path, report.to_json()) {
            Ok(()) => eprintln!("[airfinger] wrote run report to {path}"),
            Err(e) => {
                eprintln!("[airfinger] failed to write run report to {path}: {e}");
                std::process::exit(if code == 0 { 1 } else { code });
            }
        }
    }
    if let Some(path) = trace_out {
        match airfinger_obs::trace::write_chrome_trace(&path) {
            Ok(()) => eprintln!("[airfinger] wrote Chrome trace to {path}"),
            Err(e) => {
                eprintln!("[airfinger] failed to write trace to {path}: {e}");
                std::process::exit(if code == 0 { 1 } else { code });
            }
        }
    }
    if let Some(server) = server {
        if flags.serve_linger_ms > 0 {
            eprintln!(
                "[airfinger] scrape server lingering {} ms on http://{}",
                flags.serve_linger_ms,
                server.addr()
            );
            std::thread::sleep(std::time::Duration::from_millis(flags.serve_linger_ms));
        }
        server.stop();
    }
    std::process::exit(code);
}

fn print_help() {
    println!("airfinger — micro finger gesture recognition via NIR light sensing");
    println!();
    println!("commands:");
    println!("  generate   synthesize a labelled gesture corpus (JSON)");
    println!("             --users N --sessions N --reps N --seed N --out PATH");
    println!("             [--nongestures] [--lockin]");
    println!("  train      train a pipeline from a corpus");
    println!("             --corpus PATH [--nongestures PATH] [--trees N] --out PATH");
    println!("  recognize  run a trained pipeline over a corpus and score it");
    println!("             --model PATH --corpus PATH [--limit N]");
    println!("  adapt      fold a user's enrollment trials into a trained model");
    println!("             --model PATH --corpus PATH --enroll PATH --out PATH");
    println!("             [--mix F] [--trials N]");
    println!("  info       describe a trained model");
    println!("             --model PATH [--top N]");
    println!("  monitor    soak-test a live engine with health monitoring, an");
    println!("             event journal, error-budget burn alerts, and a flight");
    println!("             recorder; optional fault injection");
    println!("             [--soak N] [--fault none|spike|dropout|both]");
    println!("             [--window N] [--dump-dir PATH] [--seed N] [--trees N]");
    println!("             [--journal N   event-journal capacity, 0 disables]");
    println!("  fleet      serve many concurrent synthetic sessions through the");
    println!("             sharded multi-session engine with batched inference");
    println!("             [--sessions N] [--shards N] [--samples N] [--queue N]");
    println!("             [--chunk N] [--stagger N] [--fault-every N]");
    println!("             [--seed N] [--trees N] [--dump-dir PATH]");
    println!("             [--journal N   event-journal capacity, 0 disables]");
    println!();
    println!("global flags (any command):");
    println!("  --metrics PATH    write a machine-readable run report (counters,");
    println!("                    latency histograms with p50/p95/p99, quality");
    println!("                    metrics) as JSON on exit");
    println!("  --trace           print every instrumentation span to stderr");
    println!("  --trace-out PATH  export the span timeline as Chrome trace_event");
    println!("                    JSON (open in Perfetto or chrome://tracing)");
    println!("  --profile         attribute per-stage cost (self/cumulative time,");
    println!("                    allocs) to the span call paths; monitor/fleet");
    println!("                    export collapsed stacks under --dump-dir");
    println!("  --serve-metrics ADDR  serve live /metrics (Prometheus, including");
    println!("                    nanosecond latency histograms), /health (JSON");
    println!("                    rollup + history), /profile (collapsed stacks;");
    println!("                    ?baseline=set stores a diff baseline, ?diff=base");
    println!("                    answers the signed differential flamegraph feed),");
    println!("                    and /events (journal tail with an ?after=<seq>");
    println!("                    cursor) on ADDR, e.g. 127.0.0.1:0");
    println!("                    (no TLS/auth — bind loopback or a trusted");
    println!("                    interface only)");
    println!("  --serve-linger MS keep the scrape server alive MS milliseconds");
    println!("                    after the command finishes");
}
