//! Minimal flag parsing: `--name value` pairs and boolean `--name` flags.

use std::collections::HashMap;

/// Parsed flags.
#[derive(Debug, Default)]
pub(crate) struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse `--key value` pairs; a `--key` followed by another `--…` (or
    /// nothing) is a boolean flag.
    pub(crate) fn parse(argv: &[String]) -> Result<Args, String> {
        let mut out = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument `{arg}`"));
            };
            match argv.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    out.values.insert(name.to_string(), v.clone());
                    i += 2;
                }
                _ => {
                    out.flags.push(name.to_string());
                    i += 1;
                }
            }
        }
        Ok(out)
    }

    /// A required string value.
    pub(crate) fn required(&self, name: &str) -> Result<&str, String> {
        self.values
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// An optional string value.
    pub(crate) fn optional(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// An optional parsed number with a default.
    pub(crate) fn number<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.values.get(name) {
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects a number, got `{v}`")),
            None => Ok(default),
        }
    }

    /// Whether a boolean flag is present.
    pub(crate) fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_values_and_flags() {
        let a = Args::parse(&sv(&["--users", "3", "--lockin", "--out", "x.json"])).unwrap();
        assert_eq!(a.required("users").unwrap(), "3");
        assert_eq!(a.required("out").unwrap(), "x.json");
        assert!(a.flag("lockin"));
        assert!(!a.flag("other"));
    }

    #[test]
    fn numbers_with_defaults() {
        let a = Args::parse(&sv(&["--reps", "7"])).unwrap();
        assert_eq!(a.number("reps", 25usize).unwrap(), 7);
        assert_eq!(a.number("seed", 42u64).unwrap(), 42);
        assert!(a.number::<usize>("reps", 0).is_ok());
    }

    #[test]
    fn rejects_positional() {
        assert!(Args::parse(&sv(&["oops"])).is_err());
    }

    #[test]
    fn missing_required_reports_name() {
        let a = Args::parse(&sv(&[])).unwrap();
        assert!(a.required("corpus").unwrap_err().contains("--corpus"));
    }

    #[test]
    fn bad_number_reports() {
        let a = Args::parse(&sv(&["--reps", "many"])).unwrap();
        assert!(a.number::<usize>("reps", 1).is_err());
    }
}
