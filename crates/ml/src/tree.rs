//! CART decision tree with Gini impurity.
//!
//! Supports per-split random feature subsampling (`max_features`), which is
//! what turns a bag of these trees into a random forest. Feature
//! importances are accumulated as the total impurity decrease contributed
//! by each feature, weighted by the number of samples reaching the split —
//! scikit-learn's "mean decrease in impurity".

use crate::classifier::{validate_training_set, Classifier};
use crate::error::MlError;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Decision-tree hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionTreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples allowed in a leaf.
    pub min_samples_leaf: usize,
    /// Number of random features considered per split; `None` = all.
    pub max_features: Option<usize>,
    /// RNG seed for feature subsampling.
    pub seed: u64,
}

impl Default for DecisionTreeConfig {
    fn default() -> Self {
        DecisionTreeConfig {
            max_depth: 24,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        class: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted (or fittable) CART decision tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    config: DecisionTreeConfig,
    nodes: Vec<Node>,
    n_features: usize,
    n_classes: usize,
    importances: Vec<f64>,
    fitted: bool,
}

impl DecisionTree {
    /// Create an untrained tree.
    #[must_use]
    pub fn new(config: DecisionTreeConfig) -> Self {
        DecisionTree {
            config,
            nodes: Vec::new(),
            n_features: 0,
            n_classes: 0,
            importances: Vec::new(),
            fitted: false,
        }
    }

    /// Impurity-decrease feature importances, normalized to sum to 1
    /// (all-zero if the tree is a single leaf). Empty before fitting.
    #[must_use]
    pub fn feature_importances(&self) -> &[f64] {
        &self.importances
    }

    /// Number of classes seen during training.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Depth of the fitted tree (0 for a single leaf).
    #[must_use]
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], idx: usize) -> usize {
            match &nodes[idx] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_of(&self.nodes, 0)
        }
    }

    /// Fit with an externally selected subset of sample indices (used by
    /// the forest's bootstrap). `indices` may repeat entries.
    ///
    /// # Errors
    ///
    /// Same contract as [`Classifier::fit`].
    pub fn fit_indices(
        &mut self,
        x: &[Vec<f64>],
        y: &[usize],
        indices: &[usize],
    ) -> Result<(), MlError> {
        let (n_features, n_classes) = validate_training_set(x, y)?;
        if indices.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        self.n_features = n_features;
        self.n_classes = n_classes;
        self.nodes.clear();
        self.importances = vec![0.0; n_features];
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut idx = indices.to_vec();
        self.build(x, y, &mut idx, 0, &mut rng);
        let total: f64 = self.importances.iter().sum();
        if total > 0.0 {
            for v in &mut self.importances {
                *v /= total;
            }
        }
        self.fitted = true;
        Ok(())
    }

    /// Build a subtree over `idx`; returns the node index.
    fn build(
        &mut self,
        x: &[Vec<f64>],
        y: &[usize],
        idx: &mut [usize],
        depth: usize,
        rng: &mut StdRng,
    ) -> usize {
        let counts = class_counts(y, idx, self.n_classes);
        let majority = argmax(&counts);
        let node_gini = gini(&counts, idx.len());
        let stop = depth >= self.config.max_depth
            || idx.len() < self.config.min_samples_split
            || node_gini <= 0.0;
        if !stop {
            if let Some(split) = self.best_split(x, y, idx, node_gini, rng) {
                // Record importance: weighted impurity decrease.
                self.importances[split.feature] += split.gain * idx.len() as f64;
                // Partition indices in place around the threshold.
                let mid = partition(x, idx, split.feature, split.threshold);
                let node_idx = self.nodes.len();
                self.nodes.push(Node::Leaf { class: majority }); // placeholder
                let (left_slice, right_slice) = idx.split_at_mut(mid);
                let left = self.build(x, y, left_slice, depth + 1, rng);
                let right = self.build(x, y, right_slice, depth + 1, rng);
                self.nodes[node_idx] = Node::Split {
                    feature: split.feature,
                    threshold: split.threshold,
                    left,
                    right,
                };
                return node_idx;
            }
        }
        let node_idx = self.nodes.len();
        self.nodes.push(Node::Leaf { class: majority });
        node_idx
    }

    fn best_split(
        &self,
        x: &[Vec<f64>],
        y: &[usize],
        idx: &[usize],
        node_gini: f64,
        rng: &mut StdRng,
    ) -> Option<SplitCandidate> {
        let mut features: Vec<usize> = (0..self.n_features).collect();
        if let Some(k) = self.config.max_features {
            features.shuffle(rng);
            features.truncate(k.clamp(1, self.n_features));
        }
        let n = idx.len() as f64;
        let mut best: Option<SplitCandidate> = None;
        // Reusable sort buffer.
        let mut order: Vec<usize> = Vec::with_capacity(idx.len());
        for &f in &features {
            order.clear();
            order.extend_from_slice(idx);
            order.sort_by(|&a, &b| {
                x[a][f]
                    .partial_cmp(&x[b][f])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut left_counts = vec![0usize; self.n_classes];
            let mut right_counts = class_counts(y, idx, self.n_classes);
            for cut in 1..order.len() {
                let moved = order[cut - 1];
                left_counts[y[moved]] += 1;
                right_counts[y[moved]] -= 1;
                let v_prev = x[moved][f];
                let v_next = x[order[cut]][f];
                if v_next <= v_prev {
                    continue; // identical values: not a valid threshold
                }
                let n_left = cut;
                let n_right = order.len() - cut;
                if n_left < self.config.min_samples_leaf || n_right < self.config.min_samples_leaf {
                    continue;
                }
                let g_left = gini(&left_counts, n_left);
                let g_right = gini(&right_counts, n_right);
                let weighted = (n_left as f64 * g_left + n_right as f64 * g_right) / n;
                let gain = node_gini - weighted;
                // Accept zero-gain splits on impure nodes (like sklearn):
                // XOR-style data has no single informative split at the
                // root, yet splitting still lets deeper levels separate it.
                if gain > best.as_ref().map_or(-1e-12, |b| b.gain) {
                    best = Some(SplitCandidate {
                        feature: f,
                        threshold: 0.5 * (v_prev + v_next),
                        gain,
                    });
                }
            }
        }
        best
    }
}

#[derive(Debug, Clone, Copy)]
struct SplitCandidate {
    feature: usize,
    threshold: f64,
    gain: f64,
}

impl Classifier for DecisionTree {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) -> Result<(), MlError> {
        let indices: Vec<usize> = (0..x.len()).collect();
        self.fit_indices(x, y, &indices)
    }

    fn predict(&self, x: &[f64]) -> Result<usize, MlError> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        if x.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                got: x.len(),
            });
        }
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { class } => return Ok(*class),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "DT"
    }
}

/// Class histogram over the selected indices.
fn class_counts(y: &[usize], idx: &[usize], n_classes: usize) -> Vec<usize> {
    let mut counts = vec![0usize; n_classes];
    for &i in idx {
        counts[y[i]] += 1;
    }
    counts
}

/// Gini impurity of a class histogram with `n` total samples.
fn gini(counts: &[usize], n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let nf = n as f64;
    1.0 - counts
        .iter()
        .map(|&c| (c as f64 / nf) * (c as f64 / nf))
        .sum::<f64>()
}

fn argmax(counts: &[usize]) -> usize {
    counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Partition `idx` so samples with `x[f] <= threshold` come first; returns
/// the boundary.
fn partition(x: &[Vec<f64>], idx: &mut [usize], feature: usize, threshold: f64) -> usize {
    let mut mid = 0usize;
    for i in 0..idx.len() {
        if x[idx[i]][feature] <= threshold {
            idx.swap(i, mid);
            mid += 1;
        }
    }
    mid
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two clearly separated 2-D blobs.
    fn blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..30 {
            let j = i as f64 * 0.01;
            x.push(vec![0.0 + j, 0.0 - j]);
            y.push(0);
            x.push(vec![5.0 + j, 5.0 - j]);
            y.push(1);
        }
        (x, y)
    }

    #[test]
    fn separable_data_is_learned_perfectly() {
        let (x, y) = blobs();
        let mut t = DecisionTree::new(DecisionTreeConfig::default());
        t.fit(&x, &y).unwrap();
        for (xi, &yi) in x.iter().zip(&y) {
            assert_eq!(t.predict(xi).unwrap(), yi);
        }
    }

    #[test]
    fn xor_needs_depth_two() {
        let x = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let y = vec![0, 1, 1, 0];
        let mut t = DecisionTree::new(DecisionTreeConfig::default());
        t.fit(&x, &y).unwrap();
        for (xi, &yi) in x.iter().zip(&y) {
            assert_eq!(t.predict(xi).unwrap(), yi, "at {xi:?}");
        }
        assert!(t.depth() >= 2);
    }

    #[test]
    fn depth_limit_respected() {
        let x: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<usize> = (0..64).map(|i| (i / 2) % 2).collect(); // needs depth >> 1
        let mut t = DecisionTree::new(DecisionTreeConfig {
            max_depth: 1,
            ..Default::default()
        });
        t.fit(&x, &y).unwrap();
        assert!(t.depth() <= 1);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let (x, y) = blobs();
        let mut t = DecisionTree::new(DecisionTreeConfig {
            min_samples_leaf: 10,
            ..Default::default()
        });
        t.fit(&x, &y).unwrap();
        // Still classifies the blobs (split at the boundary keeps 30/30).
        assert_eq!(t.predict(&[0.0, 0.0]).unwrap(), 0);
        assert_eq!(t.predict(&[5.0, 5.0]).unwrap(), 1);
    }

    #[test]
    fn importances_identify_informative_feature() {
        // Feature 0 is pure noise; feature 1 separates the classes.
        let x: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i * 7919 % 97) as f64, if i < 50 { 0.0 } else { 1.0 }])
            .collect();
        let y: Vec<usize> = (0..100).map(|i| usize::from(i >= 50)).collect();
        let mut t = DecisionTree::new(DecisionTreeConfig::default());
        t.fit(&x, &y).unwrap();
        let imp = t.feature_importances();
        assert!(imp[1] > 0.9, "importances: {imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pure_node_is_leaf() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![1, 1, 1];
        let mut t = DecisionTree::new(DecisionTreeConfig::default());
        t.fit(&x, &y).unwrap();
        assert_eq!(t.depth(), 0);
        assert_eq!(t.predict(&[99.0]).unwrap(), 1);
    }

    #[test]
    fn constant_features_give_majority_leaf() {
        let x = vec![vec![5.0], vec![5.0], vec![5.0], vec![5.0]];
        let y = vec![0, 1, 1, 1];
        let mut t = DecisionTree::new(DecisionTreeConfig::default());
        t.fit(&x, &y).unwrap();
        assert_eq!(t.predict(&[5.0]).unwrap(), 1);
    }

    #[test]
    fn predict_before_fit_errors() {
        let t = DecisionTree::new(DecisionTreeConfig::default());
        assert_eq!(t.predict(&[1.0]), Err(MlError::NotFitted));
    }

    #[test]
    fn predict_wrong_width_errors() {
        let (x, y) = blobs();
        let mut t = DecisionTree::new(DecisionTreeConfig::default());
        t.fit(&x, &y).unwrap();
        assert!(matches!(
            t.predict(&[1.0]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn feature_subsampling_still_learns() {
        let (x, y) = blobs();
        let mut t = DecisionTree::new(DecisionTreeConfig {
            max_features: Some(1),
            seed: 3,
            ..Default::default()
        });
        t.fit(&x, &y).unwrap();
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| t.predict(xi).unwrap() == yi)
            .count();
        assert!(correct >= 55, "correct = {correct}/60");
    }

    #[test]
    fn bootstrap_indices_with_repeats() {
        let (x, y) = blobs();
        let indices: Vec<usize> = (0..x.len()).map(|i| i / 2 * 2).collect(); // repeats
        let mut t = DecisionTree::new(DecisionTreeConfig::default());
        t.fit_indices(&x, &y, &indices).unwrap();
        assert_eq!(t.predict(&[0.1, 0.0]).unwrap(), 0);
    }

    #[test]
    fn gini_helper() {
        assert_eq!(gini(&[10, 0], 10), 0.0);
        assert!((gini(&[5, 5], 10) - 0.5).abs() < 1e-12);
        assert_eq!(gini(&[], 0), 0.0);
    }

    #[test]
    fn partition_helper() {
        let x = vec![vec![3.0], vec![1.0], vec![4.0], vec![1.5]];
        let mut idx = vec![0, 1, 2, 3];
        let mid = partition(&x, &mut idx, 0, 2.0);
        assert_eq!(mid, 2);
        let left: Vec<usize> = idx[..mid].to_vec();
        assert!(left.contains(&1) && left.contains(&3));
    }
}
