//! Bernoulli naive Bayes over median-binarized features.
//!
//! BNB expects binary features; continuous gesture features are binarized
//! against their per-feature training median (the standard adaptation, and
//! the reason BNB trails the other classifiers in the paper's Fig. 9 —
//! binarization throws away most of the feature resolution).

use crate::classifier::{validate_training_set, Classifier};
use crate::error::MlError;
use serde::{Deserialize, Serialize};

/// Bernoulli naive Bayes with Laplace smoothing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BernoulliNaiveBayes {
    /// Laplace smoothing strength.
    alpha: f64,
    thresholds: Vec<f64>,
    /// `log_prob_one[c][f]` = log P(feature f = 1 | class c).
    log_prob_one: Vec<Vec<f64>>,
    /// `log_prob_zero[c][f]` = log P(feature f = 0 | class c).
    log_prob_zero: Vec<Vec<f64>>,
    log_prior: Vec<f64>,
    n_features: usize,
    fitted: bool,
}

impl BernoulliNaiveBayes {
    /// Create an untrained model with Laplace smoothing `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not positive.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0, "smoothing alpha must be positive");
        BernoulliNaiveBayes {
            alpha,
            thresholds: Vec::new(),
            log_prob_one: Vec::new(),
            log_prob_zero: Vec::new(),
            log_prior: Vec::new(),
            n_features: 0,
            fitted: false,
        }
    }

    fn binarize(&self, x: &[f64]) -> Vec<bool> {
        x.iter()
            .zip(&self.thresholds)
            .map(|(&v, &t)| v > t)
            .collect()
    }
}

impl Default for BernoulliNaiveBayes {
    fn default() -> Self {
        BernoulliNaiveBayes::new(1.0)
    }
}

impl Classifier for BernoulliNaiveBayes {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) -> Result<(), MlError> {
        let (n_features, n_classes) = validate_training_set(x, y)?;
        self.n_features = n_features;
        // Per-feature median thresholds.
        self.thresholds = (0..n_features)
            .map(|f| {
                let mut col: Vec<f64> = x.iter().map(|row| row[f]).collect();
                col.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                col[col.len() / 2]
            })
            .collect();
        // Count ones per class/feature.
        let mut class_n = vec![0usize; n_classes];
        let mut ones = vec![vec![0usize; n_features]; n_classes];
        for (row, &c) in x.iter().zip(y) {
            class_n[c] += 1;
            for (f, &v) in row.iter().enumerate() {
                if v > self.thresholds[f] {
                    ones[c][f] += 1;
                }
            }
        }
        let total = x.len() as f64;
        self.log_prior = class_n
            .iter()
            .map(|&n| ((n as f64 + self.alpha) / (total + self.alpha * n_classes as f64)).ln())
            .collect();
        self.log_prob_one = vec![vec![0.0; n_features]; n_classes];
        self.log_prob_zero = vec![vec![0.0; n_features]; n_classes];
        for c in 0..n_classes {
            let denom = class_n[c] as f64 + 2.0 * self.alpha;
            for (f, &one_count) in ones[c].iter().enumerate() {
                let p1 = (one_count as f64 + self.alpha) / denom;
                self.log_prob_one[c][f] = p1.ln();
                self.log_prob_zero[c][f] = (1.0 - p1).ln();
            }
        }
        self.fitted = true;
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> Result<usize, MlError> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        if x.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                got: x.len(),
            });
        }
        let bits = self.binarize(x);
        let mut best = (0usize, f64::NEG_INFINITY);
        for c in 0..self.log_prior.len() {
            let mut score = self.log_prior[c];
            for (f, &b) in bits.iter().enumerate() {
                score += if b {
                    self.log_prob_one[c][f]
                } else {
                    self.log_prob_zero[c][f]
                };
            }
            if score > best.1 {
                best = (c, score);
            }
        }
        Ok(best.0)
    }

    fn name(&self) -> &'static str {
        "BNB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_binary_patterns() {
        // Class 0: both features low; class 1: both high.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            let e = (i % 5) as f64 * 0.01;
            x.push(vec![0.0 + e, 0.0 + e]);
            y.push(0);
            x.push(vec![1.0 - e, 1.0 - e]);
            y.push(1);
        }
        let mut nb = BernoulliNaiveBayes::default();
        nb.fit(&x, &y).unwrap();
        assert_eq!(nb.predict(&[0.0, 0.0]).unwrap(), 0);
        assert_eq!(nb.predict(&[1.0, 1.0]).unwrap(), 1);
    }

    #[test]
    fn respects_class_prior_on_uninformative_input() {
        // 90 % of samples are class 1; an ambiguous input should go there.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            x.push(vec![(i % 10) as f64]);
            y.push(usize::from(i >= 10));
        }
        let mut nb = BernoulliNaiveBayes::default();
        nb.fit(&x, &y).unwrap();
        assert_eq!(nb.predict(&[4.5]).unwrap(), 1);
    }

    #[test]
    fn smoothing_handles_unseen_combination() {
        let x = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
        let y = vec![0, 1];
        let mut nb = BernoulliNaiveBayes::default();
        nb.fit(&x, &y).unwrap();
        // A pattern never seen in training must still get some class.
        let p = nb.predict(&[0.0, 1.0]).unwrap();
        assert!(p == 0 || p == 1);
    }

    #[test]
    fn predict_before_fit_errors() {
        let nb = BernoulliNaiveBayes::default();
        assert_eq!(nb.predict(&[1.0]), Err(MlError::NotFitted));
    }

    #[test]
    fn wrong_width_errors() {
        let mut nb = BernoulliNaiveBayes::default();
        nb.fit(&[vec![0.0], vec![1.0]], &[0, 1]).unwrap();
        assert!(matches!(
            nb.predict(&[0.0, 1.0]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn zero_alpha_panics() {
        let _ = BernoulliNaiveBayes::new(0.0);
    }
}
