//! Dynamic Time Warping 1-nearest-neighbour classifier — one of the
//! alternatives the paper weighs and rejects (§IV-C2: "comparing to Hidden
//! Markov Models, Dynamic Time Warping, and Convolutional Neural Networks,
//! RF has lower computational expense, which is more suitable for
//! real-time gesture recognition on wearable smart devices").
//!
//! Implemented so that claim can be measured: a Sakoe–Chiba-banded DTW
//! over fixed-length resampled envelopes with 1-NN voting. Accuracy is
//! competitive; inference cost is `O(n_train · len · band)` per query,
//! orders of magnitude above a forest traversal.

use crate::classifier::{validate_training_set, Classifier};
use crate::error::MlError;
use serde::{Deserialize, Serialize};

/// DTW classifier configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DtwConfig {
    /// Sakoe–Chiba band half-width in samples (warping constraint).
    pub band: usize,
    /// Number of neighbours to vote (1 = classic 1-NN).
    pub k: usize,
}

impl Default for DtwConfig {
    fn default() -> Self {
        DtwConfig { band: 8, k: 1 }
    }
}

/// A k-NN classifier under the DTW distance.
///
/// Inputs are flat feature vectors like every other [`Classifier`]; each
/// vector is interpreted as a time series (the airFinger harness feeds
/// resampled gesture envelopes).
///
/// # Example
///
/// ```
/// use airfinger_ml::dtw::{DtwClassifier, DtwConfig};
/// use airfinger_ml::classifier::Classifier;
///
/// // Two template shapes; a time-warped copy still matches its class.
/// let rise: Vec<f64> = (0..30).map(|i| i as f64 / 30.0).collect();
/// let fall: Vec<f64> = (0..30).map(|i| 1.0 - i as f64 / 30.0).collect();
/// let mut dtw = DtwClassifier::new(DtwConfig::default());
/// dtw.fit(&[rise.clone(), fall.clone()], &[0, 1])?;
/// let warped: Vec<f64> = (0..30).map(|i| ((i as f64 + 3.0) / 33.0).min(1.0)).collect();
/// assert_eq!(dtw.predict(&warped)?, 0);
/// # Ok::<(), airfinger_ml::MlError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DtwClassifier {
    config: DtwConfig,
    templates: Vec<Vec<f64>>,
    labels: Vec<usize>,
    fitted: bool,
}

impl DtwClassifier {
    /// Create an untrained classifier.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    #[must_use]
    pub fn new(config: DtwConfig) -> Self {
        assert!(config.k > 0, "k must be at least 1");
        DtwClassifier {
            config,
            templates: Vec::new(),
            labels: Vec::new(),
            fitted: false,
        }
    }

    /// Number of stored templates.
    #[must_use]
    pub fn template_count(&self) -> usize {
        self.templates.len()
    }

    /// Banded DTW distance between two equal-length series.
    #[must_use]
    pub fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        dtw_banded(a, b, self.config.band)
    }
}

/// Banded DTW with squared pointwise cost; `usize::MAX`-free, `O(n·band)`.
#[must_use]
pub fn dtw_banded(a: &[f64], b: &[f64], band: usize) -> f64 {
    let n = a.len();
    let m = b.len();
    if n == 0 || m == 0 {
        return f64::INFINITY;
    }
    let band = band.max(n.abs_diff(m));
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        curr.fill(f64::INFINITY);
        let lo = i.saturating_sub(band).max(1);
        let hi = (i + band).min(m);
        for j in lo..=hi {
            let d = a[i - 1] - b[j - 1];
            let step = prev[j].min(curr[j - 1]).min(prev[j - 1]);
            curr[j] = d * d + step;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

impl Classifier for DtwClassifier {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) -> Result<(), MlError> {
        validate_training_set(x, y)?;
        self.templates = x.to_vec();
        self.labels = y.to_vec();
        self.fitted = true;
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> Result<usize, MlError> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        if x.len() != self.templates[0].len() {
            return Err(MlError::DimensionMismatch {
                expected: self.templates[0].len(),
                got: x.len(),
            });
        }
        // k nearest templates by DTW distance.
        let mut best: Vec<(f64, usize)> = Vec::with_capacity(self.config.k + 1);
        for (t, &label) in self.templates.iter().zip(&self.labels) {
            let d = self.distance(x, t);
            let pos = best.partition_point(|(bd, _)| *bd < d);
            if pos < self.config.k {
                best.insert(pos, (d, label));
                best.truncate(self.config.k);
            }
        }
        // Majority vote; ties resolve to the nearest. Labels are small
        // class indices, so a dense count vector keeps the vote (and its
        // tie-breaking order) fully deterministic.
        let n_labels = best.iter().map(|&(_, l)| l + 1).max().unwrap_or(1);
        let mut counts = vec![0usize; n_labels];
        for &(_, l) in &best {
            counts[l] += 1;
        }
        let top = counts.iter().copied().max().unwrap_or(0);
        Ok(best
            .iter()
            .find(|&&(_, l)| counts[l] == top)
            .map(|&(_, l)| l)
            .unwrap_or(0))
    }

    fn name(&self) -> &'static str {
        "DTW"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shifted_sine(shift: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i as f64 / n as f64) * 6.0 + shift).sin())
            .collect()
    }

    #[test]
    fn dtw_zero_for_identical() {
        let a = shifted_sine(0.0, 40);
        assert_eq!(dtw_banded(&a, &a, 5), 0.0);
    }

    #[test]
    fn dtw_tolerates_time_warp() {
        // A slightly time-shifted copy is much closer under DTW than under
        // Euclidean distance.
        let a = shifted_sine(0.0, 40);
        let b = shifted_sine(0.35, 40);
        let euclid: f64 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        let dtw = dtw_banded(&a, &b, 6);
        assert!(dtw < euclid / 3.0, "dtw {dtw} vs euclid {euclid}");
    }

    #[test]
    fn dtw_symmetric() {
        let a = shifted_sine(0.0, 30);
        let b = shifted_sine(1.0, 30);
        assert!((dtw_banded(&a, &b, 5) - dtw_banded(&b, &a, 5)).abs() < 1e-9);
    }

    #[test]
    fn dtw_empty_is_infinite() {
        assert!(dtw_banded(&[], &[1.0], 3).is_infinite());
    }

    #[test]
    fn classifies_warped_patterns() {
        // Class 0: one bump; class 1: two bumps — with random time warps.
        let bump1 = |phase: f64| -> Vec<f64> {
            (0..50)
                .map(|i| {
                    let t = (i as f64 / 50.0 + phase).clamp(0.0, 1.0);
                    (std::f64::consts::PI * t).sin().powi(2)
                })
                .collect()
        };
        let bump2 = |phase: f64| -> Vec<f64> {
            (0..50)
                .map(|i| {
                    let t = (i as f64 / 50.0 + phase).clamp(0.0, 1.0);
                    (2.0 * std::f64::consts::PI * t).sin().powi(2)
                })
                .collect()
        };
        let mut x = Vec::new();
        let mut y = Vec::new();
        for k in 0..8 {
            let p = k as f64 * 0.01;
            x.push(bump1(p));
            y.push(0);
            x.push(bump2(p));
            y.push(1);
        }
        let mut c = DtwClassifier::new(DtwConfig::default());
        c.fit(&x, &y).unwrap();
        assert_eq!(c.predict(&bump1(0.05)).unwrap(), 0);
        assert_eq!(c.predict(&bump2(0.05)).unwrap(), 1);
        assert_eq!(c.template_count(), 16);
    }

    #[test]
    fn unfitted_errors() {
        let c = DtwClassifier::new(DtwConfig::default());
        assert_eq!(c.predict(&[1.0]), Err(MlError::NotFitted));
    }

    #[test]
    fn wrong_width_errors() {
        let mut c = DtwClassifier::new(DtwConfig::default());
        c.fit(&[vec![1.0, 2.0], vec![2.0, 1.0]], &[0, 1]).unwrap();
        assert!(matches!(
            c.predict(&[1.0]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_panics() {
        let _ = DtwClassifier::new(DtwConfig { band: 5, k: 0 });
    }
}
