//! Evaluation metrics: confusion matrix, accuracy, recall, precision.
//!
//! Conventions follow the paper's §V-C exactly: rows of the confusion
//! matrix are ground truth, columns are predictions; recall of class `g` is
//! the fraction of true-`g` samples recognized as `g`; precision of `g` is
//! the fraction of `g`-predictions that are truly `g`.

use serde::{Deserialize, Serialize};

/// A square confusion matrix over `n` classes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Create an empty matrix for `n_classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `n_classes` is 0.
    #[must_use]
    pub fn new(n_classes: usize) -> Self {
        assert!(n_classes > 0, "need at least one class");
        ConfusionMatrix {
            counts: vec![vec![0; n_classes]; n_classes],
        }
    }

    /// Build from parallel truth/prediction slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or contain labels `>=
    /// n_classes`.
    #[must_use]
    pub fn from_predictions(truth: &[usize], predicted: &[usize], n_classes: usize) -> Self {
        assert_eq!(
            truth.len(),
            predicted.len(),
            "truth/prediction length mismatch"
        );
        let mut m = ConfusionMatrix::new(n_classes);
        for (&t, &p) in truth.iter().zip(predicted) {
            m.record(t, p);
        }
        m
    }

    /// Record one observation.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        self.counts[truth][predicted] += 1;
    }

    /// Merge another matrix of the same shape into this one.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "class count mismatch"
        );
        for (row, orow) in self.counts.iter_mut().zip(&other.counts) {
            for (c, &oc) in row.iter_mut().zip(orow) {
                *c += oc;
            }
        }
    }

    /// Number of classes.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.counts.len()
    }

    /// Raw count at `(truth, predicted)`.
    #[must_use]
    pub fn count(&self, truth: usize, predicted: usize) -> usize {
        self.counts[truth][predicted]
    }

    /// Total observations.
    #[must_use]
    pub fn total(&self) -> usize {
        self.counts.iter().flatten().sum()
    }

    /// Overall accuracy; 0.0 for an empty matrix.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.counts.len()).map(|i| self.counts[i][i]).sum();
        correct as f64 / total as f64
    }

    /// Recall of class `g`; `None` when no true-`g` samples exist.
    #[must_use]
    pub fn recall(&self, g: usize) -> Option<f64> {
        let row: usize = self.counts[g].iter().sum();
        if row == 0 {
            None
        } else {
            Some(self.counts[g][g] as f64 / row as f64)
        }
    }

    /// Precision of class `g`; `None` when `g` was never predicted.
    #[must_use]
    pub fn precision(&self, g: usize) -> Option<f64> {
        let col: usize = self.counts.iter().map(|r| r[g]).sum();
        if col == 0 {
            None
        } else {
            Some(self.counts[g][g] as f64 / col as f64)
        }
    }

    /// Macro-averaged recall over classes that have samples.
    #[must_use]
    pub fn macro_recall(&self) -> f64 {
        let vals: Vec<f64> = (0..self.n_classes())
            .filter_map(|g| self.recall(g))
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// Macro-averaged precision over classes that were predicted.
    #[must_use]
    pub fn macro_precision(&self) -> f64 {
        let vals: Vec<f64> = (0..self.n_classes())
            .filter_map(|g| self.precision(g))
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// F1 score of class `g` (harmonic mean of precision and recall);
    /// `None` when either is undefined, 0.0 when both are zero.
    #[must_use]
    pub fn f1(&self, g: usize) -> Option<f64> {
        let p = self.precision(g)?;
        let r = self.recall(g)?;
        if p + r <= 0.0 {
            return Some(0.0);
        }
        Some(2.0 * p * r / (p + r))
    }

    /// Macro-averaged F1 over classes where it is defined.
    #[must_use]
    pub fn macro_f1(&self) -> f64 {
        let vals: Vec<f64> = (0..self.n_classes()).filter_map(|g| self.f1(g)).collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// Row-normalized matrix (each row sums to 1; empty rows stay zero) —
    /// the form the paper's confusion-matrix figures display.
    #[must_use]
    pub fn normalized(&self) -> Vec<Vec<f64>> {
        self.counts
            .iter()
            .map(|row| {
                let s: usize = row.iter().sum();
                if s == 0 {
                    vec![0.0; row.len()]
                } else {
                    row.iter().map(|&c| c as f64 / s as f64).collect()
                }
            })
            .collect()
    }

    /// Publish this matrix's quality metrics to the global obs registry
    /// under the stable `quality_*` gauge schema (values in **percent**,
    /// labelled by `experiment` and, per class, `gesture`): overall
    /// accuracy, macro recall/precision/F1, and per-gesture
    /// recall/precision. `class_names` must cover [`Self::n_classes`];
    /// classes with no samples (recall/precision undefined) are skipped.
    /// The run report assembles its `quality` section from exactly these
    /// gauges — see DESIGN.md §Observability.
    ///
    /// # Panics
    ///
    /// Panics if `class_names` is shorter than the class count.
    pub fn export_obs(&self, experiment: &str, class_names: &[&str]) {
        assert!(
            class_names.len() >= self.n_classes(),
            "need a name for each of the {} classes",
            self.n_classes()
        );
        if !airfinger_obs::recording() {
            return;
        }
        let registry = airfinger_obs::global();
        let scalar = |name: &str, value: f64| {
            registry
                .gauge(name, &[("experiment", experiment)], "")
                .set(value * 100.0);
        };
        scalar("quality_accuracy", self.accuracy());
        scalar("quality_macro_recall", self.macro_recall());
        scalar("quality_macro_precision", self.macro_precision());
        scalar("quality_macro_f1", self.macro_f1());
        for (g, name) in class_names.iter().take(self.n_classes()).enumerate() {
            let labels = [("experiment", experiment), ("gesture", *name)];
            if let Some(r) = self.recall(g) {
                registry.gauge("quality_recall", &labels, "").set(r * 100.0);
            }
            if let Some(p) = self.precision(g) {
                registry
                    .gauge("quality_precision", &labels, "")
                    .set(p * 100.0);
            }
        }
    }

    /// Per-class accuracy in the one-vs-rest sense (correct assignments to
    /// or away from `g`, over all samples).
    #[must_use]
    pub fn class_accuracy(&self, g: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let mut wrong = 0usize;
        for (t, row) in self.counts.iter().enumerate() {
            for (p, &c) in row.iter().enumerate() {
                if (t == g) != (p == g) {
                    wrong += c;
                }
            }
        }
        1.0 - wrong as f64 / total as f64
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let norm = self.normalized();
        for row in &norm {
            for v in row {
                write!(f, "{:6.3} ", v)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> ConfusionMatrix {
        // truth 0: 8 correct, 2 as class 1; truth 1: 9 correct, 1 as 0.
        let truth = [vec![0; 10], vec![1; 10]].concat();
        let mut pred = vec![0; 8];
        pred.extend(vec![1; 2]);
        pred.push(0);
        pred.extend(vec![1; 9]);
        ConfusionMatrix::from_predictions(&truth, &pred, 2)
    }

    #[test]
    fn counts_and_total() {
        let m = sample_matrix();
        assert_eq!(m.count(0, 0), 8);
        assert_eq!(m.count(0, 1), 2);
        assert_eq!(m.count(1, 0), 1);
        assert_eq!(m.count(1, 1), 9);
        assert_eq!(m.total(), 20);
    }

    #[test]
    fn accuracy_recall_precision() {
        let m = sample_matrix();
        assert!((m.accuracy() - 0.85).abs() < 1e-12);
        assert!((m.recall(0).unwrap() - 0.8).abs() < 1e-12);
        assert!((m.recall(1).unwrap() - 0.9).abs() < 1e-12);
        assert!((m.precision(0).unwrap() - 8.0 / 9.0).abs() < 1e-12);
        assert!((m.precision(1).unwrap() - 9.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn macro_averages() {
        let m = sample_matrix();
        assert!((m.macro_recall() - 0.85).abs() < 1e-12);
        let expect = (8.0 / 9.0 + 9.0 / 11.0) / 2.0;
        assert!((m.macro_precision() - expect).abs() < 1e-12);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        let m = sample_matrix();
        let p = m.precision(0).unwrap();
        let r = m.recall(0).unwrap();
        let f1 = m.f1(0).unwrap();
        assert!((f1 - 2.0 * p * r / (p + r)).abs() < 1e-12);
        assert!(m.macro_f1() > 0.8);
    }

    #[test]
    fn f1_undefined_for_absent_class() {
        let m = ConfusionMatrix::from_predictions(&[0, 0], &[0, 0], 3);
        assert_eq!(m.f1(2), None);
    }

    #[test]
    fn f1_zero_when_never_correct() {
        // Class 0 exists and is predicted, but never correctly.
        let m = ConfusionMatrix::from_predictions(&[0, 1], &[1, 0], 2);
        assert_eq!(m.f1(0), Some(0.0));
    }

    #[test]
    fn absent_class_is_none() {
        let m = ConfusionMatrix::from_predictions(&[0, 0], &[0, 0], 3);
        assert_eq!(m.recall(2), None);
        assert_eq!(m.precision(1), None);
    }

    #[test]
    fn normalized_rows_sum_to_one() {
        let m = sample_matrix();
        for row in m.normalized() {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = sample_matrix();
        let b = sample_matrix();
        a.merge(&b);
        assert_eq!(a.total(), 40);
        assert_eq!(a.count(0, 0), 16);
    }

    #[test]
    fn class_accuracy_one_vs_rest() {
        let m = sample_matrix();
        // 3 samples cross the class-0 boundary (2 false neg + 1 false pos).
        assert!((m.class_accuracy(0) - 0.85).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_metrics() {
        let m = ConfusionMatrix::new(3);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.macro_recall(), 0.0);
    }

    #[test]
    fn display_renders_rows() {
        let m = sample_matrix();
        let s = m.to_string();
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_predictions_panic() {
        let _ = ConfusionMatrix::from_predictions(&[0], &[0, 1], 2);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn export_obs_publishes_quality_gauges() {
        let m = sample_matrix();
        m.export_obs("unit_test_exp", &["alpha", "beta"]);
        let snap = airfinger_obs::global().snapshot();
        let exp = [("experiment", "unit_test_exp")];
        let acc = snap.gauge_value("quality_accuracy", &exp).unwrap();
        assert!((acc - 85.0).abs() < 1e-9);
        let recall_alpha = snap
            .gauge_value(
                "quality_recall",
                &[("experiment", "unit_test_exp"), ("gesture", "alpha")],
            )
            .unwrap();
        assert!((recall_alpha - 80.0).abs() < 1e-9);
        assert!(snap
            .gauge_value(
                "quality_precision",
                &[("experiment", "unit_test_exp"), ("gesture", "beta")],
            )
            .is_some());
        assert!(snap.gauge_value("quality_macro_f1", &exp).is_some());
    }

    #[test]
    #[should_panic(expected = "need a name for each")]
    fn export_obs_rejects_short_name_list() {
        sample_matrix().export_obs("x", &["only_one"]);
    }
}
