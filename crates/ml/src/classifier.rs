//! The common classifier interface.

use crate::error::MlError;

/// A trainable multi-class classifier over dense `f64` feature vectors with
/// labels `0..n_classes`.
///
/// All four paper classifiers (random forest, logistic regression, decision
/// tree, Bernoulli naive Bayes) implement this trait, which is what lets
/// the Fig. 9 experiment sweep them uniformly.
pub trait Classifier {
    /// Train on feature matrix `x` (row per sample) and labels `y`.
    ///
    /// # Errors
    ///
    /// Implementations return [`MlError::EmptyDataset`] for empty input,
    /// [`MlError::DimensionMismatch`] for ragged rows or mismatched label
    /// counts, and [`MlError::InvalidData`] for non-finite features.
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) -> Result<(), MlError>;

    /// Predict the label of one sample.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::NotFitted`] before a successful [`Classifier::fit`]
    /// and [`MlError::DimensionMismatch`] for a wrong-width sample.
    fn predict(&self, x: &[f64]) -> Result<usize, MlError>;

    /// Predict a batch of samples.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Classifier::predict`].
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<usize>, MlError> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Human-readable short name ("RF", "LR", …) used in experiment tables.
    fn name(&self) -> &'static str;
}

/// Validate a training set: non-empty, rectangular, finite, labels present.
/// Returns `(n_features, n_classes)`.
///
/// # Errors
///
/// See [`Classifier::fit`].
pub fn validate_training_set(x: &[Vec<f64>], y: &[usize]) -> Result<(usize, usize), MlError> {
    if x.is_empty() || y.is_empty() {
        return Err(MlError::EmptyDataset);
    }
    if x.len() != y.len() {
        return Err(MlError::DimensionMismatch {
            expected: x.len(),
            got: y.len(),
        });
    }
    let width = x[0].len();
    if width == 0 {
        return Err(MlError::InvalidData("zero-width feature vectors"));
    }
    for row in x {
        if row.len() != width {
            return Err(MlError::DimensionMismatch {
                expected: width,
                got: row.len(),
            });
        }
        if row.iter().any(|v| !v.is_finite()) {
            return Err(MlError::InvalidData("non-finite feature value"));
        }
    }
    let n_classes = y.iter().copied().max().unwrap_or(0) + 1;
    Ok((width, n_classes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_clean_data() {
        let x = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let y = vec![0, 2];
        assert_eq!(validate_training_set(&x, &y), Ok((2, 3)));
    }

    #[test]
    fn validate_rejects_empty() {
        assert_eq!(validate_training_set(&[], &[]), Err(MlError::EmptyDataset));
    }

    #[test]
    fn validate_rejects_ragged() {
        let x = vec![vec![1.0], vec![1.0, 2.0]];
        assert!(matches!(
            validate_training_set(&x, &[0, 1]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn validate_rejects_label_count_mismatch() {
        let x = vec![vec![1.0], vec![2.0]];
        assert!(matches!(
            validate_training_set(&x, &[0]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn validate_rejects_nan() {
        let x = vec![vec![f64::NAN]];
        assert_eq!(
            validate_training_set(&x, &[0]),
            Err(MlError::InvalidData("non-finite feature value"))
        );
    }
}
