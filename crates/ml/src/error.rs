//! Error types for the ML crate.

use std::error::Error;
use std::fmt;

/// Errors produced by classifier training and inference.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MlError {
    /// Training was attempted on an empty dataset.
    EmptyDataset,
    /// Feature vectors have inconsistent lengths, or labels and features
    /// have different counts.
    DimensionMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        got: usize,
    },
    /// Prediction was requested before `fit` succeeded.
    NotFitted,
    /// A hyperparameter is outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint that was violated.
        reason: &'static str,
    },
    /// A label value is out of range or a feature is non-finite.
    InvalidData(&'static str),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyDataset => write!(f, "training dataset is empty"),
            MlError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            MlError::NotFitted => write!(f, "model has not been fitted"),
            MlError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            MlError::InvalidData(what) => write!(f, "invalid data: {what}"),
        }
    }
}

impl Error for MlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(MlError::NotFitted.to_string().contains("not been fitted"));
        let e = MlError::DimensionMismatch {
            expected: 3,
            got: 5,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('5'));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<MlError>();
    }
}
