//! A small 1-D convolutional neural network — the third alternative the
//! paper weighs against the random forest (§IV-C2). Implemented from
//! scratch (manual backpropagation, SGD with momentum) so its training
//! and inference costs can be measured honestly next to RF/DTW/HMM.
//!
//! Architecture, sized for gesture envelope signatures:
//!
//! ```text
//! input [C × L] → conv(k=5, F₁) → ReLU → maxpool(2)
//!               → conv(k=5, F₂) → ReLU → maxpool(2)
//!               → dense → softmax
//! ```

use crate::classifier::{validate_training_set, Classifier};
use crate::error::MlError;
use serde::{Deserialize, Serialize};

/// CNN hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CnnConfig {
    /// Input channels (the flat feature vector is interpreted as
    /// `channels × length`).
    pub channels: usize,
    /// Filters in the first conv layer.
    pub filters1: usize,
    /// Filters in the second conv layer.
    pub filters2: usize,
    /// Convolution kernel width.
    pub kernel: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// RNG seed for initialization and shuffling.
    pub seed: u64,
}

impl Default for CnnConfig {
    fn default() -> Self {
        CnnConfig {
            channels: 1,
            filters1: 8,
            filters2: 16,
            kernel: 5,
            epochs: 40,
            batch: 16,
            learning_rate: 0.03,
            momentum: 0.9,
            seed: 0,
        }
    }
}

/// Deterministic uniform draw in `[-a, a]` (splitmix64).
fn uniform(state: &mut u64, a: f64) -> f64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (((z >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0) * a
}

/// Flat parameter block with a momentum buffer.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Param {
    w: Vec<f64>,
    v: Vec<f64>,
}

impl Param {
    fn new(n: usize, state: &mut u64, scale: f64) -> Param {
        Param {
            w: (0..n).map(|_| uniform(state, scale)).collect(),
            v: vec![0.0; n],
        }
    }

    fn step(&mut self, grad: &[f64], lr: f64, momentum: f64) {
        for ((w, v), &g) in self.w.iter_mut().zip(&mut self.v).zip(grad) {
            *v = momentum * *v - lr * g;
            *w += *v;
        }
    }
}

/// The 1-D CNN classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CnnClassifier {
    config: CnnConfig,
    length: usize,
    n_classes: usize,
    conv1: Param,
    bias1: Param,
    conv2: Param,
    bias2: Param,
    dense: Param,
    bias3: Param,
    fitted: bool,
}

/// Per-sample forward activations (kept for backprop).
struct Forward {
    input: Vec<Vec<f64>>,
    a1: Vec<Vec<f64>>,
    p1: Vec<Vec<f64>>,
    arg1: Vec<Vec<usize>>,
    a2: Vec<Vec<f64>>,
    p2: Vec<Vec<f64>>,
    arg2: Vec<Vec<usize>>,
    probs: Vec<f64>,
}

impl CnnClassifier {
    /// Create an untrained network.
    ///
    /// # Panics
    ///
    /// Panics on zero-sized hyperparameters.
    #[must_use]
    pub fn new(config: CnnConfig) -> Self {
        assert!(config.channels > 0, "channels must be positive");
        assert!(
            config.filters1 > 0 && config.filters2 > 0,
            "filters must be positive"
        );
        assert!(config.kernel > 0, "kernel must be positive");
        assert!(config.batch > 0, "batch must be positive");
        CnnClassifier {
            config,
            length: 0,
            n_classes: 0,
            conv1: Param {
                w: Vec::new(),
                v: Vec::new(),
            },
            bias1: Param {
                w: Vec::new(),
                v: Vec::new(),
            },
            conv2: Param {
                w: Vec::new(),
                v: Vec::new(),
            },
            bias2: Param {
                w: Vec::new(),
                v: Vec::new(),
            },
            dense: Param {
                w: Vec::new(),
                v: Vec::new(),
            },
            bias3: Param {
                w: Vec::new(),
                v: Vec::new(),
            },
            fitted: false,
        }
    }

    fn l1(&self) -> usize {
        self.length - self.config.kernel + 1
    }
    fn l2(&self) -> usize {
        self.l1() / 2
    }
    fn l3(&self) -> usize {
        self.l2() - self.config.kernel + 1
    }
    fn l4(&self) -> usize {
        self.l3() / 2
    }

    fn split_channels(&self, x: &[f64]) -> Vec<Vec<f64>> {
        x.chunks(self.length).map(<[f64]>::to_vec).collect()
    }

    fn forward(&self, x: &[f64]) -> Forward {
        let cfg = &self.config;
        let k = cfg.kernel;
        let input = self.split_channels(x);
        // Conv1 + ReLU.
        let mut a1 = vec![vec![0.0; self.l1()]; cfg.filters1];
        for (f, row) in a1.iter_mut().enumerate() {
            for (i, out) in row.iter_mut().enumerate() {
                let mut acc = self.bias1.w[f];
                for (c, chan) in input.iter().enumerate() {
                    let base = (f * cfg.channels + c) * k;
                    for (j, &w) in self.conv1.w[base..base + k].iter().enumerate() {
                        acc += w * chan[i + j];
                    }
                }
                *out = acc.max(0.0);
            }
        }
        // Pool1.
        let (p1, arg1) = maxpool(&a1);
        // Conv2 + ReLU.
        let mut a2 = vec![vec![0.0; self.l3()]; cfg.filters2];
        for (f, row) in a2.iter_mut().enumerate() {
            for (i, out) in row.iter_mut().enumerate() {
                let mut acc = self.bias2.w[f];
                for (c, chan) in p1.iter().enumerate() {
                    let base = (f * cfg.filters1 + c) * k;
                    for (j, &w) in self.conv2.w[base..base + k].iter().enumerate() {
                        acc += w * chan[i + j];
                    }
                }
                *out = acc.max(0.0);
            }
        }
        // Pool2 + dense.
        let (p2, arg2) = maxpool(&a2);
        let flat: Vec<f64> = p2.iter().flatten().copied().collect();
        let mut logits = vec![0.0; self.n_classes];
        for (cls, l) in logits.iter_mut().enumerate() {
            let base = cls * flat.len();
            *l = self.bias3.w[cls]
                + self.dense.w[base..base + flat.len()]
                    .iter()
                    .zip(&flat)
                    .map(|(w, v)| w * v)
                    .sum::<f64>();
        }
        let probs = softmax(&logits);
        Forward {
            input,
            a1,
            p1,
            arg1,
            a2,
            p2,
            arg2,
            probs,
        }
    }

    /// Accumulate gradients for one sample into the provided buffers.
    #[allow(clippy::too_many_arguments)] // internal plumbing of the six buffers
    fn backward(
        &self,
        fwd: &Forward,
        label: usize,
        g_conv1: &mut [f64],
        g_bias1: &mut [f64],
        g_conv2: &mut [f64],
        g_bias2: &mut [f64],
        g_dense: &mut [f64],
        g_bias3: &mut [f64],
    ) {
        let cfg = &self.config;
        let k = cfg.kernel;
        let flat: Vec<f64> = fwd.p2.iter().flatten().copied().collect();
        // Softmax cross-entropy gradient.
        let mut d_logits = fwd.probs.clone();
        d_logits[label] -= 1.0;
        // Dense.
        let mut d_flat = vec![0.0; flat.len()];
        for (cls, &dl) in d_logits.iter().enumerate() {
            g_bias3[cls] += dl;
            let base = cls * flat.len();
            for (j, &v) in flat.iter().enumerate() {
                g_dense[base + j] += dl * v;
                d_flat[j] += dl * self.dense.w[base + j];
            }
        }
        // Un-flatten to pool2 shape, route through argmax and ReLU of a2.
        let mut d_a2 = vec![vec![0.0; self.l3()]; cfg.filters2];
        for f in 0..cfg.filters2 {
            for i in 0..self.l4() {
                let d = d_flat[f * self.l4() + i];
                let src = fwd.arg2[f][i];
                if fwd.a2[f][src] > 0.0 {
                    d_a2[f][src] += d;
                }
            }
        }
        // Conv2 gradients + propagate to pool1.
        let mut d_p1 = vec![vec![0.0; self.l2()]; cfg.filters1];
        for (f, drow) in d_a2.iter().enumerate() {
            for (i, &d) in drow.iter().enumerate() {
                if d == 0.0 {
                    continue;
                }
                g_bias2[f] += d;
                for (c, chan) in fwd.p1.iter().enumerate() {
                    let base = (f * cfg.filters1 + c) * k;
                    for j in 0..k {
                        g_conv2[base + j] += d * chan[i + j];
                        d_p1[c][i + j] += d * self.conv2.w[base + j];
                    }
                }
            }
        }
        // Route through pool1/ReLU of a1, then conv1 gradients.
        let mut d_a1 = vec![vec![0.0; self.l1()]; cfg.filters1];
        for (f, drow) in d_p1.iter().enumerate() {
            for (i, &d) in drow.iter().enumerate().take(self.l2()) {
                if d == 0.0 {
                    continue;
                }
                let src = fwd.arg1[f][i];
                if fwd.a1[f][src] > 0.0 {
                    d_a1[f][src] += d;
                }
            }
        }
        for (f, drow) in d_a1.iter().enumerate() {
            for (i, &d) in drow.iter().enumerate() {
                if d == 0.0 {
                    continue;
                }
                g_bias1[f] += d;
                for (c, chan) in fwd.input.iter().enumerate() {
                    let base = (f * cfg.channels + c) * k;
                    for j in 0..k {
                        g_conv1[base + j] += d * chan[i + j];
                    }
                }
            }
        }
    }

    /// Class probabilities for one sample.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Classifier::predict`].
    pub fn predict_proba(&self, x: &[f64]) -> Result<Vec<f64>, MlError> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        if x.len() != self.length * self.config.channels {
            return Err(MlError::DimensionMismatch {
                expected: self.length * self.config.channels,
                got: x.len(),
            });
        }
        Ok(self.forward(x).probs)
    }
}

/// 2:1 max pooling per row; returns pooled values and source indices.
fn maxpool(rows: &[Vec<f64>]) -> (Vec<Vec<f64>>, Vec<Vec<usize>>) {
    let mut pooled = Vec::with_capacity(rows.len());
    let mut args = Vec::with_capacity(rows.len());
    for row in rows {
        let half = row.len() / 2;
        let mut p = Vec::with_capacity(half);
        let mut a = Vec::with_capacity(half);
        for i in 0..half {
            let (l, r) = (row[2 * i], row[2 * i + 1]);
            if l >= r {
                p.push(l);
                a.push(2 * i);
            } else {
                p.push(r);
                a.push(2 * i + 1);
            }
        }
        pooled.push(p);
        args.push(a);
    }
    (pooled, args)
}

fn softmax(logits: &[f64]) -> Vec<f64> {
    let m = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&v| (v - m).exp()).collect();
    let s: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / s).collect()
}

impl Classifier for CnnClassifier {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) -> Result<(), MlError> {
        let (width, n_classes) = validate_training_set(x, y)?;
        if width % self.config.channels != 0 {
            return Err(MlError::InvalidData(
                "input width not divisible by channel count",
            ));
        }
        self.length = width / self.config.channels;
        self.n_classes = n_classes;
        if self.length < 2 * self.config.kernel + 4 {
            return Err(MlError::InvalidData(
                "input too short for two conv+pool stages",
            ));
        }
        let cfg = self.config;
        let k = cfg.kernel;
        let mut state = cfg.seed.wrapping_add(0xC44);
        let scale1 = (2.0 / (cfg.channels * k) as f64).sqrt();
        let scale2 = (2.0 / (cfg.filters1 * k) as f64).sqrt();
        self.conv1 = Param::new(cfg.filters1 * cfg.channels * k, &mut state, scale1);
        self.bias1 = Param::new(cfg.filters1, &mut state, 0.01);
        self.conv2 = Param::new(cfg.filters2 * cfg.filters1 * k, &mut state, scale2);
        self.bias2 = Param::new(cfg.filters2, &mut state, 0.01);
        let flat = cfg.filters2 * self.l4();
        let scale3 = (2.0 / flat as f64).sqrt();
        self.dense = Param::new(n_classes * flat, &mut state, scale3);
        self.bias3 = Param::new(n_classes, &mut state, 0.01);
        self.fitted = true; // forward() is used during training

        let n = x.len();
        let mut order: Vec<usize> = (0..n).collect();
        for epoch in 0..cfg.epochs {
            // Deterministic shuffle.
            let mut st = cfg.seed ^ (epoch as u64).wrapping_mul(0x9E37);
            for i in (1..n).rev() {
                let j = (uniform(&mut st, 0.5) + 0.5).abs() * (i + 1) as f64;
                order.swap(i, (j as usize).min(i));
            }
            for chunk in order.chunks(cfg.batch) {
                let mut g_conv1 = vec![0.0; self.conv1.w.len()];
                let mut g_bias1 = vec![0.0; self.bias1.w.len()];
                let mut g_conv2 = vec![0.0; self.conv2.w.len()];
                let mut g_bias2 = vec![0.0; self.bias2.w.len()];
                let mut g_dense = vec![0.0; self.dense.w.len()];
                let mut g_bias3 = vec![0.0; self.bias3.w.len()];
                for &idx in chunk {
                    let fwd = self.forward(&x[idx]);
                    self.backward(
                        &fwd,
                        y[idx],
                        &mut g_conv1,
                        &mut g_bias1,
                        &mut g_conv2,
                        &mut g_bias2,
                        &mut g_dense,
                        &mut g_bias3,
                    );
                }
                let inv = 1.0 / chunk.len() as f64;
                for g in [
                    &mut g_conv1,
                    &mut g_bias1,
                    &mut g_conv2,
                    &mut g_bias2,
                    &mut g_dense,
                    &mut g_bias3,
                ] {
                    for v in g.iter_mut() {
                        *v *= inv;
                    }
                }
                self.conv1.step(&g_conv1, cfg.learning_rate, cfg.momentum);
                self.bias1.step(&g_bias1, cfg.learning_rate, cfg.momentum);
                self.conv2.step(&g_conv2, cfg.learning_rate, cfg.momentum);
                self.bias2.step(&g_bias2, cfg.learning_rate, cfg.momentum);
                self.dense.step(&g_dense, cfg.learning_rate, cfg.momentum);
                self.bias3.step(&g_bias3, cfg.learning_rate, cfg.momentum);
            }
        }
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> Result<usize, MlError> {
        let p = self.predict_proba(x)?;
        Ok(p.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0))
    }

    fn name(&self) -> &'static str {
        "CNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_bump(phase: f64) -> Vec<f64> {
        (0..48)
            .map(|i| {
                let t = (i as f64 / 48.0 + phase).clamp(0.0, 1.0);
                (std::f64::consts::PI * t).sin().powi(2)
            })
            .collect()
    }

    fn two_bumps(phase: f64) -> Vec<f64> {
        (0..48)
            .map(|i| {
                let t = (i as f64 / 48.0 + phase).clamp(0.0, 1.0);
                (2.0 * std::f64::consts::PI * t).sin().powi(2)
            })
            .collect()
    }

    fn training_set() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for k in 0..12 {
            let p = k as f64 * 0.012;
            x.push(one_bump(p));
            y.push(0);
            x.push(two_bumps(p));
            y.push(1);
        }
        (x, y)
    }

    #[test]
    fn learns_temporal_shapes() {
        let (x, y) = training_set();
        let mut c = CnnClassifier::new(CnnConfig {
            epochs: 60,
            ..Default::default()
        });
        c.fit(&x, &y).unwrap();
        let mut correct = 0;
        for probe in 0..6 {
            let p = 0.003 + probe as f64 * 0.013;
            if c.predict(&one_bump(p)).unwrap() == 0 {
                correct += 1;
            }
            if c.predict(&two_bumps(p)).unwrap() == 1 {
                correct += 1;
            }
        }
        assert!(correct >= 10, "correct {correct}/12");
    }

    #[test]
    fn probabilities_are_normalized() {
        let (x, y) = training_set();
        let mut c = CnnClassifier::new(CnnConfig::default());
        c.fit(&x, &y).unwrap();
        let p = c.predict_proba(&one_bump(0.0)).unwrap();
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn training_is_deterministic() {
        let (x, y) = training_set();
        let run = || {
            let mut c = CnnClassifier::new(CnnConfig {
                epochs: 5,
                ..Default::default()
            });
            c.fit(&x, &y).unwrap();
            c.predict_proba(&one_bump(0.01)).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn unfitted_errors() {
        let c = CnnClassifier::new(CnnConfig::default());
        assert_eq!(c.predict(&one_bump(0.0)), Err(MlError::NotFitted));
    }

    #[test]
    fn too_short_input_rejected() {
        let x = vec![vec![1.0; 8], vec![2.0; 8]];
        let y = vec![0, 1];
        let mut c = CnnClassifier::new(CnnConfig::default());
        assert!(matches!(c.fit(&x, &y), Err(MlError::InvalidData(_))));
    }

    #[test]
    fn indivisible_channels_rejected() {
        let x = vec![vec![1.0; 47], vec![2.0; 47]];
        let y = vec![0, 1];
        let mut c = CnnClassifier::new(CnnConfig {
            channels: 2,
            ..Default::default()
        });
        assert!(matches!(c.fit(&x, &y), Err(MlError::InvalidData(_))));
    }

    #[test]
    fn wrong_width_prediction_rejected() {
        let (x, y) = training_set();
        let mut c = CnnClassifier::new(CnnConfig {
            epochs: 2,
            ..Default::default()
        });
        c.fit(&x, &y).unwrap();
        assert!(matches!(
            c.predict(&[0.0; 10]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn multichannel_input_trains() {
        // 3 channels × 48 samples, class decided by which channel holds
        // the bump.
        let make = |chan: usize, phase: f64| -> Vec<f64> {
            let mut v = vec![0.0; 3 * 48];
            for (i, b) in one_bump(phase).into_iter().enumerate() {
                v[chan * 48 + i] = b;
            }
            v
        };
        let mut x = Vec::new();
        let mut y = Vec::new();
        for k in 0..8 {
            let p = k as f64 * 0.01;
            for chan in 0..3 {
                x.push(make(chan, p));
                y.push(chan);
            }
        }
        let mut c = CnnClassifier::new(CnnConfig {
            channels: 3,
            epochs: 60,
            ..Default::default()
        });
        c.fit(&x, &y).unwrap();
        let mut correct = 0;
        for chan in 0..3 {
            if c.predict(&make(chan, 0.005)).unwrap() == chan {
                correct += 1;
            }
        }
        assert!(correct >= 2, "correct {correct}/3");
    }
}
