//! From-scratch classifiers and evaluation harness for airFinger.
//!
//! The paper classifies gesture feature vectors with a **Random Forest**,
//! selected after comparing against Logistic Regression, a single Decision
//! Tree and Bernoulli Naive Bayes (§IV-C2, §V-E). All four are implemented
//! here, plus the evaluation machinery behind every accuracy figure:
//!
//! * [`tree`] — CART decision tree (Gini impurity) with optional per-split
//!   feature subsampling.
//! * [`forest`] — bootstrap-aggregated random forest with mean-decrease-in-
//!   impurity feature importances (the "feature importance feedback" the
//!   paper uses to pick its 25 features).
//! * [`logistic`] — multinomial (softmax) logistic regression trained by
//!   gradient descent with L2 regularization.
//! * [`naive_bayes`] — Bernoulli naive Bayes over median-binarized
//!   features.
//! * [`dtw`] — a banded-DTW 1-NN baseline, one of the alternatives §IV-C2
//!   rejects on computational cost.
//! * [`hmm`] — a per-class left-right Gaussian HMM baseline (Baum–Welch /
//!   forward scoring), another §IV-C2 alternative.
//! * [`cnn`] — a small from-scratch 1-D CNN (manual backprop, SGD with
//!   momentum), completing the §IV-C2 alternative set.
//! * [`split`] — stratified train/test splits, stratified k-fold, and
//!   leave-one-group-out (the paper's leave-one-user-out and
//!   leave-one-session-out protocols).
//! * [`metrics`] — confusion matrices, accuracy, per-class recall and
//!   precision.
//!
//! # Example
//!
//! ```
//! use airfinger_ml::forest::{RandomForest, RandomForestConfig};
//! use airfinger_ml::classifier::Classifier;
//!
//! // Two separable blobs.
//! let x: Vec<Vec<f64>> = (0..40)
//!     .map(|i| if i < 20 { vec![0.0, i as f64 * 0.01] } else { vec![1.0, i as f64 * 0.01] })
//!     .collect();
//! let y: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
//!
//! let mut rf = RandomForest::new(RandomForestConfig { n_trees: 10, seed: 1, ..Default::default() });
//! rf.fit(&x, &y)?;
//! assert_eq!(rf.predict(&[0.9, 0.5])?, 1);
//! # Ok::<(), airfinger_ml::MlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classifier;
pub mod cnn;
pub mod dtw;
pub mod error;
pub mod forest;
pub mod hmm;
pub mod logistic;
pub mod metrics;
pub mod naive_bayes;
pub mod split;
pub mod tree;

pub use classifier::Classifier;
pub use error::MlError;
pub use forest::{RandomForest, RandomForestConfig};
pub use metrics::ConfusionMatrix;
