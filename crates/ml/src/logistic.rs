//! Multinomial (softmax) logistic regression trained by batch gradient
//! descent with L2 regularization.
//!
//! The paper notes LR "also performs not bad" on accuracy but that "its
//! computing time is much longer than that of RF" — a claim the
//! `classifiers` Criterion bench reproduces (LR pays an iterative
//! optimization at training time).

use crate::classifier::{validate_training_set, Classifier};
use crate::error::MlError;
use serde::{Deserialize, Serialize};

/// Logistic-regression hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegressionConfig {
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
}

impl Default for LogisticRegressionConfig {
    fn default() -> Self {
        LogisticRegressionConfig {
            iterations: 800,
            learning_rate: 0.5,
            l2: 1e-4,
        }
    }
}

/// Multinomial logistic regression with internal feature standardization.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegression {
    config: LogisticRegressionConfig,
    /// `weights[c][f]`, plus bias at index `n_features`.
    weights: Vec<Vec<f64>>,
    means: Vec<f64>,
    stds: Vec<f64>,
    n_features: usize,
    n_classes: usize,
    fitted: bool,
}

impl LogisticRegression {
    /// Create an untrained model.
    #[must_use]
    pub fn new(config: LogisticRegressionConfig) -> Self {
        LogisticRegression {
            config,
            weights: Vec::new(),
            means: Vec::new(),
            stds: Vec::new(),
            n_features: 0,
            n_classes: 0,
            fitted: false,
        }
    }

    fn standardize(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .enumerate()
            .map(|(f, &v)| (v - self.means[f]) / self.stds[f])
            .collect()
    }

    fn logits(&self, z: &[f64]) -> Vec<f64> {
        self.weights
            .iter()
            .map(|w| {
                let mut s = w[self.n_features]; // bias
                for (f, &v) in z.iter().enumerate() {
                    s += w[f] * v;
                }
                s
            })
            .collect()
    }

    /// Class probabilities for one sample.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Classifier::predict`].
    pub fn predict_proba(&self, x: &[f64]) -> Result<Vec<f64>, MlError> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        if x.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                got: x.len(),
            });
        }
        let z = self.standardize(x);
        Ok(softmax(&self.logits(&z)))
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) -> Result<(), MlError> {
        let (n_features, n_classes) = validate_training_set(x, y)?;
        if self.config.iterations == 0 || self.config.learning_rate <= 0.0 {
            return Err(MlError::InvalidParameter {
                name: "iterations/learning_rate",
                reason: "must be positive",
            });
        }
        self.n_features = n_features;
        self.n_classes = n_classes;
        // Standardization statistics.
        let n = x.len() as f64;
        self.means = vec![0.0; n_features];
        self.stds = vec![0.0; n_features];
        for row in x {
            for (f, &v) in row.iter().enumerate() {
                self.means[f] += v;
            }
        }
        for m in &mut self.means {
            *m /= n;
        }
        for row in x {
            for (f, &v) in row.iter().enumerate() {
                let d = v - self.means[f];
                self.stds[f] += d * d;
            }
        }
        for s in &mut self.stds {
            *s = (*s / n).sqrt();
            if *s <= f64::EPSILON {
                *s = 1.0; // constant feature: leave centered
            }
        }
        let z: Vec<Vec<f64>> = x.iter().map(|row| self.standardize(row)).collect();
        // Batch gradient descent on the cross-entropy.
        self.weights = vec![vec![0.0; n_features + 1]; n_classes];
        self.fitted = true; // logits() below needs the weights in place
        let lr = self.config.learning_rate;
        for _ in 0..self.config.iterations {
            let mut grad = vec![vec![0.0; n_features + 1]; n_classes];
            for (zi, &yi) in z.iter().zip(y) {
                let p = softmax(&self.logits(zi));
                for (c, g) in grad.iter_mut().enumerate() {
                    let err = p[c] - if c == yi { 1.0 } else { 0.0 };
                    for (f, &v) in zi.iter().enumerate() {
                        g[f] += err * v;
                    }
                    g[n_features] += err;
                }
            }
            for (c, w) in self.weights.iter_mut().enumerate() {
                for f in 0..=n_features {
                    let reg = if f < n_features {
                        self.config.l2 * w[f]
                    } else {
                        0.0
                    };
                    w[f] -= lr * (grad[c][f] / n + reg);
                }
            }
        }
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> Result<usize, MlError> {
        let p = self.predict_proba(x)?;
        Ok(p.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0))
    }

    fn name(&self) -> &'static str {
        "LR"
    }
}

/// Numerically stable softmax.
fn softmax(logits: &[f64]) -> Vec<f64> {
    let m = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&v| (v - m).exp()).collect();
    let s: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..25 {
            let j = (i % 5) as f64 * 0.1;
            x.push(vec![0.0 + j, 1.0 - j]);
            y.push(0);
            x.push(vec![4.0 - j, -3.0 + j]);
            y.push(1);
            x.push(vec![-4.0 + j, -3.0 - j]);
            y.push(2);
        }
        (x, y)
    }

    #[test]
    fn learns_linearly_separable_classes() {
        let (x, y) = blobs();
        let mut lr = LogisticRegression::new(LogisticRegressionConfig::default());
        lr.fit(&x, &y).unwrap();
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| lr.predict(xi).unwrap() == yi)
            .count();
        assert_eq!(correct, x.len());
    }

    #[test]
    fn probabilities_normalized_and_confident() {
        let (x, y) = blobs();
        let mut lr = LogisticRegression::new(LogisticRegressionConfig::default());
        lr.fit(&x, &y).unwrap();
        let p = lr.predict_proba(&[0.0, 1.0]).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p[0] > 0.8, "p = {p:?}");
    }

    #[test]
    fn softmax_stability_with_huge_logits() {
        let p = softmax(&[1000.0, 999.0, -1000.0]);
        assert!(p.iter().all(|v| v.is_finite()));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] > p[1] && p[1] > p[2]);
    }

    #[test]
    fn constant_feature_does_not_nan() {
        let x = vec![
            vec![1.0, 5.0],
            vec![2.0, 5.0],
            vec![3.0, 5.0],
            vec![4.0, 5.0],
        ];
        let y = vec![0, 0, 1, 1];
        let mut lr = LogisticRegression::new(LogisticRegressionConfig::default());
        lr.fit(&x, &y).unwrap();
        assert_eq!(lr.predict(&[1.0, 5.0]).unwrap(), 0);
        assert_eq!(lr.predict(&[4.0, 5.0]).unwrap(), 1);
    }

    #[test]
    fn predict_before_fit_errors() {
        let lr = LogisticRegression::new(LogisticRegressionConfig::default());
        assert_eq!(lr.predict(&[0.0]), Err(MlError::NotFitted));
    }

    #[test]
    fn bad_config_rejected() {
        let (x, y) = blobs();
        let mut lr = LogisticRegression::new(LogisticRegressionConfig {
            iterations: 0,
            ..Default::default()
        });
        assert!(matches!(
            lr.fit(&x, &y),
            Err(MlError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn binary_problem_works() {
        let x = vec![vec![0.0], vec![0.1], vec![0.9], vec![1.0]];
        let y = vec![0, 0, 1, 1];
        let mut lr = LogisticRegression::new(LogisticRegressionConfig::default());
        lr.fit(&x, &y).unwrap();
        assert_eq!(lr.predict(&[0.05]).unwrap(), 0);
        assert_eq!(lr.predict(&[0.95]).unwrap(), 1);
    }
}
