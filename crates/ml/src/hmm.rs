//! Gaussian hidden Markov model classifier — the second alternative the
//! paper weighs against the random forest (§IV-C2). One left-right HMM is
//! trained per class with Baum–Welch; classification picks the class whose
//! model assigns the sequence the highest (scaled) forward likelihood.
//!
//! Observations are 1-D: the airFinger harness feeds the resampled summed
//! energy envelope of a gesture window, the same temporal signature the
//! DTW baseline uses.

use crate::classifier::{validate_training_set, Classifier};
use crate::error::MlError;
use serde::{Deserialize, Serialize};

/// HMM hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HmmConfig {
    /// Hidden states per class model (left-right chain).
    pub states: usize,
    /// Baum–Welch iterations.
    pub iterations: usize,
    /// Variance floor (keeps emissions proper when a state collapses).
    pub var_floor: f64,
}

impl Default for HmmConfig {
    fn default() -> Self {
        HmmConfig {
            states: 6,
            iterations: 12,
            var_floor: 1e-4,
        }
    }
}

/// A single left-right Gaussian HMM.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct GaussianHmm {
    /// `trans[i]` = P(stay in i); `1 − trans[i]` moves to `i+1` (the last
    /// state only self-loops).
    stay: Vec<f64>,
    means: Vec<f64>,
    vars: Vec<f64>,
}

impl GaussianHmm {
    /// Initialize by slicing the sequences into `states` equal segments.
    fn init(sequences: &[&[f64]], config: &HmmConfig) -> GaussianHmm {
        let k = config.states;
        let mut means = vec![0.0; k];
        let mut vars = vec![0.0; k];
        let mut counts = vec![0usize; k];
        for seq in sequences {
            for (t, &v) in seq.iter().enumerate() {
                let s = (t * k / seq.len()).min(k - 1);
                means[s] += v;
                counts[s] += 1;
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            *m /= c.max(1) as f64;
        }
        for seq in sequences {
            for (t, &v) in seq.iter().enumerate() {
                let s = (t * k / seq.len()).min(k - 1);
                vars[s] += (v - means[s]) * (v - means[s]);
            }
        }
        for (v, &c) in vars.iter_mut().zip(&counts) {
            *v = (*v / c.max(1) as f64).max(config.var_floor);
        }
        GaussianHmm {
            stay: vec![0.7; k],
            means,
            vars,
        }
    }

    fn emission(&self, state: usize, x: f64) -> f64 {
        let var = self.vars[state];
        let d = x - self.means[state];
        (-(d * d) / (2.0 * var)).exp() / (2.0 * std::f64::consts::PI * var).sqrt()
    }

    /// Scaled forward pass: returns (log-likelihood, alphas, scales).
    fn forward(&self, seq: &[f64]) -> (f64, Vec<Vec<f64>>, Vec<f64>) {
        let k = self.stay.len();
        let n = seq.len();
        let mut alphas = vec![vec![0.0; k]; n];
        let mut scales = vec![0.0; n];
        // Left-right: start in state 0.
        alphas[0][0] = self.emission(0, seq[0]).max(f64::MIN_POSITIVE);
        let mut log_like = 0.0;
        for t in 0..n {
            if t > 0 {
                for s in 0..k {
                    let from_stay = alphas[t - 1][s] * self.stay[s];
                    let from_prev = if s > 0 {
                        alphas[t - 1][s - 1] * (1.0 - self.stay[s - 1])
                    } else {
                        0.0
                    };
                    alphas[t][s] =
                        (from_stay + from_prev) * self.emission(s, seq[t]).max(f64::MIN_POSITIVE);
                }
                // The last state absorbs its "advance" mass by self-loop.
                let last_extra = alphas[t - 1][k - 1]
                    * (1.0 - self.stay[k - 1])
                    * self.emission(k - 1, seq[t]).max(f64::MIN_POSITIVE);
                alphas[t][k - 1] += last_extra;
            }
            let scale: f64 = alphas[t].iter().sum::<f64>().max(f64::MIN_POSITIVE);
            for a in &mut alphas[t] {
                *a /= scale;
            }
            scales[t] = scale;
            log_like += scale.ln();
        }
        (log_like, alphas, scales)
    }

    /// Scaled backward pass given the forward scales.
    fn backward(&self, seq: &[f64], scales: &[f64]) -> Vec<Vec<f64>> {
        let k = self.stay.len();
        let n = seq.len();
        let mut betas = vec![vec![0.0; k]; n];
        for b in &mut betas[n - 1] {
            *b = 1.0;
        }
        for t in (0..n - 1).rev() {
            for s in 0..k {
                let e_stay = self.emission(s, seq[t + 1]).max(f64::MIN_POSITIVE);
                let mut acc = self.stay[s] * e_stay * betas[t + 1][s];
                let next = (s + 1).min(k - 1);
                let e_next = self.emission(next, seq[t + 1]).max(f64::MIN_POSITIVE);
                acc += (1.0 - self.stay[s]) * e_next * betas[t + 1][next];
                betas[t][s] = acc / scales[t + 1];
            }
        }
        betas
    }

    /// One Baum–Welch update over all sequences.
    fn reestimate(&mut self, sequences: &[&[f64]], config: &HmmConfig) {
        let k = self.stay.len();
        let mut mean_num = vec![0.0; k];
        let mut var_num = vec![0.0; k];
        let mut gamma_sum = vec![0.0; k];
        let mut stay_num = vec![0.0; k];
        let mut trans_den = vec![0.0; k];
        for seq in sequences {
            if seq.len() < 2 {
                continue;
            }
            let (_, alphas, scales) = self.forward(seq);
            let betas = self.backward(seq, &scales);
            for t in 0..seq.len() {
                for s in 0..k {
                    let gamma = alphas[t][s] * betas[t][s];
                    gamma_sum[s] += gamma;
                    mean_num[s] += gamma * seq[t];
                    var_num[s] += gamma * (seq[t] - self.means[s]) * (seq[t] - self.means[s]);
                }
            }
            for t in 0..seq.len() - 1 {
                for s in 0..k {
                    let e_stay = self.emission(s, seq[t + 1]).max(f64::MIN_POSITIVE);
                    let xi_stay =
                        alphas[t][s] * self.stay[s] * e_stay * betas[t + 1][s] / scales[t + 1];
                    stay_num[s] += xi_stay;
                    trans_den[s] += alphas[t][s] * betas[t][s];
                }
            }
        }
        for s in 0..k {
            if gamma_sum[s] > 0.0 {
                self.means[s] = mean_num[s] / gamma_sum[s];
                self.vars[s] = (var_num[s] / gamma_sum[s]).max(config.var_floor);
            }
            if trans_den[s] > 0.0 {
                self.stay[s] = (stay_num[s] / trans_den[s]).clamp(0.05, 0.98);
            }
        }
    }
}

/// One Gaussian HMM per class, classified by maximum forward likelihood.
///
/// # Example
///
/// ```
/// use airfinger_ml::hmm::{HmmClassifier, HmmConfig};
/// use airfinger_ml::classifier::Classifier;
///
/// let low: Vec<f64> = vec![0.1; 30];
/// let high: Vec<f64> = vec![0.9; 30];
/// let mut hmm = HmmClassifier::new(HmmConfig { states: 2, ..Default::default() });
/// hmm.fit(&[low.clone(), high.clone()], &[0, 1])?;
/// assert_eq!(hmm.predict(&low)?, 0);
/// assert_eq!(hmm.predict(&high)?, 1);
/// # Ok::<(), airfinger_ml::MlError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HmmClassifier {
    config: HmmConfig,
    models: Vec<GaussianHmm>,
    fitted: bool,
}

impl HmmClassifier {
    /// Create an untrained classifier.
    ///
    /// # Panics
    ///
    /// Panics if `states` is zero.
    #[must_use]
    pub fn new(config: HmmConfig) -> Self {
        assert!(config.states > 0, "need at least one state");
        HmmClassifier {
            config,
            models: Vec::new(),
            fitted: false,
        }
    }

    /// Per-class log-likelihoods of one sequence.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::NotFitted`] before training.
    pub fn log_likelihoods(&self, x: &[f64]) -> Result<Vec<f64>, MlError> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        Ok(self.models.iter().map(|m| m.forward(x).0).collect())
    }
}

impl Classifier for HmmClassifier {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) -> Result<(), MlError> {
        let (_, n_classes) = validate_training_set(x, y)?;
        self.models.clear();
        for class in 0..n_classes {
            let sequences: Vec<&[f64]> = x
                .iter()
                .zip(y)
                .filter(|(_, &l)| l == class)
                .map(|(s, _)| s.as_slice())
                .collect();
            if sequences.is_empty() {
                return Err(MlError::InvalidData("a class has no training sequences"));
            }
            let mut hmm = GaussianHmm::init(&sequences, &self.config);
            for _ in 0..self.config.iterations {
                hmm.reestimate(&sequences, &self.config);
            }
            self.models.push(hmm);
        }
        self.fitted = true;
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> Result<usize, MlError> {
        let ll = self.log_likelihoods(x)?;
        Ok(ll
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0))
    }

    fn name(&self) -> &'static str {
        "HMM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_bump(phase: f64) -> Vec<f64> {
        (0..48)
            .map(|i| {
                let t = (i as f64 / 48.0 + phase).clamp(0.0, 1.0);
                (std::f64::consts::PI * t).sin().powi(2)
            })
            .collect()
    }

    fn two_bumps(phase: f64) -> Vec<f64> {
        (0..48)
            .map(|i| {
                let t = (i as f64 / 48.0 + phase).clamp(0.0, 1.0);
                (2.0 * std::f64::consts::PI * t).sin().powi(2)
            })
            .collect()
    }

    fn training_set() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for k in 0..10 {
            let p = k as f64 * 0.01;
            x.push(one_bump(p));
            y.push(0);
            x.push(two_bumps(p));
            y.push(1);
        }
        (x, y)
    }

    #[test]
    fn classifies_temporal_shapes() {
        let (x, y) = training_set();
        let mut c = HmmClassifier::new(HmmConfig::default());
        c.fit(&x, &y).unwrap();
        assert_eq!(c.predict(&one_bump(0.03)).unwrap(), 0);
        assert_eq!(c.predict(&two_bumps(0.03)).unwrap(), 1);
    }

    #[test]
    fn likelihoods_prefer_own_class() {
        let (x, y) = training_set();
        let mut c = HmmClassifier::new(HmmConfig::default());
        c.fit(&x, &y).unwrap();
        let ll = c.log_likelihoods(&one_bump(0.0)).unwrap();
        assert!(ll[0] > ll[1], "ll = {ll:?}");
        assert!(ll.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn training_improves_likelihood() {
        let (x, y) = training_set();
        let mut short = HmmClassifier::new(HmmConfig {
            iterations: 1,
            ..Default::default()
        });
        short.fit(&x, &y).unwrap();
        let mut long = HmmClassifier::new(HmmConfig {
            iterations: 15,
            ..Default::default()
        });
        long.fit(&x, &y).unwrap();
        let probe = one_bump(0.0);
        assert!(
            long.log_likelihoods(&probe).unwrap()[0]
                >= short.log_likelihoods(&probe).unwrap()[0] - 1e-6
        );
    }

    #[test]
    fn unfitted_errors() {
        let c = HmmClassifier::new(HmmConfig::default());
        assert_eq!(c.predict(&[1.0, 2.0]), Err(MlError::NotFitted));
    }

    #[test]
    fn missing_class_is_invalid() {
        // Labels 0 and 2 only: class 1 has no sequences.
        let x = vec![one_bump(0.0), two_bumps(0.0)];
        let y = vec![0, 2];
        let mut c = HmmClassifier::new(HmmConfig::default());
        assert!(matches!(c.fit(&x, &y), Err(MlError::InvalidData(_))));
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn zero_states_panics() {
        let _ = HmmClassifier::new(HmmConfig {
            states: 0,
            ..Default::default()
        });
    }
}
