//! Random forest: bagged CART trees with majority voting and
//! mean-decrease-in-impurity feature importances.
//!
//! This is the paper's classifier of choice: "we apply an RF-based
//! classifier to recognize micro finger gestures because several works have
//! shown that RF can perform well … regarding accuracy, robustness, and
//! scalability", and its importance feedback is what selects the 25
//! Table-I features.

use crate::classifier::{validate_training_set, Classifier};
use crate::error::MlError;
use crate::tree::{DecisionTree, DecisionTreeConfig};
use airfinger_parallel::{effective_threads, par_map, par_run};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Random-forest hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Depth limit per tree.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Features considered per split; `None` = `√n_features`.
    pub max_features: Option<usize>,
    /// Master RNG seed (per-tree seeds derive from it).
    pub seed: u64,
    /// Worker threads for training and batch prediction; 0 = resolve from
    /// `AIRFINGER_THREADS` / the machine. Never affects results — every
    /// tree's RNG stream derives from [`RandomForestConfig::seed`] alone,
    /// so the fitted forest is bit-identical at any thread count.
    pub n_threads: usize,
}

impl Default for RandomForestConfig {
    /// Paper-style defaults ("all these classifiers use default
    /// parameters"): 100 trees, √n features per split.
    fn default() -> Self {
        RandomForestConfig {
            n_trees: 100,
            max_depth: 24,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
            seed: 0,
            n_threads: 0,
        }
    }
}

/// The seed of tree `k`'s bootstrap-sampling RNG stream: a SplitMix64
/// round over the (master seed, tree index) pair. Deriving an independent
/// stream per tree — rather than drawing all bootstraps from one
/// sequential master RNG — is what makes parallel training bit-identical
/// to sequential. The mixing also decorrelates these streams from the
/// per-tree split-feature seeds (`seed + k + 1`).
fn bootstrap_seed(master: u64, k: u64) -> u64 {
    let mut z = master ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(k.wrapping_add(1));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A bootstrap-aggregated forest of CART trees.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    config: RandomForestConfig,
    trees: Vec<DecisionTree>,
    n_features: usize,
    n_classes: usize,
    importances: Vec<f64>,
    fitted: bool,
}

impl RandomForest {
    /// Create an untrained forest.
    #[must_use]
    pub fn new(config: RandomForestConfig) -> Self {
        RandomForest {
            config,
            trees: Vec::new(),
            n_features: 0,
            n_classes: 0,
            importances: Vec::new(),
            fitted: false,
        }
    }

    /// Averaged, normalized feature importances (empty before fitting).
    #[must_use]
    pub fn feature_importances(&self) -> &[f64] {
        &self.importances
    }

    /// Number of classes seen during training.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Per-class vote fractions for one sample.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Classifier::predict`].
    pub fn predict_proba(&self, x: &[f64]) -> Result<Vec<f64>, MlError> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        if x.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                got: x.len(),
            });
        }
        let mut votes = vec![0usize; self.n_classes];
        for t in &self.trees {
            votes[t.predict(x)?] += 1;
        }
        let n = self.trees.len() as f64;
        Ok(votes.into_iter().map(|v| v as f64 / n).collect())
    }

    /// Per-class vote fractions for a batch of samples, fanned across the
    /// configured worker threads (each sample is independent, so the
    /// output is identical to mapping [`RandomForest::predict_proba`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Classifier::predict`].
    pub fn predict_proba_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, MlError> {
        let _span = airfinger_obs::span!("ml_forest_predict_batch_seconds");
        let threads = effective_threads(Some(self.config.n_threads));
        par_map(xs, threads, |x| self.predict_proba(x))
            .into_iter()
            .collect()
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) -> Result<(), MlError> {
        let _span = airfinger_obs::span!("ml_forest_fit_seconds");
        let (n_features, n_classes) = validate_training_set(x, y)?;
        if self.config.n_trees == 0 {
            return Err(MlError::InvalidParameter {
                name: "n_trees",
                reason: "must be at least 1",
            });
        }
        self.n_features = n_features;
        self.n_classes = n_classes;
        let max_features = self
            .config
            .max_features
            .unwrap_or_else(|| ((n_features as f64).sqrt().round() as usize).max(1));
        let n = x.len();
        let config = self.config;
        let threads = effective_threads(Some(config.n_threads));
        let built = par_run(config.n_trees, threads, |k| {
            let tree_config = DecisionTreeConfig {
                max_depth: config.max_depth,
                min_samples_split: config.min_samples_split,
                min_samples_leaf: config.min_samples_leaf,
                max_features: Some(max_features),
                seed: config.seed.wrapping_add(k as u64 + 1),
            };
            let mut rng = StdRng::seed_from_u64(bootstrap_seed(config.seed, k as u64));
            let indices: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            let mut tree = DecisionTree::new(tree_config);
            tree.fit_indices(x, y, &indices).map(|()| tree)
        });
        self.trees = built.into_iter().collect::<Result<Vec<_>, _>>()?;
        airfinger_obs::counter!("ml_trees_trained_total").add(self.trees.len() as u64);
        // Average importances across trees.
        let mut acc = vec![0.0; n_features];
        for t in &self.trees {
            for (a, &v) in acc.iter_mut().zip(t.feature_importances()) {
                *a += v;
            }
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for v in &mut acc {
                *v /= total;
            }
        }
        self.importances = acc;
        self.fitted = true;
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> Result<usize, MlError> {
        let proba = self.predict_proba(x)?;
        Ok(proba
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0))
    }

    /// Batch prediction fanned across the configured worker threads.
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<usize>, MlError> {
        let _span = airfinger_obs::span!("ml_forest_predict_batch_seconds");
        let threads = effective_threads(Some(self.config.n_threads));
        par_map(xs, threads, |x| self.predict(x))
            .into_iter()
            .collect()
    }

    fn name(&self) -> &'static str {
        "RF"
    }
}

/// Rank feature indices by forest importance, highest first, and return the
/// top `k`. This is the paper's selection step: "we utilize feature
/// feedback from a random forest classifier to rank features by their
/// contributions … next, we select the top 25 features".
#[must_use]
pub fn top_k_features(importances: &[f64], k: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..importances.len()).collect();
    order.sort_by(|&a, &b| {
        importances[b]
            .partial_cmp(&importances[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    order.truncate(k);
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_blobs(seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for c in 0..3usize {
            for _ in 0..40 {
                let cx = c as f64 * 3.0;
                x.push(vec![
                    cx + rng.gen::<f64>() - 0.5,
                    -cx + rng.gen::<f64>() - 0.5,
                    rng.gen::<f64>(), // pure noise feature
                ]);
                y.push(c);
            }
        }
        (x, y)
    }

    #[test]
    fn learns_three_classes() {
        let (x, y) = noisy_blobs(1);
        let mut rf = RandomForest::new(RandomForestConfig {
            n_trees: 30,
            seed: 2,
            ..Default::default()
        });
        rf.fit(&x, &y).unwrap();
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| rf.predict(xi).unwrap() == yi)
            .count();
        assert!(correct as f64 / x.len() as f64 > 0.95);
        assert_eq!(rf.n_classes(), 3);
    }

    #[test]
    fn proba_sums_to_one() {
        let (x, y) = noisy_blobs(2);
        let mut rf = RandomForest::new(RandomForestConfig {
            n_trees: 15,
            seed: 0,
            ..Default::default()
        });
        rf.fit(&x, &y).unwrap();
        let p = rf.predict_proba(&x[0]).unwrap();
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noise_feature_ranks_last() {
        let (x, y) = noisy_blobs(3);
        let mut rf = RandomForest::new(RandomForestConfig {
            n_trees: 40,
            seed: 1,
            ..Default::default()
        });
        rf.fit(&x, &y).unwrap();
        let imp = rf.feature_importances();
        assert!(imp[2] < imp[0] && imp[2] < imp[1], "importances: {imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn top_k_orders_by_importance() {
        let imp = [0.1, 0.5, 0.05, 0.35];
        assert_eq!(top_k_features(&imp, 2), vec![1, 3]);
        assert_eq!(top_k_features(&imp, 10), vec![1, 3, 0, 2]);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = noisy_blobs(4);
        let train = |seed| {
            let mut rf = RandomForest::new(RandomForestConfig {
                n_trees: 10,
                seed,
                ..Default::default()
            });
            rf.fit(&x, &y).unwrap();
            x.iter()
                .map(|xi| rf.predict(xi).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(train(7), train(7));
    }

    #[test]
    fn thread_count_never_changes_the_model() {
        let (x, y) = noisy_blobs(6);
        let fit_with = |n_threads| {
            let mut rf = RandomForest::new(RandomForestConfig {
                n_trees: 12,
                seed: 9,
                n_threads,
                ..Default::default()
            });
            rf.fit(&x, &y).unwrap();
            rf
        };
        let base = fit_with(1);
        for threads in [2, 3, 8] {
            let other = fit_with(threads);
            assert_eq!(base.feature_importances(), other.feature_importances());
            assert_eq!(
                base.predict_batch(&x).unwrap(),
                other.predict_batch(&x).unwrap(),
                "threads = {threads}"
            );
            for xi in x.iter().take(5) {
                assert_eq!(
                    base.predict_proba(xi).unwrap(),
                    other.predict_proba(xi).unwrap()
                );
            }
        }
    }

    #[test]
    fn batch_prediction_matches_serial() {
        let (x, y) = noisy_blobs(7);
        let mut rf = RandomForest::new(RandomForestConfig {
            n_trees: 10,
            seed: 3,
            n_threads: 4,
            ..Default::default()
        });
        rf.fit(&x, &y).unwrap();
        let serial: Vec<usize> = x.iter().map(|xi| rf.predict(xi).unwrap()).collect();
        assert_eq!(rf.predict_batch(&x).unwrap(), serial);
        let probas = rf.predict_proba_batch(&x).unwrap();
        for (xi, p) in x.iter().zip(&probas) {
            assert_eq!(&rf.predict_proba(xi).unwrap(), p);
        }
    }

    #[test]
    fn zero_trees_rejected() {
        let (x, y) = noisy_blobs(5);
        let mut rf = RandomForest::new(RandomForestConfig {
            n_trees: 0,
            ..Default::default()
        });
        assert!(matches!(
            rf.fit(&x, &y),
            Err(MlError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn predict_before_fit_errors() {
        let rf = RandomForest::new(RandomForestConfig::default());
        assert_eq!(rf.predict(&[1.0]), Err(MlError::NotFitted));
    }

    #[test]
    fn single_class_dataset() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![0, 0, 0];
        let mut rf = RandomForest::new(RandomForestConfig {
            n_trees: 5,
            ..Default::default()
        });
        rf.fit(&x, &y).unwrap();
        assert_eq!(rf.predict(&[9.0]).unwrap(), 0);
    }
}
