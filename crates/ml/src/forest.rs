//! Random forest: bagged CART trees with majority voting and
//! mean-decrease-in-impurity feature importances.
//!
//! This is the paper's classifier of choice: "we apply an RF-based
//! classifier to recognize micro finger gestures because several works have
//! shown that RF can perform well … regarding accuracy, robustness, and
//! scalability", and its importance feedback is what selects the 25
//! Table-I features.

use crate::classifier::{validate_training_set, Classifier};
use crate::error::MlError;
use crate::tree::{DecisionTree, DecisionTreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Random-forest hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Depth limit per tree.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Features considered per split; `None` = `√n_features`.
    pub max_features: Option<usize>,
    /// Master RNG seed (per-tree seeds derive from it).
    pub seed: u64,
}

impl Default for RandomForestConfig {
    /// Paper-style defaults ("all these classifiers use default
    /// parameters"): 100 trees, √n features per split.
    fn default() -> Self {
        RandomForestConfig {
            n_trees: 100,
            max_depth: 24,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
            seed: 0,
        }
    }
}

/// A bootstrap-aggregated forest of CART trees.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    config: RandomForestConfig,
    trees: Vec<DecisionTree>,
    n_features: usize,
    n_classes: usize,
    importances: Vec<f64>,
    fitted: bool,
}

impl RandomForest {
    /// Create an untrained forest.
    #[must_use]
    pub fn new(config: RandomForestConfig) -> Self {
        RandomForest {
            config,
            trees: Vec::new(),
            n_features: 0,
            n_classes: 0,
            importances: Vec::new(),
            fitted: false,
        }
    }

    /// Averaged, normalized feature importances (empty before fitting).
    #[must_use]
    pub fn feature_importances(&self) -> &[f64] {
        &self.importances
    }

    /// Number of classes seen during training.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Per-class vote fractions for one sample.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Classifier::predict`].
    pub fn predict_proba(&self, x: &[f64]) -> Result<Vec<f64>, MlError> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        if x.len() != self.n_features {
            return Err(MlError::DimensionMismatch { expected: self.n_features, got: x.len() });
        }
        let mut votes = vec![0usize; self.n_classes];
        for t in &self.trees {
            votes[t.predict(x)?] += 1;
        }
        let n = self.trees.len() as f64;
        Ok(votes.into_iter().map(|v| v as f64 / n).collect())
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) -> Result<(), MlError> {
        let (n_features, n_classes) = validate_training_set(x, y)?;
        if self.config.n_trees == 0 {
            return Err(MlError::InvalidParameter {
                name: "n_trees",
                reason: "must be at least 1",
            });
        }
        self.n_features = n_features;
        self.n_classes = n_classes;
        let max_features = self
            .config
            .max_features
            .unwrap_or_else(|| ((n_features as f64).sqrt().round() as usize).max(1));
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        self.trees.clear();
        let n = x.len();
        for k in 0..self.config.n_trees {
            let tree_config = DecisionTreeConfig {
                max_depth: self.config.max_depth,
                min_samples_split: self.config.min_samples_split,
                min_samples_leaf: self.config.min_samples_leaf,
                max_features: Some(max_features),
                seed: self.config.seed.wrapping_add(k as u64 + 1),
            };
            let indices: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            let mut tree = DecisionTree::new(tree_config);
            tree.fit_indices(x, y, &indices)?;
            self.trees.push(tree);
        }
        // Average importances across trees.
        let mut acc = vec![0.0; n_features];
        for t in &self.trees {
            for (a, &v) in acc.iter_mut().zip(t.feature_importances()) {
                *a += v;
            }
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for v in &mut acc {
                *v /= total;
            }
        }
        self.importances = acc;
        self.fitted = true;
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> Result<usize, MlError> {
        let proba = self.predict_proba(x)?;
        Ok(proba
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0))
    }

    fn name(&self) -> &'static str {
        "RF"
    }
}

/// Rank feature indices by forest importance, highest first, and return the
/// top `k`. This is the paper's selection step: "we utilize feature
/// feedback from a random forest classifier to rank features by their
/// contributions … next, we select the top 25 features".
#[must_use]
pub fn top_k_features(importances: &[f64], k: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..importances.len()).collect();
    order.sort_by(|&a, &b| {
        importances[b]
            .partial_cmp(&importances[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    order.truncate(k);
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_blobs(seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for c in 0..3usize {
            for _ in 0..40 {
                let cx = c as f64 * 3.0;
                x.push(vec![
                    cx + rng.gen::<f64>() - 0.5,
                    -cx + rng.gen::<f64>() - 0.5,
                    rng.gen::<f64>(), // pure noise feature
                ]);
                y.push(c);
            }
        }
        (x, y)
    }

    #[test]
    fn learns_three_classes() {
        let (x, y) = noisy_blobs(1);
        let mut rf = RandomForest::new(RandomForestConfig { n_trees: 30, seed: 2, ..Default::default() });
        rf.fit(&x, &y).unwrap();
        let correct = x.iter().zip(&y).filter(|(xi, &yi)| rf.predict(xi).unwrap() == yi).count();
        assert!(correct as f64 / x.len() as f64 > 0.95);
        assert_eq!(rf.n_classes(), 3);
    }

    #[test]
    fn proba_sums_to_one() {
        let (x, y) = noisy_blobs(2);
        let mut rf = RandomForest::new(RandomForestConfig { n_trees: 15, seed: 0, ..Default::default() });
        rf.fit(&x, &y).unwrap();
        let p = rf.predict_proba(&x[0]).unwrap();
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noise_feature_ranks_last() {
        let (x, y) = noisy_blobs(3);
        let mut rf = RandomForest::new(RandomForestConfig { n_trees: 40, seed: 1, ..Default::default() });
        rf.fit(&x, &y).unwrap();
        let imp = rf.feature_importances();
        assert!(imp[2] < imp[0] && imp[2] < imp[1], "importances: {imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn top_k_orders_by_importance() {
        let imp = [0.1, 0.5, 0.05, 0.35];
        assert_eq!(top_k_features(&imp, 2), vec![1, 3]);
        assert_eq!(top_k_features(&imp, 10), vec![1, 3, 0, 2]);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = noisy_blobs(4);
        let train = |seed| {
            let mut rf =
                RandomForest::new(RandomForestConfig { n_trees: 10, seed, ..Default::default() });
            rf.fit(&x, &y).unwrap();
            x.iter().map(|xi| rf.predict(xi).unwrap()).collect::<Vec<_>>()
        };
        assert_eq!(train(7), train(7));
    }

    #[test]
    fn zero_trees_rejected() {
        let (x, y) = noisy_blobs(5);
        let mut rf = RandomForest::new(RandomForestConfig { n_trees: 0, ..Default::default() });
        assert!(matches!(rf.fit(&x, &y), Err(MlError::InvalidParameter { .. })));
    }

    #[test]
    fn predict_before_fit_errors() {
        let rf = RandomForest::new(RandomForestConfig::default());
        assert_eq!(rf.predict(&[1.0]), Err(MlError::NotFitted));
    }

    #[test]
    fn single_class_dataset() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![0, 0, 0];
        let mut rf = RandomForest::new(RandomForestConfig { n_trees: 5, ..Default::default() });
        rf.fit(&x, &y).unwrap();
        assert_eq!(rf.predict(&[9.0]).unwrap(), 0);
    }
}
