//! Dataset splitting: stratified train/test, stratified k-fold, and
//! leave-one-group-out.
//!
//! The paper's protocols map onto these directly:
//!
//! * Fig. 9 sweeps the *percentage of testing data* — [`train_test_split`];
//! * Fig. 10 runs five-fold cross-validation — [`stratified_k_fold`];
//! * Fig. 11 (individual diversity) trains on nine users and tests on the
//!   tenth — [`leave_one_group_out`] over user ids;
//! * Fig. 12 (gesture inconsistency) trains on four sessions and tests on
//!   the fifth — [`leave_one_group_out`] over session ids.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A train/test index split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Indices of training samples.
    pub train: Vec<usize>,
    /// Indices of test samples.
    pub test: Vec<usize>,
}

/// Stratified train/test split: each class contributes `test_fraction` of
/// its samples to the test set (rounded, at least one each side when the
/// class has two or more samples).
///
/// # Panics
///
/// Panics if `test_fraction` is outside `(0, 1)` or `y` is empty.
#[must_use]
pub fn train_test_split(y: &[usize], test_fraction: f64, seed: u64) -> Split {
    assert!(
        test_fraction > 0.0 && test_fraction < 1.0,
        "test fraction must be in (0, 1)"
    );
    assert!(!y.is_empty(), "labels must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut split = Split {
        train: Vec::new(),
        test: Vec::new(),
    };
    for class in class_indices(y) {
        let mut idx = class;
        idx.shuffle(&mut rng);
        let mut n_test = (idx.len() as f64 * test_fraction).round() as usize;
        if idx.len() >= 2 {
            n_test = n_test.clamp(1, idx.len() - 1);
        } else {
            n_test = 0; // a singleton class stays in training
        }
        split.test.extend_from_slice(&idx[..n_test]);
        split.train.extend_from_slice(&idx[n_test..]);
    }
    split.train.sort_unstable();
    split.test.sort_unstable();
    split
}

/// Stratified `k`-fold: each fold is a test set containing roughly `1/k` of
/// every class.
///
/// # Panics
///
/// Panics if `k < 2` or `y` is empty.
#[must_use]
pub fn stratified_k_fold(y: &[usize], k: usize, seed: u64) -> Vec<Split> {
    assert!(k >= 2, "k-fold needs k >= 2");
    assert!(!y.is_empty(), "labels must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fold_of = vec![0usize; y.len()];
    for class in class_indices(y) {
        let mut idx = class;
        idx.shuffle(&mut rng);
        for (pos, &i) in idx.iter().enumerate() {
            fold_of[i] = pos % k;
        }
    }
    (0..k)
        .map(|fold| {
            let mut s = Split {
                train: Vec::new(),
                test: Vec::new(),
            };
            for (i, &f) in fold_of.iter().enumerate() {
                if f == fold {
                    s.test.push(i);
                } else {
                    s.train.push(i);
                }
            }
            s
        })
        .collect()
}

/// Leave-one-group-out: one split per distinct group value, testing on that
/// group and training on the rest. Groups are returned in ascending order
/// of group id together with their splits.
///
/// # Panics
///
/// Panics if `groups` is empty.
#[must_use]
pub fn leave_one_group_out(groups: &[usize]) -> Vec<(usize, Split)> {
    assert!(!groups.is_empty(), "groups must be non-empty");
    let mut distinct: Vec<usize> = groups.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    distinct
        .into_iter()
        .map(|g| {
            let mut s = Split {
                train: Vec::new(),
                test: Vec::new(),
            };
            for (i, &gi) in groups.iter().enumerate() {
                if gi == g {
                    s.test.push(i);
                } else {
                    s.train.push(i);
                }
            }
            (g, s)
        })
        .collect()
}

/// Gather selected rows of a feature matrix and label vector.
#[must_use]
pub fn gather(x: &[Vec<f64>], y: &[usize], idx: &[usize]) -> (Vec<Vec<f64>>, Vec<usize>) {
    let xs = idx.iter().map(|&i| x[i].clone()).collect();
    let ys = idx.iter().map(|&i| y[i]).collect();
    (xs, ys)
}

/// Per-class index lists, ordered by class id.
fn class_indices(y: &[usize]) -> Vec<Vec<usize>> {
    let n_classes = y.iter().copied().max().unwrap_or(0) + 1;
    let mut out = vec![Vec::new(); n_classes];
    for (i, &c) in y.iter().enumerate() {
        out[c].push(i);
    }
    out.retain(|v| !v.is_empty());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> Vec<usize> {
        // 40 samples, 4 classes, 10 each.
        (0..40).map(|i| i % 4).collect()
    }

    #[test]
    fn split_is_a_partition() {
        let y = labels();
        let s = train_test_split(&y, 0.25, 1);
        let mut all: Vec<usize> = s.train.iter().chain(&s.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_stratified() {
        let y = labels();
        let s = train_test_split(&y, 0.3, 2);
        for c in 0..4 {
            let n_test = s.test.iter().filter(|&&i| y[i] == c).count();
            assert_eq!(n_test, 3, "class {c}");
        }
    }

    #[test]
    fn split_deterministic_per_seed() {
        let y = labels();
        assert_eq!(train_test_split(&y, 0.25, 9), train_test_split(&y, 0.25, 9));
        assert_ne!(
            train_test_split(&y, 0.25, 9),
            train_test_split(&y, 0.25, 10)
        );
    }

    #[test]
    fn singleton_class_stays_in_training() {
        let y = vec![0, 0, 0, 0, 1];
        let s = train_test_split(&y, 0.5, 3);
        assert!(s.train.contains(&4));
    }

    #[test]
    fn k_fold_covers_every_sample_once() {
        let y = labels();
        let folds = stratified_k_fold(&y, 5, 1);
        assert_eq!(folds.len(), 5);
        let mut seen = vec![0usize; y.len()];
        for f in &folds {
            for &i in &f.test {
                seen[i] += 1;
            }
            // Train/test partition per fold.
            assert_eq!(f.train.len() + f.test.len(), y.len());
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn k_fold_is_stratified() {
        let y = labels();
        let folds = stratified_k_fold(&y, 5, 4);
        for f in &folds {
            for c in 0..4 {
                let n = f.test.iter().filter(|&&i| y[i] == c).count();
                assert_eq!(n, 2, "each fold holds 2 of each class");
            }
        }
    }

    #[test]
    fn logo_one_split_per_group() {
        let groups = vec![0, 0, 1, 1, 2, 2, 2];
        let splits = leave_one_group_out(&groups);
        assert_eq!(splits.len(), 3);
        let (g, s) = &splits[2];
        assert_eq!(*g, 2);
        assert_eq!(s.test, vec![4, 5, 6]);
        assert_eq!(s.train, vec![0, 1, 2, 3]);
    }

    #[test]
    fn logo_with_sparse_group_ids() {
        let groups = vec![5, 9, 5, 9];
        let splits = leave_one_group_out(&groups);
        assert_eq!(splits.len(), 2);
        assert_eq!(splits[0].0, 5);
        assert_eq!(splits[1].0, 9);
    }

    #[test]
    fn gather_selects_rows() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![0, 1, 2];
        let (xs, ys) = gather(&x, &y, &[2, 0]);
        assert_eq!(xs, vec![vec![3.0], vec![1.0]]);
        assert_eq!(ys, vec![2, 0]);
    }

    #[test]
    #[should_panic(expected = "test fraction")]
    fn bad_fraction_panics() {
        let _ = train_test_split(&[0, 1], 1.5, 0);
    }

    #[test]
    #[should_panic(expected = "k-fold needs")]
    fn k_fold_k1_panics() {
        let _ = stratified_k_fold(&[0, 1], 1, 0);
    }
}
