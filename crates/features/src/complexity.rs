//! Complexity features: complexity-invariant distance, time-reversal
//! asymmetry statistic, c3 nonlinearity, energy ratio by chunks.

/// Complexity estimate of the CID measure (Batista et al. 2014): the root
/// sum of squared first differences — the "length of the stretched-out"
/// series. tsfresh exposes this as `cid_ce`.
#[must_use]
pub fn cid_ce(x: &[f64], normalize: bool) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let series: Vec<f64>;
    let data = if normalize {
        let m = airfinger_dsp::stats::mean(x);
        let s = airfinger_dsp::stats::std_dev(x);
        if s <= f64::EPSILON {
            return 0.0;
        }
        series = x.iter().map(|v| (v - m) / s).collect();
        &series[..]
    } else {
        x
    };
    data.windows(2)
        .map(|w| (w[1] - w[0]) * (w[1] - w[0]))
        .sum::<f64>()
        .sqrt()
}

/// Time-reversal asymmetry statistic at `lag` (Fulcher & Jones):
/// `E[x_{t+2l}²·x_{t+l} − x_{t+l}·x_t²]`.
#[must_use]
pub fn time_reversal_asymmetry(x: &[f64], lag: usize) -> f64 {
    let n = x.len();
    if lag == 0 || n < 2 * lag + 1 {
        return 0.0;
    }
    let terms = n - 2 * lag;
    (0..terms)
        .map(|t| x[t + 2 * lag] * x[t + 2 * lag] * x[t + lag] - x[t + lag] * x[t] * x[t])
        .sum::<f64>()
        / terms as f64
}

/// The c3 nonlinearity measure (Schreiber & Schmitz 1997):
/// `E[x_{t+2l}·x_{t+l}·x_t]`.
#[must_use]
pub fn c3(x: &[f64], lag: usize) -> f64 {
    let n = x.len();
    if lag == 0 || n < 2 * lag + 1 {
        return 0.0;
    }
    let terms = n - 2 * lag;
    (0..terms)
        .map(|t| x[t + 2 * lag] * x[t + lag] * x[t])
        .sum::<f64>()
        / terms as f64
}

/// Energy ratio by chunks: the series is cut into `n_chunks` equal pieces;
/// returns each chunk's share of total squared energy. A constant-energy
/// series yields equal shares; a front-loaded gesture concentrates early.
///
/// Returns all zeros when total energy vanishes.
#[must_use]
pub fn energy_ratio_by_chunks(x: &[f64], n_chunks: usize) -> Vec<f64> {
    if n_chunks == 0 {
        return Vec::new();
    }
    let mut out = vec![0.0; n_chunks];
    if x.is_empty() {
        return out;
    }
    let total: f64 = x.iter().map(|v| v * v).sum();
    if total <= 0.0 {
        return out;
    }
    let chunk_len = x.len().div_ceil(n_chunks);
    for (i, chunk) in x.chunks(chunk_len).enumerate() {
        out[i.min(n_chunks - 1)] += chunk.iter().map(|v| v * v).sum::<f64>() / total;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cid_zero_for_constant() {
        assert_eq!(cid_ce(&[4.0; 10], false), 0.0);
        assert_eq!(cid_ce(&[4.0; 10], true), 0.0);
    }

    #[test]
    fn cid_grows_with_complexity() {
        let smooth: Vec<f64> = (0..100).map(|i| (i as f64 * 0.05).sin()).collect();
        let wiggly: Vec<f64> = (0..100).map(|i| (i as f64 * 1.5).sin()).collect();
        assert!(cid_ce(&wiggly, false) > cid_ce(&smooth, false));
    }

    #[test]
    fn cid_known_value() {
        // diffs of [0,1,0] are [1,-1] → sqrt(2).
        assert!((cid_ce(&[0.0, 1.0, 0.0], false) - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn trev_zero_for_symmetric_series() {
        // A pure sine is time-reversible: statistic ≈ 0.
        let sine: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.1).sin()).collect();
        assert!(time_reversal_asymmetry(&sine, 1).abs() < 0.01);
    }

    #[test]
    fn trev_nonzero_for_sawtooth() {
        // Slow rise / fast fall is strongly time-asymmetric.
        let saw: Vec<f64> = (0..300).map(|i| (i % 10) as f64).collect();
        assert!(time_reversal_asymmetry(&saw, 1).abs() > 1.0);
    }

    #[test]
    fn c3_of_zero_mean_noise_is_small() {
        let noise: Vec<f64> = (0..2000)
            .map(|i| {
                let mut z = (i as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z ^= z >> 29;
                ((z >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            })
            .collect();
        assert!(c3(&noise, 1).abs() < 0.01);
    }

    #[test]
    fn c3_positive_for_positive_series() {
        let x = vec![2.0; 50];
        assert!((c3(&x, 1) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn energy_ratio_sums_to_one() {
        let x: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let r = energy_ratio_by_chunks(&x, 4);
        assert_eq!(r.len(), 4);
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Energy is back-loaded for an increasing series.
        assert!(r[3] > r[0]);
    }

    #[test]
    fn energy_ratio_front_loaded_burst() {
        let mut x = vec![0.0; 40];
        for v in x.iter_mut().take(10) {
            *v = 5.0;
        }
        let r = energy_ratio_by_chunks(&x, 4);
        assert!((r[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_ratio_zero_series() {
        let r = energy_ratio_by_chunks(&[0.0; 10], 4);
        assert!(r.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(time_reversal_asymmetry(&[1.0, 2.0], 1), 0.0);
        assert_eq!(c3(&[1.0], 1), 0.0);
        assert!(energy_ratio_by_chunks(&[], 3).iter().all(|&v| v == 0.0));
        assert!(energy_ratio_by_chunks(&[1.0], 0).is_empty());
    }
}
