//! Frequency-domain features: FFT coefficients and CWT coefficients —
//! the two Table-I "Frequency Domain" families.

use airfinger_dsp::fft::magnitude_spectrum;
use airfinger_dsp::wavelet::cwt_row;

/// First `k` non-DC FFT magnitude coefficients, normalized by total
/// spectral energy so they are amplitude-invariant. Zero-padded when the
/// spectrum is shorter than `k`.
#[must_use]
pub fn fft_coefficients(x: &[f64], k: usize) -> Vec<f64> {
    let mut out = vec![0.0; k];
    if x.len() < 2 || k == 0 {
        return out;
    }
    let mags = magnitude_spectrum(x);
    let total: f64 = mags.iter().skip(1).sum();
    if total <= 0.0 {
        return out;
    }
    for (o, &m) in out.iter_mut().zip(mags.iter().skip(1)) {
        *o = m / total;
    }
    out
}

/// CWT features: for each Ricker width in `widths`, the root-mean-square of
/// the CWT row (scale energy) and the relative position of its absolute
/// peak. `2 · widths.len()` values.
#[must_use]
pub fn cwt_coefficients(x: &[f64], widths: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(2 * widths.len());
    for &a in widths {
        if x.is_empty() {
            out.push(0.0);
            out.push(0.0);
            continue;
        }
        let row = cwt_row(x, a);
        let energy = (row.iter().map(|v| v * v).sum::<f64>() / row.len() as f64).sqrt();
        let peak_idx = row
            .iter()
            .enumerate()
            .max_by(|l, r| {
                l.1.abs()
                    .partial_cmp(&r.1.abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
            .unwrap_or(0);
        out.push(energy);
        out.push(peak_idx as f64 / row.len() as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_coefficients_normalized() {
        let x: Vec<f64> = (0..128).map(|i| (i as f64 * 0.4).sin()).collect();
        let c = fft_coefficients(&x, 8);
        assert_eq!(c.len(), 8);
        assert!(c.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn fft_amplitude_invariance() {
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.4).sin()).collect();
        let x10: Vec<f64> = x.iter().map(|v| v * 10.0).collect();
        let a = fft_coefficients(&x, 6);
        let b = fft_coefficients(&x10, 6);
        for (u, v) in a.iter().zip(&b) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_distinguishes_frequencies() {
        let slow: Vec<f64> = (0..128)
            .map(|i| (2.0 * std::f64::consts::PI * 2.0 * i as f64 / 128.0).sin())
            .collect();
        let fast: Vec<f64> = (0..128)
            .map(|i| (2.0 * std::f64::consts::PI * 8.0 * i as f64 / 128.0).sin())
            .collect();
        let cs = fft_coefficients(&slow, 10);
        let cf = fft_coefficients(&fast, 10);
        assert!(cs[1] > cf[1]); // bin 2 dominates the slow tone
        assert!(cf[7] > cs[7]); // bin 8 dominates the fast tone
    }

    #[test]
    fn fft_zero_input_is_zero() {
        assert!(fft_coefficients(&[0.0; 32], 5).iter().all(|&v| v == 0.0));
        assert!(fft_coefficients(&[], 5).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn cwt_length_and_range() {
        let x: Vec<f64> = (0..100).map(|i| (i as f64 * 0.2).sin()).collect();
        let c = cwt_coefficients(&x, &[2.0, 5.0, 10.0]);
        assert_eq!(c.len(), 6);
        // Peak positions are relative.
        for pos in [c[1], c[3], c[5]] {
            assert!((0.0..=1.0).contains(&pos));
        }
    }

    #[test]
    fn cwt_scale_selectivity() {
        // A narrow bump has more energy at small widths relative to a wide
        // bump.
        let narrow: Vec<f64> = (0..100)
            .map(|i| {
                let t = (i as f64 - 50.0) / 2.0;
                (-t * t / 2.0).exp()
            })
            .collect();
        let wide: Vec<f64> = (0..100)
            .map(|i| {
                let t = (i as f64 - 50.0) / 12.0;
                (-t * t / 2.0).exp()
            })
            .collect();
        let cn = cwt_coefficients(&narrow, &[2.0, 12.0]);
        let cw = cwt_coefficients(&wide, &[2.0, 12.0]);
        // Ratio of small-scale to large-scale energy is higher for narrow.
        let rn = cn[0] / cn[2].max(1e-12);
        let rw = cw[0] / cw[2].max(1e-12);
        assert!(rn > rw, "narrow {rn} vs wide {rw}");
    }

    #[test]
    fn cwt_empty_input() {
        let c = cwt_coefficients(&[], &[2.0, 5.0]);
        assert_eq!(c, vec![0.0; 4]);
    }
}
