//! Location- and count-based features: count above/below mean, first/last
//! locations of extrema, longest strikes, number of peaks.
//!
//! Locations are reported as *relative* positions in `[0, 1]` (tsfresh
//! convention), which makes them invariant to gesture duration — one of the
//! properties the paper needs against gesture inconsistency.

use airfinger_dsp::stats::mean;

/// Fraction of samples strictly above the mean.
#[must_use]
pub fn count_above_mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let m = mean(x);
    x.iter().filter(|&&v| v > m).count() as f64 / x.len() as f64
}

/// Fraction of samples strictly below the mean.
#[must_use]
pub fn count_below_mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let m = mean(x);
    x.iter().filter(|&&v| v < m).count() as f64 / x.len() as f64
}

/// Relative position of the first occurrence of the maximum.
#[must_use]
pub fn first_location_of_maximum(x: &[f64]) -> f64 {
    relative_position(x, true, true)
}

/// Relative position of the last occurrence of the maximum.
#[must_use]
pub fn last_location_of_maximum(x: &[f64]) -> f64 {
    relative_position(x, true, false)
}

/// Relative position of the first occurrence of the minimum.
#[must_use]
pub fn first_location_of_minimum(x: &[f64]) -> f64 {
    relative_position(x, false, true)
}

fn relative_position(x: &[f64], maximum: bool, first: bool) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let mut best_idx = 0usize;
    let mut best = x[0];
    for (i, &v) in x.iter().enumerate() {
        let better = if maximum { v > best } else { v < best };
        let tie = v == best && !first;
        if better || tie {
            best = v;
            best_idx = i;
        }
    }
    best_idx as f64 / x.len() as f64
}

/// Longest run of consecutive samples above the mean, relative to length.
#[must_use]
pub fn longest_strike_above_mean(x: &[f64]) -> f64 {
    longest_strike(x, true)
}

/// Longest run of consecutive samples below the mean, relative to length.
#[must_use]
pub fn longest_strike_below_mean(x: &[f64]) -> f64 {
    longest_strike(x, false)
}

fn longest_strike(x: &[f64], above: bool) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let m = mean(x);
    let mut best = 0usize;
    let mut run = 0usize;
    for &v in x {
        let hit = if above { v > m } else { v < m };
        if hit {
            run += 1;
            best = best.max(run);
        } else {
            run = 0;
        }
    }
    best as f64 / x.len() as f64
}

/// Number of peaks of support `support`: samples larger than their
/// `support` neighbours on both sides (tsfresh `number_peaks`).
#[must_use]
pub fn number_of_peaks(x: &[f64], support: usize) -> f64 {
    if x.len() < 2 * support + 1 || support == 0 {
        return 0.0;
    }
    let mut count = 0usize;
    for i in support..x.len() - support {
        let v = x[i];
        let is_peak = (1..=support).all(|k| v > x[i - k] && v > x[i + k]);
        if is_peak {
            count += 1;
        }
    }
    count as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_balance_for_symmetric_series() {
        let x = [1.0, 2.0, 3.0, 4.0]; // mean 2.5
        assert_eq!(count_above_mean(&x), 0.5);
        assert_eq!(count_below_mean(&x), 0.5);
    }

    #[test]
    fn counts_zero_for_constant() {
        let x = [5.0; 8];
        assert_eq!(count_above_mean(&x), 0.0);
        assert_eq!(count_below_mean(&x), 0.0);
    }

    #[test]
    fn locations_of_extrema() {
        let x = [0.0, 5.0, 1.0, 5.0, -2.0];
        assert_eq!(first_location_of_maximum(&x), 1.0 / 5.0);
        assert_eq!(last_location_of_maximum(&x), 3.0 / 5.0);
        assert_eq!(first_location_of_minimum(&x), 4.0 / 5.0);
    }

    #[test]
    fn locations_scale_invariant_to_duration() {
        // Same shape, doubled length → same relative location.
        let short = [0.0, 1.0, 0.0, 0.0];
        let long = [0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0];
        assert!(
            (first_location_of_maximum(&short) - first_location_of_maximum(&long)).abs() < 0.01
        );
    }

    #[test]
    fn strikes() {
        let x = [0.0, 10.0, 10.0, 10.0, 0.0, 10.0]; // mean = 6.67
        assert!((longest_strike_above_mean(&x) - 3.0 / 6.0).abs() < 1e-12);
        assert!((longest_strike_below_mean(&x) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn strike_full_run() {
        let x = [0.0, 0.0, 0.0, 100.0]; // three below-mean then one above
        assert!((longest_strike_below_mean(&x) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn peaks_counted_with_support() {
        let x = [0.0, 1.0, 0.0, 2.0, 0.0, 3.0, 0.0];
        assert_eq!(number_of_peaks(&x, 1), 3.0);
        // Support 2 needs both neighbours at distance 1 AND 2 lower; the
        // middle peak (2.0) has a higher value (3.0) two steps away.
        assert_eq!(number_of_peaks(&x, 2), 0.0);
        // An isolated wide peak satisfies support 2.
        let y = [0.0, 1.0, 5.0, 1.0, 0.0];
        assert_eq!(number_of_peaks(&y, 2), 1.0);
    }

    #[test]
    fn peaks_none_on_monotone() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(number_of_peaks(&x, 1), 0.0);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(count_above_mean(&[]), 0.0);
        assert_eq!(first_location_of_maximum(&[]), 0.0);
        assert_eq!(longest_strike_above_mean(&[]), 0.0);
        assert_eq!(number_of_peaks(&[], 1), 0.0);
    }
}
