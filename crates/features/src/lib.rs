//! tsfresh-style time-series feature bank for airFinger.
//!
//! The paper extracts "a large number of candidate features" with the
//! tsfresh toolbox, ranks them by random-forest importance feedback, and
//! keeps the **25 feature kinds of Table I**. This crate implements those
//! 25 kinds from scratch on top of `airfinger-dsp`, plus the bold
//! **9-kind subset** Table I marks for the gesture/non-gesture filter of
//! §IV-F.
//!
//! A *kind* can emit several scalars (e.g. `AR` emits four coefficients);
//! [`FeatureExtractor`] concatenates every scalar of every configured kind,
//! and [`FeatureExtractor::extract_multi`] concatenates across photodiode
//! channels, producing the final feature vector fed to the classifiers.
//!
//! # Example
//!
//! ```
//! use airfinger_features::FeatureExtractor;
//!
//! let extractor = FeatureExtractor::table1();
//! let segment: Vec<f64> = (0..120).map(|i| (i as f64 * 0.2).sin().abs()).collect();
//! let vector = extractor.extract(&segment);
//! assert_eq!(vector.len(), extractor.len());
//! assert!(vector.iter().all(|v| v.is_finite()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complexity;
pub mod entropy;
pub mod freq;
pub mod location;

use airfinger_dsp::ar::{adf_stat, ar_coefficients, partial_autocorrelation};
use airfinger_dsp::stats;
use serde::{Deserialize, Serialize};

/// Fixed feature parameters (kept in one place so names and values agree).
mod params {
    /// Autocorrelation lags.
    pub(crate) const ACF_LAGS: [usize; 5] = [1, 2, 3, 5, 8];
    /// Partial-autocorrelation lags.
    pub(crate) const PACF_LAGS: usize = 3;
    /// AR model order.
    pub(crate) const AR_ORDER: usize = 4;
    /// Quantile levels.
    pub(crate) const QUANTILES: [f64; 4] = [0.1, 0.25, 0.75, 0.9];
    /// Peak support.
    pub(crate) const PEAK_SUPPORT: usize = 3;
    /// Entropy embedding dimension.
    pub(crate) const ENTROPY_M: usize = 2;
    /// Entropy tolerance factor (× σ).
    pub(crate) const ENTROPY_R: f64 = 0.2;
    /// Energy-ratio chunk count.
    pub(crate) const ENERGY_CHUNKS: usize = 4;
    /// Number of FFT coefficients.
    pub(crate) const FFT_K: usize = 8;
    /// CWT Ricker widths.
    pub(crate) const CWT_WIDTHS: [f64; 3] = [2.0, 5.0, 10.0];
    /// ADF lag order.
    pub(crate) const ADF_LAGS: usize = 1;
    /// Time-reversal-asymmetry / c3 lag.
    pub(crate) const NONLIN_LAG: usize = 1;
}

/// The 25 feature kinds of Table I.
///
/// Kinds that the table lists as a pair ("Count below/above mean",
/// "First location of minimum/maximum", "Longest strike above/below mean")
/// are one kind emitting two scalars, matching the paper's count of 25.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FeatureKind {
    /// Standard deviation.
    StandardDeviation,
    /// Variance.
    Variance,
    /// Fraction of samples below / above the mean (2 scalars).
    CountBelowAboveMean,
    /// Relative position of the last maximum.
    LastLocationOfMaximum,
    /// Partial autocorrelation at lags 1..=3 (3 scalars).
    PartialAutocorrelation,
    /// Relative positions of the first minimum and first maximum (2).
    FirstLocationOfMinMax,
    /// Sample entropy (m = 2, r = 0.2 σ).
    SampleEntropy,
    /// Longest strike above / below the mean (2 scalars).
    LongestStrikeAboveBelowMean,
    /// Excess kurtosis.
    Kurtosis,
    /// Yule–Walker AR(4) coefficients (4 scalars).
    Ar,
    /// Autocorrelation at lags {1, 2, 3, 5, 8} (5 scalars).
    Autocorrelation,
    /// Number of peaks with support 3.
    NumberOfPeaks,
    /// Quantiles at {0.1, 0.25, 0.75, 0.9} (4 scalars).
    Quantile,
    /// Complexity-invariant distance (normalized `cid_ce`).
    ComplexityInvariantDistance,
    /// Mean absolute change.
    MeanAbsoluteChange,
    /// Time-reversal asymmetry statistic at lag 1.
    TimeReversalAsymmetry,
    /// Absolute energy (sum of squares).
    AbsoluteEnergy,
    /// Energy ratio by 4 chunks (4 scalars).
    EnergyRatioByChunks,
    /// Approximate entropy (m = 2, r = 0.2 σ).
    ApproximateEntropy,
    /// Series length in samples.
    Length,
    /// Linear trend: slope and Pearson r (2 scalars).
    LinearTrend,
    /// Augmented Dickey–Fuller t-statistic.
    AugmentedDickeyFuller,
    /// The c3 nonlinearity measure at lag 1.
    C3,
    /// First 8 normalized FFT magnitude coefficients (8 scalars).
    Fft,
    /// CWT energy + peak position at Ricker widths {2, 5, 10} (6 scalars).
    Cwt,
    // ---- candidate kinds beyond Table I (used by the §IV-C1 selection
    // workflow; *not* part of the selected 25) ----
    /// Arithmetic mean.
    Mean,
    /// Third standardized moment.
    Skewness,
    /// Median.
    Median,
    /// Root mean square.
    RootMeanSquare,
    /// Maximum absolute value.
    MaximumAbsolute,
    /// Mean of the second differences (curvature proxy).
    MeanSecondDerivative,
}

impl FeatureKind {
    /// All 25 Table-I kinds, in table order.
    #[must_use]
    pub fn table1() -> Vec<FeatureKind> {
        use FeatureKind::*;
        vec![
            StandardDeviation,
            Variance,
            CountBelowAboveMean,
            LastLocationOfMaximum,
            PartialAutocorrelation,
            FirstLocationOfMinMax,
            SampleEntropy,
            LongestStrikeAboveBelowMean,
            Kurtosis,
            Ar,
            Autocorrelation,
            NumberOfPeaks,
            Quantile,
            ComplexityInvariantDistance,
            MeanAbsoluteChange,
            TimeReversalAsymmetry,
            AbsoluteEnergy,
            EnergyRatioByChunks,
            ApproximateEntropy,
            Length,
            LinearTrend,
            AugmentedDickeyFuller,
            C3,
            Fft,
            Cwt,
        ]
    }

    /// The candidate pool the §IV-C1 selection starts from: every Table-I
    /// kind plus the extra kinds a toolbox like tsfresh would also offer.
    /// The paper "extract\[s\] a large number of candidate features" and
    /// keeps the 25 most important; `repro selection` reruns that
    /// workflow over this pool.
    #[must_use]
    pub fn candidates() -> Vec<FeatureKind> {
        let mut all = FeatureKind::table1();
        all.extend([
            FeatureKind::Mean,
            FeatureKind::Skewness,
            FeatureKind::Median,
            FeatureKind::RootMeanSquare,
            FeatureKind::MaximumAbsolute,
            FeatureKind::MeanSecondDerivative,
        ]);
        all
    }

    /// The 9 bold kinds used by the §IV-F gesture/non-gesture filter.
    ///
    /// Table I bolds a subset but the paper never enumerates it; we pick
    /// the nine whose importance ranks highest on the synthetic corpus —
    /// shape and energy statistics that respond to "is this a deliberate,
    /// structured motion" rather than to which gesture it is.
    #[must_use]
    pub fn nongesture9() -> Vec<FeatureKind> {
        use FeatureKind::*;
        vec![
            StandardDeviation,
            Variance,
            NumberOfPeaks,
            AbsoluteEnergy,
            Length,
            MeanAbsoluteChange,
            LinearTrend,
            EnergyRatioByChunks,
            SampleEntropy,
        ]
    }

    /// Number of scalars this kind emits.
    #[must_use]
    pub fn arity(&self) -> usize {
        use FeatureKind::*;
        match self {
            StandardDeviation
            | Variance
            | LastLocationOfMaximum
            | SampleEntropy
            | Kurtosis
            | NumberOfPeaks
            | ComplexityInvariantDistance
            | MeanAbsoluteChange
            | TimeReversalAsymmetry
            | AbsoluteEnergy
            | ApproximateEntropy
            | Length
            | AugmentedDickeyFuller
            | C3
            | Mean
            | Skewness
            | Median
            | RootMeanSquare
            | MaximumAbsolute
            | MeanSecondDerivative => 1,
            CountBelowAboveMean
            | FirstLocationOfMinMax
            | LongestStrikeAboveBelowMean
            | LinearTrend => 2,
            PartialAutocorrelation => params::PACF_LAGS,
            Ar => params::AR_ORDER,
            Autocorrelation => params::ACF_LAGS.len(),
            Quantile => params::QUANTILES.len(),
            EnergyRatioByChunks => params::ENERGY_CHUNKS,
            Fft => params::FFT_K,
            Cwt => 2 * params::CWT_WIDTHS.len(),
        }
    }

    /// Compute this kind's scalars for `x`. Always returns exactly
    /// [`FeatureKind::arity`] finite values; degenerate inputs (short,
    /// constant) produce zeros rather than errors.
    #[must_use]
    pub fn values(&self, x: &[f64]) -> Vec<f64> {
        use FeatureKind::*;
        let v = match self {
            StandardDeviation => vec![stats::std_dev(x)],
            Variance => vec![stats::variance(x)],
            CountBelowAboveMean => {
                vec![location::count_below_mean(x), location::count_above_mean(x)]
            }
            LastLocationOfMaximum => vec![location::last_location_of_maximum(x)],
            PartialAutocorrelation => match partial_autocorrelation(x, params::PACF_LAGS) {
                Ok(p) => p[1..].to_vec(),
                Err(_) => vec![0.0; params::PACF_LAGS],
            },
            FirstLocationOfMinMax => vec![
                location::first_location_of_minimum(x),
                location::first_location_of_maximum(x),
            ],
            SampleEntropy => {
                vec![entropy::sample_entropy(
                    x,
                    params::ENTROPY_M,
                    params::ENTROPY_R,
                )]
            }
            LongestStrikeAboveBelowMean => vec![
                location::longest_strike_above_mean(x),
                location::longest_strike_below_mean(x),
            ],
            Kurtosis => vec![stats::kurtosis(x)],
            Ar => match ar_coefficients(x, params::AR_ORDER) {
                Ok(c) => c,
                Err(_) => vec![0.0; params::AR_ORDER],
            },
            Autocorrelation => params::ACF_LAGS
                .iter()
                .map(|&l| stats::autocorrelation(x, l))
                .collect(),
            NumberOfPeaks => vec![location::number_of_peaks(x, params::PEAK_SUPPORT)],
            Quantile => params::QUANTILES
                .iter()
                .map(|&q| stats::quantile(x, q).unwrap_or(0.0))
                .collect(),
            ComplexityInvariantDistance => vec![complexity::cid_ce(x, true)],
            MeanAbsoluteChange => vec![stats::mean_abs_change(x)],
            TimeReversalAsymmetry => {
                vec![complexity::time_reversal_asymmetry(x, params::NONLIN_LAG)]
            }
            AbsoluteEnergy => vec![stats::abs_energy(x)],
            EnergyRatioByChunks => complexity::energy_ratio_by_chunks(x, params::ENERGY_CHUNKS),
            ApproximateEntropy => {
                vec![entropy::approximate_entropy(
                    x,
                    params::ENTROPY_M,
                    params::ENTROPY_R,
                )]
            }
            Length => vec![x.len() as f64],
            LinearTrend => match stats::linear_fit(x) {
                Ok(f) => vec![f.slope, f.r_value],
                Err(_) => vec![0.0, 0.0],
            },
            AugmentedDickeyFuller => vec![adf_stat(x, params::ADF_LAGS).unwrap_or(0.0)],
            C3 => vec![complexity::c3(x, params::NONLIN_LAG)],
            Fft => freq::fft_coefficients(x, params::FFT_K),
            Cwt => freq::cwt_coefficients(x, &params::CWT_WIDTHS),
            Mean => vec![stats::mean(x)],
            Skewness => vec![stats::skewness(x)],
            Median => vec![stats::median(x)],
            RootMeanSquare => {
                vec![if x.is_empty() {
                    0.0
                } else {
                    (stats::abs_energy(x) / x.len() as f64).sqrt()
                }]
            }
            MaximumAbsolute => {
                vec![x.iter().fold(0.0f64, |m, &v| m.max(v.abs()))]
            }
            MeanSecondDerivative => {
                if x.len() < 3 {
                    vec![0.0]
                } else {
                    vec![
                        x.windows(3).map(|w| w[2] - 2.0 * w[1] + w[0]).sum::<f64>()
                            / (x.len() - 2) as f64,
                    ]
                }
            }
        };
        debug_assert_eq!(v.len(), self.arity(), "{self:?} arity mismatch");
        // Guarantee finiteness regardless of input pathology.
        v.into_iter()
            .map(|f| if f.is_finite() { f } else { 0.0 })
            .collect()
    }

    /// Scalar names emitted by this kind (for importance reports).
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        use FeatureKind::*;
        match self {
            CountBelowAboveMean => vec!["count_below_mean".into(), "count_above_mean".into()],
            FirstLocationOfMinMax => {
                vec![
                    "first_location_of_minimum".into(),
                    "first_location_of_maximum".into(),
                ]
            }
            LongestStrikeAboveBelowMean => {
                vec![
                    "longest_strike_above_mean".into(),
                    "longest_strike_below_mean".into(),
                ]
            }
            PartialAutocorrelation => (1..=params::PACF_LAGS)
                .map(|l| format!("pacf_lag{l}"))
                .collect(),
            Ar => (1..=params::AR_ORDER)
                .map(|k| format!("ar_coeff{k}"))
                .collect(),
            Autocorrelation => params::ACF_LAGS
                .iter()
                .map(|l| format!("acf_lag{l}"))
                .collect(),
            Quantile => params::QUANTILES
                .iter()
                .map(|q| format!("quantile_{q}"))
                .collect(),
            EnergyRatioByChunks => (0..params::ENERGY_CHUNKS)
                .map(|c| format!("energy_ratio_chunk{c}"))
                .collect(),
            LinearTrend => vec!["linear_trend_slope".into(), "linear_trend_r".into()],
            Fft => (1..=params::FFT_K)
                .map(|b| format!("fft_coeff{b}"))
                .collect(),
            Cwt => params::CWT_WIDTHS
                .iter()
                .flat_map(|w| vec![format!("cwt_energy_w{w}"), format!("cwt_peakpos_w{w}")])
                .collect(),
            other => vec![format!("{other:?}")
                .chars()
                .flat_map(|c| {
                    if c.is_uppercase() {
                        vec!['_', c.to_ascii_lowercase()]
                    } else {
                        vec![c]
                    }
                })
                .collect::<String>()
                .trim_start_matches('_')
                .to_string()],
        }
    }
}

/// Extracts a flat feature vector from one or more series.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureExtractor {
    kinds: Vec<FeatureKind>,
}

impl FeatureExtractor {
    /// Extractor over an explicit list of kinds.
    ///
    /// # Panics
    ///
    /// Panics if `kinds` is empty.
    #[must_use]
    pub fn new(kinds: Vec<FeatureKind>) -> Self {
        assert!(!kinds.is_empty(), "need at least one feature kind");
        FeatureExtractor { kinds }
    }

    /// The full 25-kind Table-I extractor.
    #[must_use]
    pub fn table1() -> Self {
        FeatureExtractor::new(FeatureKind::table1())
    }

    /// The 9-kind non-gesture-filter extractor.
    #[must_use]
    pub fn nongesture9() -> Self {
        FeatureExtractor::new(FeatureKind::nongesture9())
    }

    /// Configured kinds.
    #[must_use]
    pub fn kinds(&self) -> &[FeatureKind] {
        &self.kinds
    }

    /// Number of scalars produced per channel.
    #[must_use]
    pub fn len(&self) -> usize {
        self.kinds.iter().map(FeatureKind::arity).sum()
    }

    /// Whether the extractor produces no features (never true — the
    /// constructor requires at least one kind).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extract the feature vector of a single series.
    #[must_use]
    pub fn extract(&self, x: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len());
        for k in &self.kinds {
            out.extend(k.values(x));
        }
        out
    }

    /// Extract and concatenate features of several channels (per-channel
    /// vectors in channel order). Length = `len() * channels.len()`.
    #[must_use]
    pub fn extract_multi(&self, channels: &[Vec<f64>]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len() * channels.len());
        for c in channels {
            out.extend(self.extract(c));
        }
        out
    }

    /// Scalar names per channel, in extraction order.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.kinds.iter().flat_map(FeatureKind::names).collect()
    }

    /// For every scalar of one channel's extraction, the index (into
    /// [`FeatureExtractor::kinds`]) of the kind that produced it — the
    /// mapping the §IV-C1 selection uses to aggregate scalar importances
    /// back to feature *kinds*.
    #[must_use]
    pub fn scalar_owners(&self) -> Vec<usize> {
        self.kinds
            .iter()
            .enumerate()
            .flat_map(|(i, k)| std::iter::repeat_n(i, k.arity()))
            .collect()
    }

    /// Scalar names for a multi-channel extraction, prefixed `p{ch}_`.
    #[must_use]
    pub fn names_multi(&self, channel_count: usize) -> Vec<String> {
        (0..channel_count)
            .flat_map(|ch| self.names().into_iter().map(move |n| format!("p{ch}_{n}")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gesture_like(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                (2.0 * std::f64::consts::PI * 3.0 * t).sin().abs() * (1.0 - (2.0 * t - 1.0).abs())
            })
            .collect()
    }

    #[test]
    fn table1_has_25_kinds() {
        assert_eq!(FeatureKind::table1().len(), 25);
    }

    #[test]
    fn candidates_extend_table1() {
        let c = FeatureKind::candidates();
        assert_eq!(c.len(), 31);
        for k in FeatureKind::table1() {
            assert!(c.contains(&k));
        }
        assert!(c.contains(&FeatureKind::Skewness));
    }

    #[test]
    fn candidate_kinds_compute_and_name() {
        let x = gesture_like(100);
        for k in FeatureKind::candidates() {
            assert_eq!(k.values(&x).len(), k.arity(), "{k:?}");
            assert_eq!(k.names().len(), k.arity(), "{k:?}");
            assert!(k.values(&x).iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn scalar_owners_align_with_layout() {
        let e = FeatureExtractor::new(FeatureKind::candidates());
        let owners = e.scalar_owners();
        assert_eq!(owners.len(), e.len());
        // Owners are non-decreasing and cover every kind.
        assert!(owners.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*owners.last().unwrap(), e.kinds().len() - 1);
    }

    #[test]
    fn nongesture_has_9_kinds_all_in_table1() {
        let nine = FeatureKind::nongesture9();
        assert_eq!(nine.len(), 9);
        let all = FeatureKind::table1();
        assert!(nine.iter().all(|k| all.contains(k)));
    }

    #[test]
    fn arity_matches_values_len() {
        let x = gesture_like(150);
        for k in FeatureKind::table1() {
            assert_eq!(k.values(&x).len(), k.arity(), "{k:?}");
        }
    }

    #[test]
    fn names_match_arity() {
        for k in FeatureKind::table1() {
            assert_eq!(k.names().len(), k.arity(), "{k:?}");
        }
    }

    #[test]
    fn extractor_len_consistent() {
        let e = FeatureExtractor::table1();
        let x = gesture_like(120);
        assert_eq!(e.extract(&x).len(), e.len());
        assert_eq!(e.names().len(), e.len());
    }

    #[test]
    fn all_values_finite_on_degenerate_inputs() {
        let e = FeatureExtractor::table1();
        for input in [
            vec![],
            vec![1.0],
            vec![5.0; 3],
            vec![5.0; 200],
            gesture_like(7),
        ] {
            let v = e.extract(&input);
            assert_eq!(v.len(), e.len());
            assert!(v.iter().all(|f| f.is_finite()), "input len {}", input.len());
        }
    }

    #[test]
    fn multi_channel_concatenates() {
        let e = FeatureExtractor::nongesture9();
        let c1 = gesture_like(100);
        let c2: Vec<f64> = c1.iter().map(|v| v * 2.0).collect();
        let v = e.extract_multi(&[c1.clone(), c2]);
        assert_eq!(v.len(), 2 * e.len());
        assert_eq!(&v[..e.len()], &e.extract(&c1)[..]);
    }

    #[test]
    fn names_multi_prefixes_channels() {
        let e = FeatureExtractor::nongesture9();
        let names = e.names_multi(3);
        assert_eq!(names.len(), 3 * e.len());
        assert!(names[0].starts_with("p0_"));
        assert!(names[names.len() - 1].starts_with("p2_"));
    }

    #[test]
    fn features_discriminate_single_vs_double() {
        // A single bump vs two bumps must differ in peak count and energy
        // distribution — the circle vs double-circle cue.
        let single = gesture_like(160);
        let mut double: Vec<f64> = gesture_like(80);
        double.extend(gesture_like(80));
        let e = FeatureExtractor::table1();
        let vs = e.extract(&single);
        let vd = e.extract(&double);
        let diff: f64 = vs
            .iter()
            .zip(&vd)
            .map(|(a, b)| (a - b).abs() / (a.abs() + b.abs() + 1e-9))
            .sum();
        assert!(diff > 1.0, "feature vectors too similar: {diff}");
    }

    #[test]
    fn duration_invariant_kinds_are_stable_across_speed() {
        // Relative-location features barely move when the gesture is
        // resampled to a different duration. Use a shape with a unique
        // global maximum so the argmax is well-defined at any sampling.
        let bump = |n: usize| -> Vec<f64> {
            (0..n)
                .map(|i| {
                    let t = i as f64 / n as f64;
                    (-(t - 0.3) * (t - 0.3) / 0.02).exp()
                })
                .collect()
        };
        let slow = bump(200);
        let fast = bump(100);
        for k in [
            FeatureKind::LastLocationOfMaximum,
            FeatureKind::CountBelowAboveMean,
        ] {
            let a = k.values(&slow);
            let b = k.values(&fast);
            for (u, v) in a.iter().zip(&b) {
                assert!((u - v).abs() < 0.08, "{k:?}: {u} vs {v}");
            }
        }
    }

    #[test]
    fn serde_roundtrip() {
        let e = FeatureExtractor::table1();
        let json = serde_json::to_string(&e).unwrap();
        let back: FeatureExtractor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    #[should_panic(expected = "at least one feature kind")]
    fn empty_kinds_panic() {
        let _ = FeatureExtractor::new(vec![]);
    }
}
