//! Entropy features: sample entropy and approximate entropy.
//!
//! Both compare the regularity of `m`-length templates against
//! `(m+1)`-length templates with tolerance `r = f · σ(x)`. Regular,
//! repetitive gestures (double rub) score lower than erratic non-gestures —
//! why the paper keeps both in Table I.

use airfinger_dsp::stats::std_dev;

/// Sample entropy with embedding `m` and tolerance `r_factor · σ`.
///
/// Returns 0 for series shorter than `m + 2` or with zero variance, and a
/// large-but-finite value (`ln` of the template count) when no
/// `(m+1)`-matches exist.
#[must_use]
pub fn sample_entropy(x: &[f64], m: usize, r_factor: f64) -> f64 {
    let n = x.len();
    if n < m + 2 || m == 0 {
        return 0.0;
    }
    let r = r_factor * std_dev(x);
    if r <= 0.0 {
        return 0.0;
    }
    let count_matches = |len: usize| -> usize {
        let templates = n - len + 1;
        let mut matches = 0usize;
        for i in 0..templates {
            for j in i + 1..templates {
                let close = (0..len).all(|k| (x[i + k] - x[j + k]).abs() <= r);
                if close {
                    matches += 1;
                }
            }
        }
        matches
    };
    let b = count_matches(m);
    let a = count_matches(m + 1);
    if b == 0 {
        return 0.0; // no m-matches at all: entropy undefined, report 0
    }
    if a == 0 {
        // Conventional cap: the most irregular observable value.
        return (b as f64 * 2.0).ln();
    }
    -(a as f64 / b as f64).ln()
}

/// Approximate entropy with embedding `m` and tolerance `r_factor · σ`
/// (Pincus' ApEn; self-matches included, per the original definition).
#[must_use]
pub fn approximate_entropy(x: &[f64], m: usize, r_factor: f64) -> f64 {
    let n = x.len();
    if n < m + 2 || m == 0 {
        return 0.0;
    }
    let r = r_factor * std_dev(x);
    if r <= 0.0 {
        return 0.0;
    }
    let phi = |len: usize| -> f64 {
        let templates = n - len + 1;
        let mut acc = 0.0;
        for i in 0..templates {
            let mut count = 0usize;
            for j in 0..templates {
                let close = (0..len).all(|k| (x[i + k] - x[j + k]).abs() <= r);
                if close {
                    count += 1;
                }
            }
            acc += (count as f64 / templates as f64).ln();
        }
        acc / templates as f64
    };
    phi(m) - phi(m + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(i: usize) -> f64 {
        let mut z = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ((z >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    }

    #[test]
    fn regular_signal_has_low_sampen() {
        let sine: Vec<f64> = (0..200).map(|i| (i as f64 * 0.3).sin()).collect();
        let rand: Vec<f64> = (0..200).map(noise).collect();
        let s_sine = sample_entropy(&sine, 2, 0.2);
        let s_rand = sample_entropy(&rand, 2, 0.2);
        assert!(s_sine < s_rand, "sine {s_sine} vs random {s_rand}");
    }

    #[test]
    fn regular_signal_has_low_apen() {
        let sine: Vec<f64> = (0..150).map(|i| (i as f64 * 0.3).sin()).collect();
        let rand: Vec<f64> = (0..150).map(noise).collect();
        assert!(approximate_entropy(&sine, 2, 0.2) < approximate_entropy(&rand, 2, 0.2));
    }

    #[test]
    fn constant_series_is_zero() {
        assert_eq!(sample_entropy(&[3.0; 50], 2, 0.2), 0.0);
        assert_eq!(approximate_entropy(&[3.0; 50], 2, 0.2), 0.0);
    }

    #[test]
    fn short_series_is_zero() {
        assert_eq!(sample_entropy(&[1.0, 2.0], 2, 0.2), 0.0);
        assert_eq!(approximate_entropy(&[1.0, 2.0], 2, 0.2), 0.0);
    }

    #[test]
    fn outputs_are_finite() {
        let x: Vec<f64> = (0..100).map(|i| noise(i) * 10.0).collect();
        assert!(sample_entropy(&x, 2, 0.2).is_finite());
        assert!(approximate_entropy(&x, 2, 0.2).is_finite());
    }

    #[test]
    fn sampen_nonnegative_on_typical_data() {
        let x: Vec<f64> = (0..120)
            .map(|i| (i as f64 * 0.2).sin() + 0.1 * noise(i))
            .collect();
        assert!(sample_entropy(&x, 2, 0.2) >= 0.0);
    }
}
