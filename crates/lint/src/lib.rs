//! `airfinger-lint` — zero-dependency workspace static analysis.
//!
//! The paper reproduction's evaluation is only trustworthy if every run
//! is bit-identical across thread counts. The dynamic tests
//! (`parallel_determinism`, `metrics_determinism`) pin that at runtime;
//! this tool pins it at CI time, before a stray `Instant::now()` or
//! `HashMap` iteration in a result path corrupts a `BENCH_*.json`
//! baseline. Eight rule families (see [`rules`]):
//!
//! - **D determinism** — no wall-clock/thread-identity reads outside
//!   `crates/obs`/`crates/parallel`; no `HashMap`/`HashSet` in
//!   result-producing crates without a `// lint: ordered` justification.
//! - **P panic-safety** — non-test `unwrap()`/`expect(`/`panic!`/`todo!`/
//!   `unimplemented!` sites are budgeted per file by `lint-allow.toml`
//!   and can only ratchet down.
//! - **S metric schema** — every `counter!`/`gauge!`/`histogram!`/`span!`
//!   name must appear in DESIGN.md §9 and follow the suffix conventions.
//! - **U unsafe audit** — every `unsafe` site needs a `// SAFETY:`
//!   comment; the report carries a per-crate unsafe census.
//! - **C paper-constant hygiene** — the paper's magic numbers (100 Hz,
//!   `t_e`, `I_g`, 25 features) live in `crates/core/src/config.rs` only.
//! - **H hot-path hygiene** — from each `// lint: hot-path-root`
//!   function, walk the workspace call graph ([`parser`] + [`callgraph`])
//!   and flag allocation/lock constructs in everything transitively
//!   reachable, budgeted per function by `lint-allow.toml` `[hot-path]`.
//! - **R concurrency audit** — `static mut`, shared statics outside the
//!   host crates, and `Ordering::Relaxed`/`SeqCst` need justifications.
//! - **M metric/event liveness** — every non-reserved DESIGN.md §9 row
//!   needs an emission site, and every `EventKind` tag must be
//!   documented in §14 (rule S run backwards).
//!
//! Run it as `cargo run -p airfinger-lint -- check`; see `DESIGN.md` §10
//! for the rule catalogue and the justification-comment grammar.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allowlist;
pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod schema;
pub mod source;

use allowlist::{Allowlist, AllowlistError};
use report::LintReport;
use schema::Schema;
use std::fmt;
use std::io;
use std::path::Path;

/// A failure to *run* the linter (distinct from lint findings).
#[derive(Debug)]
pub enum CheckError {
    /// Filesystem error while loading sources.
    Io(io::Error),
    /// `lint-allow.toml` is malformed.
    Allowlist(AllowlistError),
    /// `DESIGN.md` is missing or has no `## 9.` schema section.
    MissingSchema,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Io(e) => write!(f, "i/o error: {e}"),
            CheckError::Allowlist(e) => write!(f, "{e}"),
            CheckError::MissingSchema => write!(
                f,
                "DESIGN.md has no `## 9.` metric-schema section; rule S cannot validate"
            ),
        }
    }
}

impl std::error::Error for CheckError {}

impl From<io::Error> for CheckError {
    fn from(e: io::Error) -> Self {
        CheckError::Io(e)
    }
}

impl From<AllowlistError> for CheckError {
    fn from(e: AllowlistError) -> Self {
        CheckError::Allowlist(e)
    }
}

/// Run the full check over the workspace rooted at `root`: loads
/// `crates/*/src/**/*.rs`, `lint-allow.toml` (absent ⇒ empty budget),
/// and the DESIGN.md §9 schema, then evaluates every rule.
///
/// # Errors
///
/// Returns [`CheckError`] when the workspace cannot be loaded or its
/// configuration is malformed — never for lint findings, which are
/// reported through the returned [`LintReport`].
pub fn check(root: &Path) -> Result<LintReport, CheckError> {
    let files = source::load_workspace(root)?;
    let allow_path = root.join("lint-allow.toml");
    let allowlist = if allow_path.is_file() {
        Allowlist::parse(&std::fs::read_to_string(&allow_path)?)?
    } else {
        Allowlist::default()
    };
    let design =
        std::fs::read_to_string(root.join("DESIGN.md")).map_err(|_| CheckError::MissingSchema)?;
    let schema = Schema::from_design_md(&design).ok_or(CheckError::MissingSchema)?;
    Ok(rules::run_all(&files, &allowlist, &schema))
}
