//! CLI for `airfinger-lint`.
//!
//! ```text
//! cargo run -p airfinger-lint -- check                 # human diff-style report
//! cargo run -p airfinger-lint -- check --json out.json # + machine-readable report
//! cargo run -p airfinger-lint -- check --root ../..    # explicit workspace root
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or configuration error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("check") {
        print_usage();
        return ExitCode::from(2);
    }
    let mut root = PathBuf::from(".");
    let mut json_path: Option<PathBuf> = None;
    let mut quiet = false;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--json" => match it.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--json needs a path");
                    return ExitCode::from(2);
                }
            },
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                print_usage();
                return ExitCode::from(2);
            }
        }
    }
    let report = match airfinger_lint::check(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("airfinger-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, report.render_json()) {
            eprintln!("airfinger-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        if !quiet {
            eprintln!("[lint] wrote JSON report to {}", path.display());
        }
    }
    if !quiet || !report.passed() {
        print!("{}", report.render_human());
    }
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn print_usage() {
    eprintln!("airfinger-lint — workspace static analysis (rules D/P/S/U/C/H/R/M)");
    eprintln!();
    eprintln!("usage: airfinger-lint check [--root DIR] [--json PATH] [--quiet]");
    eprintln!();
    eprintln!("  --root DIR   workspace root holding crates/, DESIGN.md, lint-allow.toml");
    eprintln!("               (default: current directory)");
    eprintln!("  --json PATH  also write the machine-readable report");
    eprintln!("  --quiet      only print the report when there are findings");
}
