//! Workspace-wide call graph over the items `parser` recovers, plus the
//! reachability walk rule H runs from the `// lint: hot-path-root`
//! annotations.
//!
//! Resolution is name-based and conservative — no type inference:
//!
//! - `Owner::name(...)` resolves to the `fn name` items inside
//!   `impl Owner` blocks anywhere in the workspace (`Self` resolves
//!   against the caller's own impl).
//! - `name(...)` resolves to every free `fn name` in the workspace.
//! - `.name(...)` resolves to every impl `fn name` whose owner *type is
//!   mentioned in the caller's file* — the "use resolution" cheap trick:
//!   a file can only call methods of types it names somewhere (fields,
//!   params, imports), which prunes same-named methods of unrelated
//!   types without inferring receiver types.
//!
//! Calls that resolve to nothing are external (`Vec::push`, std) and fall
//! out of the graph; rule H catches allocating std constructs textually
//! instead.

use crate::parser::{parse_items, FnItem, Receiver};
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// One function node: which file it came from plus the parsed item.
#[derive(Debug)]
pub struct FnNode {
    /// Index into the `files` slice the graph was built from.
    pub file_idx: usize,
    /// The parsed function item.
    pub item: FnItem,
}

impl FnNode {
    /// Budget/report key: `<rel_path>::<Owner>::<fn>`.
    #[must_use]
    pub fn key(&self, files: &[SourceFile]) -> String {
        format!(
            "{}::{}",
            files[self.file_idx].rel_path,
            self.item.qualified()
        )
    }
}

/// The workspace call graph.
#[derive(Debug)]
pub struct CallGraph {
    /// All function nodes, in (file, position) order.
    pub nodes: Vec<FnNode>,
    by_owner_name: BTreeMap<(String, String), Vec<usize>>,
    free_by_name: BTreeMap<String, Vec<usize>>,
    methods_by_name: BTreeMap<String, Vec<usize>>,
    /// Per-file set of identifier texts (for method-call pruning).
    file_idents: Vec<BTreeSet<String>>,
}

impl CallGraph {
    /// Parse every file and index the resulting items.
    #[must_use]
    pub fn build(files: &[SourceFile]) -> Self {
        let mut nodes = Vec::new();
        let mut file_idents = Vec::with_capacity(files.len());
        for (file_idx, file) in files.iter().enumerate() {
            for item in parse_items(file) {
                nodes.push(FnNode { file_idx, item });
            }
            file_idents.push(
                file.tokens
                    .iter()
                    .filter(|t| t.kind == crate::lexer::TokenKind::Ident)
                    .map(|t| t.text.clone())
                    .collect(),
            );
        }
        let mut by_owner_name: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (idx, node) in nodes.iter().enumerate() {
            if node.item.is_test {
                continue;
            }
            match &node.item.owner {
                Some(owner) => {
                    by_owner_name
                        .entry((owner.clone(), node.item.name.clone()))
                        .or_default()
                        .push(idx);
                    methods_by_name
                        .entry(node.item.name.clone())
                        .or_default()
                        .push(idx);
                }
                None => {
                    free_by_name
                        .entry(node.item.name.clone())
                        .or_default()
                        .push(idx);
                }
            }
        }
        CallGraph {
            nodes,
            by_owner_name,
            free_by_name,
            methods_by_name,
            file_idents,
        }
    }

    /// Indices of the annotated, non-test hot-path roots.
    #[must_use]
    pub fn roots(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.item.hot_root && !n.item.is_test)
            .map(|(i, _)| i)
            .collect()
    }

    /// Candidate callee indices for one call site of `caller`.
    fn resolve(&self, caller: usize, name: &str, receiver: &Receiver) -> Vec<usize> {
        let node = &self.nodes[caller];
        match receiver {
            Receiver::Path(owner) => {
                let owner = if owner == "Self" {
                    match &node.item.owner {
                        Some(o) => o.as_str(),
                        None => return Vec::new(),
                    }
                } else {
                    owner.as_str()
                };
                if owner.starts_with(|c: char| c.is_ascii_uppercase()) {
                    self.by_owner_name
                        .get(&(owner.to_string(), name.to_string()))
                        .cloned()
                        .unwrap_or_default()
                } else {
                    // `module::name(...)` — module paths carry no type, so
                    // fall back to free-function resolution.
                    self.free_by_name.get(name).cloned().unwrap_or_default()
                }
            }
            Receiver::Plain => self.free_by_name.get(name).cloned().unwrap_or_default(),
            Receiver::Method => {
                let visible = &self.file_idents[node.file_idx];
                self.methods_by_name
                    .get(name)
                    .map(|cands| {
                        cands
                            .iter()
                            .copied()
                            .filter(|&c| {
                                self.nodes[c]
                                    .item
                                    .owner
                                    .as_ref()
                                    .is_some_and(|o| visible.contains(o))
                            })
                            .collect()
                    })
                    .unwrap_or_default()
            }
        }
    }

    /// Every non-test function transitively reachable from the hot-path
    /// roots, restricted to crates for which `in_scope` holds (calls into
    /// out-of-scope crates are not descended). Deterministic order.
    #[must_use]
    pub fn reachable(&self, files: &[SourceFile], in_scope: &dyn Fn(&str) -> bool) -> Vec<usize> {
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut queue: Vec<usize> = self
            .roots()
            .into_iter()
            .filter(|&i| in_scope(&files[self.nodes[i].file_idx].crate_name))
            .collect();
        queue.sort_unstable();
        let mut head = 0;
        for &r in &queue {
            seen.insert(r);
        }
        while head < queue.len() {
            let current = queue[head];
            head += 1;
            for call in &self.nodes[current].item.calls {
                for target in self.resolve(current, &call.name, &call.receiver) {
                    let t = &self.nodes[target];
                    if t.item.is_test || !in_scope(&files[t.file_idx].crate_name) {
                        continue;
                    }
                    if seen.insert(target) {
                        queue.push(target);
                    }
                }
            }
        }
        seen.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, crate_name: &str, src: &str) -> SourceFile {
        SourceFile::parse(rel.to_string(), crate_name.to_string(), src)
    }

    fn keys(graph: &CallGraph, files: &[SourceFile], reach: &[usize]) -> Vec<String> {
        reach.iter().map(|&i| graph.nodes[i].key(files)).collect()
    }

    #[test]
    fn walk_crosses_crates_through_path_and_method_calls() {
        let files = vec![
            file(
                "crates/core/src/engine.rs",
                "core",
                "use dsp::Filter;\n\
                 struct Engine { f: Filter }\n\
                 impl Engine {\n\
                 // lint: hot-path-root\n\
                 pub fn push(&mut self) { self.f.smooth(); helper(); }\n\
                 }\n\
                 fn helper() { dsp::free_stage(); }\n",
            ),
            file(
                "crates/dsp/src/lib.rs",
                "dsp",
                "pub struct Filter;\n\
                 impl Filter { pub fn smooth(&self) { inner(); } }\n\
                 pub fn free_stage() {}\n\
                 fn inner() {}\n\
                 pub fn never_called() {}\n",
            ),
        ];
        let graph = CallGraph::build(&files);
        let reach = graph.reachable(&files, &|c| c == "core" || c == "dsp");
        let keys = keys(&graph, &files, &reach);
        assert!(keys.contains(&"crates/core/src/engine.rs::Engine::push".to_string()));
        assert!(keys.contains(&"crates/dsp/src/lib.rs::Filter::smooth".to_string()));
        assert!(keys.contains(&"crates/dsp/src/lib.rs::free_stage".to_string()));
        assert!(keys.contains(&"crates/dsp/src/lib.rs::inner".to_string()));
        assert!(!keys.iter().any(|k| k.contains("never_called")));
    }

    #[test]
    fn method_resolution_requires_the_type_to_be_visible() {
        // Both crates define `.predict()`; the caller's file only
        // mentions `Forest`, so `Cnn::predict` must stay unreachable.
        let files = vec![
            file(
                "crates/core/src/detect.rs",
                "core",
                "struct Detect { forest: Forest }\n\
                 impl Detect {\n\
                 // lint: hot-path-root\n\
                 fn go(&self) { self.forest.predict(); }\n\
                 }\n",
            ),
            file(
                "crates/ml/src/lib.rs",
                "ml",
                "pub struct Forest; impl Forest { pub fn predict(&self) {} }\n\
                 pub struct Cnn; impl Cnn { pub fn predict(&self) {} }\n",
            ),
        ];
        let graph = CallGraph::build(&files);
        let reach = graph.reachable(&files, &|_| true);
        let keys = keys(&graph, &files, &reach);
        assert!(keys.contains(&"crates/ml/src/lib.rs::Forest::predict".to_string()));
        assert!(!keys.contains(&"crates/ml/src/lib.rs::Cnn::predict".to_string()));
    }

    #[test]
    fn out_of_scope_crates_are_not_descended() {
        let files = vec![
            file(
                "crates/core/src/lib.rs",
                "core",
                "// lint: hot-path-root\n\
                 pub fn root() { observe(); }\n",
            ),
            file(
                "crates/obs/src/lib.rs",
                "obs",
                "pub fn observe() { deeper(); }\nfn deeper() {}\n",
            ),
        ];
        let graph = CallGraph::build(&files);
        let reach = graph.reachable(&files, &|c| c == "core");
        assert_eq!(
            keys(&graph, &files, &reach),
            ["crates/core/src/lib.rs::root"]
        );
    }

    #[test]
    fn test_fns_are_neither_roots_nor_targets() {
        let files = vec![file(
            "crates/core/src/lib.rs",
            "core",
            "// lint: hot-path-root\n\
             pub fn root() { helper(); }\n\
             fn helper() {}\n\
             #[cfg(test)]\nmod tests {\n\
             // lint: hot-path-root\n\
             fn fake_root() { helper(); }\n\
             fn helper() {}\n\
             }\n",
        )];
        let graph = CallGraph::build(&files);
        assert_eq!(graph.roots().len(), 1);
        let reach = graph.reachable(&files, &|_| true);
        assert_eq!(reach.len(), 2);
    }

    #[test]
    fn cycles_terminate() {
        let files = vec![file(
            "crates/core/src/lib.rs",
            "core",
            "// lint: hot-path-root\n\
             pub fn a() { b(); }\n\
             fn b() { a(); }\n",
        )];
        let graph = CallGraph::build(&files);
        let reach = graph.reachable(&files, &|_| true);
        assert_eq!(reach.len(), 2);
    }
}
