//! Rules S and M — the two directions of the metric contract.
//!
//! **S (schema conformance)**: every emission site's name must appear in
//! the DESIGN.md §9 vocabulary and follow the suffix conventions —
//! counters end `_total`, histograms (and spans, which feed histograms)
//! end `_seconds`, gauges end in neither, all names are `snake_case`,
//! and no name is reused across metric kinds. Emission sites are the
//! `counter!`/`gauge!`/`histogram!`/`span!` macros and the
//! `counter_with`/`gauge_with`/`histogram_with`/`span_with` (and bare
//! `counter`/`gauge`/`histogram`/`span`) function forms called with a
//! string-literal name.
//!
//! **M (liveness, the reverse direction)**: every metric *row* of the §9
//! tables must have at least one emission site in non-test code — a row
//! with none is a dead metric (dashboards chart a flatline that can
//! never move). A row documented as `(reserved)` is exempt. And every
//! `EventKind` tag in `crates/obs/src/events.rs` must appear backticked
//! in DESIGN.md §14, so the event vocabulary the journal emits is the
//! one the document promises.

use super::{finding, ident_at, punct_at};
use crate::lexer::TokenKind;
use crate::report::{Finding, LintReport, Rule};
use crate::schema::{is_snake_case, Schema};
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// One metric call site.
struct MetricSite<'a> {
    file: &'a SourceFile,
    line: usize,
    kind: &'static str,
    name: String,
}

/// Collect every emission site with a string-literal name.
fn emission_sites(files: &[SourceFile]) -> Vec<MetricSite<'_>> {
    let mut sites: Vec<MetricSite<'_>> = Vec::new();
    for file in files {
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            if file.in_test[i] {
                continue;
            }
            let (kind, name_idx) = match ident_at(tokens, i) {
                Some(macro_name @ ("counter" | "gauge" | "histogram" | "span"))
                    if punct_at(tokens, i + 1, "!") && punct_at(tokens, i + 2, "(") =>
                {
                    (metric_kind(macro_name), i + 3)
                }
                Some(
                    fn_name @ ("counter" | "gauge" | "histogram" | "span" | "counter_with"
                    | "gauge_with" | "histogram_with" | "span_with"),
                ) if punct_at(tokens, i + 1, "(") => {
                    (metric_kind(fn_name.trim_end_matches("_with")), i + 2)
                }
                _ => continue,
            };
            let Some(name_tok) = tokens.get(name_idx).filter(|t| t.kind == TokenKind::Str) else {
                continue;
            };
            sites.push(MetricSite {
                file,
                line: name_tok.line,
                kind,
                name: name_tok.text.clone(),
            });
        }
    }
    sites
}

fn metric_kind(head: &str) -> &'static str {
    match head {
        "counter" => "counter",
        "gauge" => "gauge",
        _ => "histogram",
    }
}

/// Rule S — metric-schema conformance.
pub(crate) fn schema_conformance(files: &[SourceFile], schema: &Schema, report: &mut LintReport) {
    let sites = emission_sites(files);
    let mut kinds_by_name: BTreeMap<&str, Vec<&MetricSite<'_>>> = BTreeMap::new();
    for site in &sites {
        kinds_by_name.entry(&site.name).or_default().push(site);
        let name = &site.name;
        let mut problems = Vec::new();
        if !is_snake_case(name) {
            problems.push("metric names must be snake_case".to_string());
        }
        // `// lint: metric-suffix` opts one emission out of the suffix
        // conventions (e.g. a unitless distribution histogram) — schema
        // membership still applies.
        if !site.file.justified(site.line, "metric-suffix") {
            match site.kind {
                "counter" if !name.ends_with("_total") => {
                    problems.push("counter names must end `_total`".to_string());
                }
                "histogram" if !name.ends_with("_seconds") => {
                    problems.push("histogram/span names must end `_seconds`".to_string());
                }
                "gauge" if name.ends_with("_total") || name.ends_with("_seconds") => {
                    problems.push(
                        "gauge names must not use the `_total`/`_seconds` suffixes".to_string(),
                    );
                }
                _ => {}
            }
        }
        if !schema.contains(name) {
            problems.push("not in the DESIGN.md §9 stable schema — add it there first".to_string());
        }
        for p in problems {
            report.findings.push(finding(
                site.file,
                Rule::MetricSchema,
                site.line,
                format!("metric `{name}` ({}): {p}", site.kind),
            ));
        }
    }
    for (name, sites) in &kinds_by_name {
        let mut kinds: Vec<&str> = sites.iter().map(|s| s.kind).collect();
        kinds.sort_unstable();
        kinds.dedup();
        if kinds.len() > 1 {
            let site = sites
                .iter()
                .find(|s| s.kind != sites[0].kind)
                .unwrap_or(&sites[0]);
            report.findings.push(finding(
                site.file,
                Rule::MetricSchema,
                site.line,
                format!(
                    "metric `{name}` is registered as multiple kinds ({}) — names are \
                     unique per kind in the §9 schema",
                    kinds.join(" and ")
                ),
            ));
        }
    }
}

/// The file whose `EventKind::TAGS` array rule M audits against §14.
const EVENTS_FILE: &str = "crates/obs/src/events.rs";

/// Rule M — metric/event liveness.
pub(crate) fn liveness(files: &[SourceFile], schema: &Schema, report: &mut LintReport) {
    // A §9 row is live when its name appears as a string literal anywhere
    // in non-test code — macro position, `*_with` call, or a named
    // constant that feeds one. (Stricter matching would false-positive on
    // metrics emitted through name constants.)
    let mut live: BTreeSet<&str> = BTreeSet::new();
    for file in files {
        for (t, &in_test) in file.tokens.iter().zip(&file.in_test) {
            if !in_test && t.kind == TokenKind::Str {
                live.insert(t.text.as_str());
            }
        }
    }
    let mut reported: BTreeSet<&str> = BTreeSet::new();
    for row in &schema.rows {
        if row.reserved || live.contains(row.name.as_str()) || !reported.insert(&row.name) {
            continue;
        }
        report.findings.push(Finding {
            rule: Rule::MetricLiveness,
            file: "DESIGN.md".to_string(),
            line: row.line,
            message: format!(
                "metric `{}` has a §9 row but no emission site in non-test code — a dead \
                 metric charts a flatline; remove the row or mark it `(reserved)`",
                row.name
            ),
            excerpt: row.excerpt.clone(),
        });
    }
    // Event kinds: every tag in `EventKind::TAGS` must be documented in
    // §14. Skipped when the workspace has no events file or DESIGN.md has
    // no §14 (fixture workspaces).
    let Some(vocab) = &schema.event_vocab else {
        return;
    };
    let Some(events) = files.iter().find(|f| f.rel_path == EVENTS_FILE) else {
        return;
    };
    for (line, tag) in event_tags(events) {
        if !vocab.contains(&tag) {
            report.findings.push(finding(
                events,
                Rule::MetricLiveness,
                line,
                format!(
                    "event kind `{tag}` is emitted by the journal but not documented in \
                     DESIGN.md §14 — add it to the event vocabulary there"
                ),
            ));
        }
    }
}

/// The string literals of the `TAGS` array in the events file, with
/// their lines.
fn event_tags(file: &SourceFile) -> Vec<(usize, String)> {
    let tokens = &file.tokens;
    let Some(tags_idx) =
        (0..tokens.len()).find(|&i| !file.in_test[i] && ident_at(tokens, i) == Some("TAGS"))
    else {
        return Vec::new();
    };
    // Scan to the `= [` initializer, then collect strings to the `]`.
    let mut j = tags_idx;
    while j < tokens.len() && !punct_at(tokens, j, "=") {
        j += 1;
    }
    while j < tokens.len() && !punct_at(tokens, j, "[") {
        j += 1;
    }
    let mut out = Vec::new();
    let mut depth = 0usize;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.kind == TokenKind::Punct {
            if t.text == "[" {
                depth += 1;
            } else if t.text == "]" {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        } else if t.kind == TokenKind::Str {
            out.push((t.line, t.text.clone()));
        }
        j += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::run_all;
    use super::super::testutil::{file_in, run};
    use crate::allowlist::Allowlist;
    use crate::report::Rule;
    use crate::schema::Schema;

    #[test]
    fn metric_schema_checks_suffix_membership_and_kind_clash() {
        let f = file_in(
            "core",
            "crates/core/src/x.rs",
            "fn f() {\n\
             obs::counter!(\"pipeline_windows_total\").inc();\n\
             obs::counter!(\"bad_counter\").inc();\n\
             obs::gauge!(\"pipeline_stage_seconds\").set(1.0);\n\
             }\n",
        );
        let r = run(&[f]);
        // bad_counter: wrong suffix + not in schema; gauge reusing a
        // histogram-suffixed schema name: suffix misuse (kind clash needs
        // a second kind in the same run).
        assert_eq!(r.count(Rule::MetricSchema), 3, "{:#?}", r.findings);
    }

    #[test]
    fn function_form_sites_are_checked_too() {
        let f = file_in(
            "fleet",
            "crates/fleet/src/x.rs",
            "fn f() {\n\
             airfinger_obs::counter_with(\"undocumented_total\", &[(\"k\", \"v\")]).inc();\n\
             airfinger_obs::gauge_with(\"pipeline_otsu_threshold\", &[]).set(1.0);\n\
             }\n",
        );
        let r = run(&[f]);
        // counter_with: not in schema (suffix fine); gauge_with: in
        // schema with a legal gauge name — clean.
        assert_eq!(r.count(Rule::MetricSchema), 1, "{:#?}", r.findings);
    }

    #[test]
    fn metric_suffix_justification_waives_suffix_but_not_membership() {
        let f = file_in(
            "parallel",
            "crates/parallel/src/x.rs",
            "fn f() {\n\
             // lint: metric-suffix — unitless distribution\n\
             obs::histogram!(\"pipeline_windows_total\").observe(1.0);\n\
             obs::histogram!(\"undocumented_jobs\").observe(1.0); // lint: metric-suffix\n\
             }\n",
        );
        let r = run(&[f]);
        // First site: suffix waived, name is in schema — clean. Second:
        // suffix waived but still off-schema — one finding.
        assert_eq!(r.count(Rule::MetricSchema), 1, "{:#?}", r.findings);
        assert!(r.findings[0].message.contains("not in the DESIGN.md"));
    }

    #[test]
    fn metric_kind_clash_detected() {
        let f = file_in(
            "core",
            "crates/core/src/x.rs",
            "fn f() {\n\
             obs::counter!(\"pipeline_windows_total\").inc();\n\
             obs::histogram!(\"pipeline_windows_total\").observe(1.0);\n\
             }\n",
        );
        let r = run(&[f]);
        let clash = r
            .findings
            .iter()
            .filter(|f| f.message.contains("multiple kinds"))
            .count();
        assert_eq!(clash, 1, "{:#?}", r.findings);
    }

    fn schema_with_rows() -> Schema {
        Schema::from_design_md(
            "## 9. Schema\n\
             | name | meaning |\n\
             | --- | --- |\n\
             | `live_total` | emitted |\n\
             | `dead_total` | never emitted |\n\
             | `parked_total` | (reserved) for later |\n\
             ## 14. Events\nKinds: `admitted`.\n",
        )
        .unwrap()
    }

    #[test]
    fn dead_metric_row_fires_and_reserved_is_exempt() {
        let f = file_in(
            "core",
            "crates/core/src/x.rs",
            "fn f() { obs::counter!(\"live_total\").inc(); }\n",
        );
        let r = run_all(&[f], &Allowlist::default(), &schema_with_rows());
        let dead: Vec<&str> = r
            .findings
            .iter()
            .filter(|f| f.rule == Rule::MetricLiveness)
            .map(|f| f.file.as_str())
            .collect();
        assert_eq!(dead, ["DESIGN.md"], "{:#?}", r.findings);
        assert!(r.findings.iter().any(|f| f.message.contains("dead_total")));
        assert!(!r
            .findings
            .iter()
            .any(|f| f.message.contains("parked_total")));
    }

    #[test]
    fn liveness_accepts_string_constant_indirection() {
        let f = file_in(
            "core",
            "crates/core/src/x.rs",
            "const LIVE: &str = \"live_total\";\nconst DEAD: &str = \"dead_total\";\n\
             fn f() { emit(LIVE); emit(DEAD); }\n",
        );
        let r = run_all(&[f], &Allowlist::default(), &schema_with_rows());
        assert_eq!(r.count(Rule::MetricLiveness), 0, "{:#?}", r.findings);
    }

    #[test]
    fn undocumented_event_kind_fires() {
        let events = file_in(
            "obs",
            "crates/obs/src/events.rs",
            "impl EventKind {\n\
             pub const TAGS: [&str; 2] = [\"admitted\", \"mystery\"];\n\
             }\n\
             fn live() { obs::counter!(\"live_total\").inc(); \
             emit(\"dead_total\"); emit(\"parked_total\"); }\n",
        );
        let r = run_all(&[events], &Allowlist::default(), &schema_with_rows());
        let msgs: Vec<&str> = r
            .findings
            .iter()
            .filter(|f| f.rule == Rule::MetricLiveness)
            .map(|f| f.message.as_str())
            .collect();
        assert_eq!(msgs.len(), 1, "{msgs:#?}");
        assert!(msgs[0].contains("`mystery`"));
    }
}
