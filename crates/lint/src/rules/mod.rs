//! The eight rule families, one module per family:
//!
//! - [`determinism`] — (D) no wall-clock/thread identity outside the
//!   host crates, no unordered containers in result crates.
//! - [`panics`] — (P) panic-safety ratchet against `lint-allow.toml`.
//! - [`metrics`] — (S) metric-name schema conformance and (M)
//!   metric/event liveness against DESIGN.md §9/§14.
//! - [`unsafe_audit`] — (U) `// SAFETY:` comments + unsafe census.
//! - [`consts`] — (C) paper-constant hygiene.
//! - [`hotpath`] — (H) call-graph hot-path allocation/lock hygiene.
//! - [`concurrency`] — (R) `static mut`, shared statics, atomic
//!   orderings.
//!
//! Each rule scans the lexed token streams — never raw text — so
//! strings, comments, and doc examples can't produce false positives.
//! Rules H and M additionally consume the item parser and call graph
//! (see [`crate::parser`] and [`crate::callgraph`]).

pub mod concurrency;
pub mod consts;
pub mod determinism;
pub mod hotpath;
pub mod metrics;
pub mod panics;
pub mod unsafe_audit;

use crate::allowlist::Allowlist;
use crate::lexer::{Token, TokenKind};
use crate::report::{Finding, LintReport, Rule};
use crate::schema::Schema;
use crate::source::SourceFile;

/// Crates whose whole purpose is timing/threading/shared state — rule
/// D's time ban and rule R's static/ordering bans do not apply there,
/// and rule H's hot-path walk does not descend into them (they are the
/// hot path's hosts, not its body; their cost discipline is pinned by
/// the runtime `alloc_accounting`/`metrics_determinism` tests).
pub(crate) const HOST_CRATES: [&str; 2] = ["obs", "parallel"];

/// Result-producing crates: anything nondeterministic here corrupts the
/// paper-reproduction numbers, so rules D-hash and C apply.
pub(crate) const RESULT_CRATES: [&str; 4] = ["core", "dsp", "features", "ml"];

/// The one file allowed to define paper constants.
pub(crate) const CONFIG_FILE: &str = "crates/core/src/config.rs";

/// Run every rule over the loaded workspace.
#[must_use]
pub fn run_all(files: &[SourceFile], allowlist: &Allowlist, schema: &Schema) -> LintReport {
    let mut report = LintReport {
        files_scanned: files.len(),
        ..Default::default()
    };
    for file in files {
        determinism::check(file, &mut report);
        unsafe_audit::check(file, &mut report);
        consts::check(file, &mut report);
        concurrency::check(file, &mut report);
    }
    panics::check(files, allowlist, &mut report);
    metrics::schema_conformance(files, schema, &mut report);
    metrics::liveness(files, schema, &mut report);
    hotpath::check(files, allowlist, &mut report);
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
}

pub(crate) fn finding(file: &SourceFile, rule: Rule, line: usize, message: String) -> Finding {
    Finding {
        rule,
        file: file.rel_path.clone(),
        line,
        message,
        excerpt: file.line_text(line).trim().to_string(),
    }
}

pub(crate) fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    tokens
        .get(i)
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
}

pub(crate) fn punct_at(tokens: &[Token], i: usize, p: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text == p)
}

pub(crate) fn path_sep_at(tokens: &[Token], i: usize) -> bool {
    punct_at(tokens, i, ":") && punct_at(tokens, i + 1, ":")
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    pub(crate) fn file_in(crate_name: &str, rel: &str, src: &str) -> SourceFile {
        SourceFile::parse(rel.to_string(), crate_name.to_string(), src)
    }

    pub(crate) fn run(files: &[SourceFile]) -> LintReport {
        let allow = Allowlist::default();
        let schema = Schema::from_design_md(
            "## 9. Schema\n`pipeline_windows_total` `pipeline_stage_seconds` \
             `pipeline_otsu_threshold` `stage` `sbc`\n",
        )
        .unwrap_or_default();
        run_all(files, &allow, &schema)
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::{file_in, run};

    #[test]
    fn test_regions_are_exempt_from_d_p_s_c() {
        let f = file_in(
            "core",
            "crates/core/src/x.rs",
            "#[cfg(test)]\nmod tests {\n fn t() {\n let t = Instant::now();\n x.unwrap();\n \
             obs::counter!(\"nope\").inc();\n let sample_rate_hz = 100.0;\n }\n}\n",
        );
        let r = run(&[f]);
        assert!(r.passed(), "{:#?}", r.findings);
    }

    #[test]
    fn findings_sort_by_file_line_rule() {
        let f = file_in(
            "core",
            "crates/core/src/x.rs",
            "fn f() { let t = Instant::now(); }\nfn g() { let u = Instant::now(); }\n",
        );
        let r = run(&[f]);
        let lines: Vec<usize> = r.findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, [1, 2]);
    }
}
