//! Rule C — paper-constant hygiene.
//!
//! The paper's magic numbers live in `crates/core/src/config.rs` (or a
//! crate's named constant) and nowhere else. In result-producing crates,
//! a line that re-hardcodes one of them next to an identifier naming the
//! concept is flagged unless it carries `// lint: paper-const`.

use super::{finding, CONFIG_FILE, RESULT_CRATES};
use crate::lexer::TokenKind;
use crate::report::{LintReport, Rule};
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// A paper constant rule C watches for: the literal values and the
/// identifier fragments that mark a line as talking about that constant.
struct PaperConst {
    literals: &'static [&'static str],
    ident_marks: fn(&str) -> bool,
    what: &'static str,
}

const PAPER_CONSTS: [PaperConst; 4] = [
    PaperConst {
        literals: &["100.0"],
        ident_marks: |id| id.contains("rate") || id == "hz" || id.ends_with("_hz"),
        what: "the 100 Hz sample rate",
    },
    PaperConst {
        literals: &["0.1", "100"],
        ident_marks: |id| id.contains("merge") || id == "t_e" || id.starts_with("t_e_"),
        what: "the `t_e` = 100 ms merge gap",
    },
    PaperConst {
        literals: &["30.0", "0.03"],
        ident_marks: |id| id == "ig" || id.starts_with("ig_") || id.ends_with("_ig"),
        what: "the `I_g` = 30 ms family threshold",
    },
    PaperConst {
        literals: &["25"],
        ident_marks: |id| id.contains("feature"),
        what: "the 25-feature count",
    },
];

pub(crate) fn check(file: &SourceFile, report: &mut LintReport) {
    if !RESULT_CRATES.contains(&file.crate_name.as_str()) || file.rel_path == CONFIG_FILE {
        return;
    }
    // Group non-test tokens by line: lowercased identifiers + numbers.
    let mut by_line: BTreeMap<usize, (Vec<String>, Vec<String>)> = BTreeMap::new();
    for (t, &in_test) in file.tokens.iter().zip(&file.in_test) {
        if in_test {
            continue;
        }
        let entry = by_line.entry(t.line).or_default();
        match t.kind {
            TokenKind::Ident => entry.0.push(t.text.to_lowercase()),
            TokenKind::Number => entry.1.push(t.text.clone()),
            _ => {}
        }
    }
    for (&line, (idents, numbers)) in &by_line {
        if file.justified(line, "paper-const") {
            continue;
        }
        for rule in &PAPER_CONSTS {
            let num = numbers.iter().find(|n| rule.literals.contains(&n.as_str()));
            let marked = idents.iter().any(|id| (rule.ident_marks)(id));
            if let (Some(num), true) = (num, marked) {
                report.findings.push(finding(
                    file,
                    Rule::PaperConst,
                    line,
                    format!(
                        "`{num}` re-hardcodes {what} outside {CONFIG_FILE}; read it from \
                         the config (or justify with `// lint: paper-const`)",
                        what = rule.what
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{file_in, run};
    use crate::report::Rule;

    #[test]
    fn paper_const_fires_outside_config_only() {
        let src = "fn f() { let sample_rate_hz = 100.0; }\n";
        let in_core = file_in("core", "crates/core/src/x.rs", src);
        let in_config = file_in("core", "crates/core/src/config.rs", src);
        let in_bench = file_in("bench", "crates/bench/src/x.rs", src);
        assert_eq!(run(&[in_core]).count(Rule::PaperConst), 1);
        assert_eq!(run(&[in_config]).count(Rule::PaperConst), 0);
        assert_eq!(run(&[in_bench]).count(Rule::PaperConst), 0);
        let justified = file_in(
            "core",
            "crates/core/src/x.rs",
            "fn f() { let sample_rate_hz = 100.0; } // lint: paper-const — doc example\n",
        );
        assert_eq!(run(&[justified]).count(Rule::PaperConst), 0);
    }

    #[test]
    fn bare_literal_without_concept_ident_is_fine() {
        let f = file_in("dsp", "crates/dsp/src/x.rs", "fn f() { let x = 100.0; }\n");
        assert_eq!(run(&[f]).count(Rule::PaperConst), 0);
    }
}
