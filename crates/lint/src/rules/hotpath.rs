//! Rule H — hot-path hygiene.
//!
//! The paper's real-time claim rests on the per-sample path (SBC → Otsu →
//! segmentation → 25 features → RF predict) staying allocation- and
//! lock-free. Token-level linting cannot see that `engine::push`
//! transitively calls a `Vec`-allocating helper three crates away, so
//! this rule walks the workspace call graph from the annotated roots
//! (`// lint: hot-path-root`) and scans every transitively reachable
//! function for:
//!
//! - heap-allocating constructs: `Vec::new`/`with_capacity` (and the
//!   other std collections) *inside loops*, `.to_vec()`/`.to_owned()`/
//!   `.to_string()`, `.clone()` (except the explicit `Arc::clone`/
//!   `Rc::clone` refcount form), `.collect()`, `String::new`/`from`/
//!   `with_capacity`, `format!`/`vec!`, `Box::new`;
//! - lock acquisition: `.lock()` and zero-argument `.read()`/`.write()`.
//!
//! The walk covers the serving-path crates (`core`, `dsp`, `features`,
//! `ml`, `fleet`) and does not descend into the `obs`/`parallel` host
//! layers — instrumentation and scheduling are the hot path's hosts, not
//! its body, and their cost discipline is pinned by the runtime
//! `alloc_accounting` test and rule R.
//!
//! Each site can be individually justified with `// lint: hot-path`;
//! what remains is counted per function against the `[hot-path]` budget
//! in `lint-allow.toml`, which ratchets exactly like the panic budget:
//! over budget fails, under budget warns to ratchet down. The committed
//! budget *is* the ROADMAP item-2 burn-down list.

use super::{finding, ident_at, path_sep_at, punct_at, HOST_CRATES};
use crate::allowlist::Allowlist;
use crate::callgraph::CallGraph;
use crate::lexer::{Token, TokenKind};
use crate::report::{LintReport, Rule};
use crate::source::SourceFile;
use std::collections::BTreeSet;

/// The serving-path crates rule H walks through.
pub const HOT_SCOPE_CRATES: [&str; 5] = ["core", "dsp", "features", "ml", "fleet"];

/// Collections whose `new`/`with_capacity` is only flagged inside loops
/// (a one-off construction at function entry is setup, not per-sample
/// churn; repeated construction in a loop is).
const LOOP_ALLOC_TYPES: [&str; 5] = ["Vec", "VecDeque", "BTreeMap", "BTreeSet", "String"];

pub(crate) fn check(files: &[SourceFile], allowlist: &Allowlist, report: &mut LintReport) {
    let graph = CallGraph::build(files);
    let in_scope = |c: &str| HOT_SCOPE_CRATES.contains(&c) && !HOST_CRATES.contains(&c);
    let reach = graph.reachable(files, &in_scope);
    report.hot_path_functions = reach.len();

    // Order the scan by (file, line) so findings and budgets are stable.
    let mut ordered: Vec<usize> = reach;
    ordered.sort_by_key(|&i| {
        let n = &graph.nodes[i];
        (files[n.file_idx].rel_path.clone(), n.item.line)
    });

    let mut seen_keys: BTreeSet<String> = BTreeSet::new();
    for &idx in &ordered {
        let node = &graph.nodes[idx];
        let file = &files[node.file_idx];
        let Some((open, close)) = node.item.body else {
            continue;
        };
        // Exclude nested fn bodies — they are their own graph nodes.
        let nested: Vec<(usize, usize)> = graph
            .nodes
            .iter()
            .enumerate()
            .filter(|&(j, n)| j != idx && n.file_idx == node.file_idx)
            .filter_map(|(_, n)| n.item.body)
            .filter(|&(o, c)| o > open && c < close)
            .collect();
        let sites = scan_constructs(file, open, close, &nested);
        let key = node.key(files);
        seen_keys.insert(key.clone());
        let actual = sites.len();
        if actual > 0 {
            report.hot_path_inventory.insert(key.clone(), actual);
        }
        let allowed = allowlist.hot_allowed(&key);
        if actual > allowed {
            for (line, what) in &sites[allowed..] {
                report.findings.push(finding(
                    file,
                    Rule::HotPath,
                    *line,
                    format!(
                        "hot-path fn `{}` {what} — the push path must stay allocation- and \
                         lock-free; remove it, justify the line with `// lint: hot-path`, \
                         or budget \"{key}\" in lint-allow.toml [hot-path]",
                        node.item.qualified()
                    ),
                ));
            }
        } else if actual < allowed {
            report.warnings.push(format!(
                "{key}: [hot-path] grants {allowed} site(s) but only {actual} remain — \
                 ratchet lint-allow.toml down"
            ));
        }
    }
    for (key, allowed) in &allowlist.hot_path {
        if !seen_keys.contains(key) {
            report.warnings.push(format!(
                "{key}: [hot-path] grants {allowed} site(s) but the function is not on \
                 the hot path — remove the stale entry"
            ));
        }
    }
}

/// Allocation/lock sites in one body, justification-filtered, in line
/// order.
fn scan_constructs(
    file: &SourceFile,
    open: usize,
    close: usize,
    nested: &[(usize, usize)],
) -> Vec<(usize, String)> {
    let tokens = &file.tokens;
    let loops = loop_ranges(tokens, open, close);
    let mut sites = Vec::new();
    let mut j = open + 1;
    while j < close {
        if let Some(&(_, c)) = nested.iter().find(|&&(o, c)| j >= o && j <= c) {
            j = c + 1;
            continue;
        }
        let line = tokens[j].line;
        if let Some(what) = construct_at(tokens, j, &loops) {
            if !file.justified(line, "hot-path") {
                sites.push((line, what));
            }
        }
        j += 1;
    }
    sites
}

/// Classify the token at `j` as an allocation/lock construct.
fn construct_at(tokens: &[Token], j: usize, loops: &[(usize, usize)]) -> Option<String> {
    let name = ident_at(tokens, j)?;
    // Method calls: `.name(`.
    if punct_at(tokens, j.wrapping_sub(1), ".") && punct_at(tokens, j + 1, "(") {
        return match name {
            "to_vec" | "to_owned" | "to_string" => Some(format!("allocates via `.{name}()`")),
            "clone" => Some(
                "clones its receiver via `.clone()` (deep copy unless the receiver is \
                 a refcount)"
                    .to_string(),
            ),
            "collect" => Some("materializes an iterator via `.collect()`".to_string()),
            "lock" => Some("acquires a `Mutex` via `.lock()`".to_string()),
            "read" | "write" if punct_at(tokens, j + 2, ")") => {
                Some(format!("acquires an `RwLock` via `.{name}()`"))
            }
            _ => None,
        };
    }
    // Path calls: `Owner::name(`.
    if j >= 3 && path_sep_at(tokens, j - 2) && punct_at(tokens, j + 1, "(") {
        if let Some(owner) = ident_at(tokens, j - 3) {
            if matches!(owner, "Arc" | "Rc") && name == "clone" {
                return None; // refcount bump, not a deep copy
            }
            if owner == "String" && matches!(name, "new" | "from" | "with_capacity") {
                return Some(format!("allocates via `String::{name}`"));
            }
            if owner == "Box" && name == "new" {
                return Some("allocates via `Box::new`".to_string());
            }
            if owner == "Vec" && name == "from" {
                return Some("allocates via `Vec::from`".to_string());
            }
            if LOOP_ALLOC_TYPES.contains(&owner)
                && matches!(name, "new" | "with_capacity")
                && loops.iter().any(|&(o, c)| j > o && j < c)
            {
                return Some(format!("allocates `{owner}::{name}` inside a loop"));
            }
        }
        return None;
    }
    // Allocating macros: `format!` / `vec!`.
    if matches!(name, "format" | "vec") && punct_at(tokens, j + 1, "!") {
        return Some(format!("allocates via `{name}!`"));
    }
    None
}

/// Token ranges of `for`/`while`/`loop` bodies within `[open, close]`.
fn loop_ranges(tokens: &[Token], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    for j in open + 1..close {
        let is_loop_kw = tokens[j].kind == TokenKind::Ident
            && matches!(tokens[j].text.as_str(), "for" | "while" | "loop");
        if !is_loop_kw {
            continue;
        }
        // The loop body is the first `{` after the header at
        // paren/bracket depth 0.
        let mut depth = 0usize;
        let mut k = j + 1;
        while k < close {
            let t = &tokens[k];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth = depth.saturating_sub(1),
                    "{" if depth == 0 => {
                        ranges.push((k, matching_close(tokens, k, close)));
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            k += 1;
        }
    }
    ranges
}

fn matching_close(tokens: &[Token], open: usize, limit: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j <= limit {
        let t = &tokens[j];
        if t.kind == TokenKind::Punct {
            if t.text == "{" {
                depth += 1;
            } else if t.text == "}" {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
        j += 1;
    }
    limit
}

#[cfg(test)]
mod tests {
    use super::super::run_all;
    use super::super::testutil::{file_in, run};
    use crate::allowlist::Allowlist;
    use crate::report::Rule;
    use crate::schema::Schema;
    use crate::source::SourceFile;

    fn hot_file(body: &str) -> SourceFile {
        file_in(
            "core",
            "crates/core/src/x.rs",
            &format!("// lint: hot-path-root\npub fn push() {{ {body} }}\n"),
        )
    }

    #[test]
    fn allocating_constructs_in_a_root_fire() {
        let r = run(&[hot_file("let v = xs.to_vec(); let s = format!(\"x\");")]);
        assert_eq!(r.count(Rule::HotPath), 2, "{:#?}", r.findings);
        assert_eq!(r.hot_path_inventory["crates/core/src/x.rs::push"], 2);
    }

    #[test]
    fn transitive_helper_is_scanned() {
        let f = file_in(
            "core",
            "crates/core/src/x.rs",
            "// lint: hot-path-root\n\
             pub fn push() { helper(); }\n\
             fn helper() { let b = Box::new(1); }\n\
             fn cold() { let b = Box::new(1); }\n",
        );
        let r = run(&[f]);
        assert_eq!(r.count(Rule::HotPath), 1, "{:#?}", r.findings);
        assert_eq!(r.hot_path_functions, 2);
        assert!(r.findings[0].message.contains("helper"));
    }

    #[test]
    fn vec_new_only_fires_inside_loops() {
        let outside = run(&[hot_file("let v: Vec<f64> = Vec::new(); use_it(&v);")]);
        assert_eq!(outside.count(Rule::HotPath), 0, "{:#?}", outside.findings);
        let inside = run(&[hot_file(
            "for i in 0..n { let v: Vec<f64> = Vec::with_capacity(i); use_it(&v); }",
        )]);
        assert_eq!(inside.count(Rule::HotPath), 1, "{:#?}", inside.findings);
    }

    #[test]
    fn locks_fire_and_arc_clone_does_not() {
        let r = run(&[hot_file(
            "let g = self.inner.lock(); let a = Arc::clone(&self.shared);",
        )]);
        assert_eq!(r.count(Rule::HotPath), 1, "{:#?}", r.findings);
        assert!(r.findings[0].message.contains("Mutex"));
    }

    #[test]
    fn justification_and_budget_suppress() {
        let justified = run(&[file_in(
            "core",
            "crates/core/src/x.rs",
            "// lint: hot-path-root\n\
             pub fn push() {\n\
             let v = xs.to_vec(); // lint: hot-path — once per closed window\n\
             }\n",
        )]);
        assert_eq!(
            justified.count(Rule::HotPath),
            0,
            "{:#?}",
            justified.findings
        );

        let mut allow = Allowlist::default();
        allow
            .hot_path
            .insert("crates/core/src/x.rs::push".into(), 1);
        let schema = Schema::default();
        let budgeted = run_all(&[hot_file("let v = xs.to_vec();")], &allow, &schema);
        assert_eq!(budgeted.count(Rule::HotPath), 0, "{:#?}", budgeted.findings);
        assert!(budgeted.warnings.is_empty());

        // Budget slack warns; stale entries warn.
        let slack = run_all(&[hot_file("noop();")], &allow, &schema);
        assert_eq!(slack.count(Rule::HotPath), 0);
        assert_eq!(slack.warnings.len(), 1, "{:?}", slack.warnings);
    }

    #[test]
    fn out_of_scope_and_unannotated_workspaces_are_silent() {
        let f = file_in(
            "bench",
            "crates/bench/src/x.rs",
            "pub fn run() { let v = xs.to_vec(); }\n",
        );
        let r = run(&[f]);
        assert_eq!(r.count(Rule::HotPath), 0);
        assert_eq!(r.hot_path_functions, 0);
    }
}
