//! Rule U — unsafe audit.
//!
//! Every `unsafe` site (block, fn, impl, trait) needs a `// SAFETY:`
//! comment on its line or within the preceding three lines, test code
//! included. Also maintains the per-crate unsafe census the report
//! always carries (most crates pin it to zero via `#![forbid(unsafe_code)]`).

use super::finding;
use crate::lexer::TokenKind;
use crate::report::{LintReport, Rule};
use crate::source::SourceFile;

/// How many lines above an `unsafe` site a `// SAFETY:` comment may sit.
const SAFETY_COMMENT_WINDOW: usize = 3;

pub(crate) fn check(file: &SourceFile, report: &mut LintReport) {
    let census = report
        .unsafe_census
        .entry(file.crate_name.clone())
        .or_insert(0);
    let mut sites = Vec::new();
    for t in &file.tokens {
        if t.kind == TokenKind::Ident && t.text == "unsafe" {
            *census += 1;
            sites.push(t.line);
        }
    }
    for line in sites {
        if !file.has_safety_comment(line, SAFETY_COMMENT_WINDOW) {
            report.findings.push(finding(
                file,
                Rule::UnsafeAudit,
                line,
                "`unsafe` without a `// SAFETY:` comment on the site or the three lines \
                 above it — state the invariant that makes this sound"
                    .to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{file_in, run};
    use crate::report::Rule;

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = file_in("nir-sim", "crates/nir-sim/src/x.rs", "unsafe { go() }\n");
        let good = file_in(
            "nir-sim",
            "crates/nir-sim/src/x.rs",
            "// SAFETY: bounds checked above\nunsafe { go() }\n",
        );
        assert_eq!(run(&[bad]).count(Rule::UnsafeAudit), 1);
        let r = run(&[good]);
        assert_eq!(r.count(Rule::UnsafeAudit), 0);
        assert_eq!(r.unsafe_census["nir-sim"], 1);
    }
}
