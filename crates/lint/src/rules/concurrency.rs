//! Rule R — concurrency/race audit.
//!
//! PRs 6–8 added real shared-state concurrency (fleet shards, journal,
//! burn-rate latches); this rule pins its discipline statically:
//!
//! - `static mut` is flagged everywhere — it is almost always a data
//!   race waiting for a second thread (justify with
//!   `// lint: static-mut` in the vanishingly rare sound case).
//! - Non-`const` `static` items outside `crates/obs`/`crates/parallel`
//!   are shared cross-thread state in crates that are supposed to be
//!   pure; each needs a `// lint: sync` justification saying why sharing
//!   is sound (e.g. the global-allocator registration in the binaries).
//! - `Ordering::Relaxed`/`Ordering::SeqCst` outside the host crates
//!   need a `// lint: atomic` justification: `Relaxed` silently drops
//!   the happens-before edges determinism contracts lean on, and
//!   `SeqCst` is usually a reviewer-repelling default rather than a
//!   reasoned choice. (`std::cmp::Ordering`'s variants do not collide —
//!   only the two atomic orderings are matched.)

use super::{finding, ident_at, path_sep_at, HOST_CRATES};
use crate::report::{LintReport, Rule};
use crate::source::SourceFile;

pub(crate) fn check(file: &SourceFile, report: &mut LintReport) {
    let tokens = &file.tokens;
    let host = HOST_CRATES.contains(&file.crate_name.as_str());
    for i in 0..tokens.len() {
        if file.in_test[i] {
            continue;
        }
        let line = tokens[i].line;
        if ident_at(tokens, i) == Some("static") {
            if ident_at(tokens, i + 1) == Some("mut") {
                if !file.justified(line, "static-mut") {
                    report.findings.push(finding(
                        file,
                        Rule::Concurrency,
                        line,
                        "`static mut` is an un-synchronized global — any second thread is \
                         a data race; use an atomic, a `Mutex`, or `OnceLock` (or justify \
                         with `// lint: static-mut`)"
                            .to_string(),
                    ));
                }
            } else if !host && !file.justified(line, "sync") {
                report.findings.push(finding(
                    file,
                    Rule::Concurrency,
                    line,
                    "shared `static` outside crates/obs|crates/parallel — state why \
                     cross-thread sharing is sound with `// lint: sync` (or move the \
                     state into the obs/parallel host layers)"
                        .to_string(),
                ));
            }
            continue;
        }
        if !host && ident_at(tokens, i) == Some("Ordering") && path_sep_at(tokens, i + 1) {
            if let Some(order @ ("Relaxed" | "SeqCst")) = ident_at(tokens, i + 3) {
                if !file.justified(line, "atomic") {
                    report.findings.push(finding(
                        file,
                        Rule::Concurrency,
                        line,
                        format!(
                            "`Ordering::{order}` outside crates/obs|crates/parallel — \
                             atomics in result crates need a reasoned ordering; use \
                             Acquire/Release or justify with `// lint: atomic`"
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{file_in, run};
    use crate::report::Rule;

    #[test]
    fn static_mut_fires_even_in_host_crates() {
        let f = file_in(
            "obs",
            "crates/obs/src/x.rs",
            "static mut COUNTER: u64 = 0;\n",
        );
        assert_eq!(run(&[f]).count(Rule::Concurrency), 1);
    }

    #[test]
    fn shared_static_needs_sync_justification_outside_hosts() {
        let bare = file_in("cli", "crates/cli/src/x.rs", "static G: Alloc = Alloc;\n");
        assert_eq!(run(&[bare]).count(Rule::Concurrency), 1);
        let justified = file_in(
            "cli",
            "crates/cli/src/x.rs",
            "// lint: sync — Alloc is a stateless Sync handle\nstatic G: Alloc = Alloc;\n",
        );
        assert_eq!(run(&[justified]).count(Rule::Concurrency), 0);
        let in_obs = file_in("obs", "crates/obs/src/x.rs", "static G: Alloc = Alloc;\n");
        assert_eq!(run(&[in_obs]).count(Rule::Concurrency), 0);
    }

    #[test]
    fn relaxed_and_seqcst_need_atomic_justification() {
        let src = "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n";
        let in_core = file_in("core", "crates/core/src/x.rs", src);
        assert_eq!(run(&[in_core]).count(Rule::Concurrency), 1);
        let in_obs = file_in("obs", "crates/obs/src/x.rs", src);
        assert_eq!(run(&[in_obs]).count(Rule::Concurrency), 0);
        let justified = file_in(
            "core",
            "crates/core/src/x.rs",
            "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); } // lint: atomic — stats only\n",
        );
        assert_eq!(run(&[justified]).count(Rule::Concurrency), 0);
    }

    #[test]
    fn cmp_ordering_variants_do_not_collide() {
        let f = file_in(
            "ml",
            "crates/ml/src/x.rs",
            "fn f(a: f64, b: f64) { a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal); }\n",
        );
        assert_eq!(run(&[f]).count(Rule::Concurrency), 0);
    }

    #[test]
    fn lifetime_static_is_not_an_item() {
        let f = file_in(
            "core",
            "crates/core/src/x.rs",
            "fn f(s: &'static str) -> &'static str { s }\n",
        );
        assert_eq!(run(&[f]).count(Rule::Concurrency), 0);
    }
}
