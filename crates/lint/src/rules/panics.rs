//! Rule P — panic-safety ratchet.
//!
//! Counts non-test `unwrap()` / `expect(` / `panic!` / `todo!` /
//! `unimplemented!` sites per file and compares each count against the
//! committed `lint-allow.toml` `[panic]` budget. Counts above budget are
//! findings; counts below budget are warnings (ratchet the allowlist
//! down). Test code is exempt — panicking is how tests fail.

use super::{finding, ident_at, punct_at};
use crate::allowlist::Allowlist;
use crate::report::{LintReport, Rule};
use crate::source::SourceFile;

pub(crate) fn check(files: &[SourceFile], allowlist: &Allowlist, report: &mut LintReport) {
    for file in files {
        let tokens = &file.tokens;
        let mut site_lines = Vec::new();
        for i in 0..tokens.len() {
            if file.in_test[i] {
                continue;
            }
            let hit = match ident_at(tokens, i) {
                Some("unwrap") => {
                    punct_at(tokens, i.wrapping_sub(1), ".")
                        && punct_at(tokens, i + 1, "(")
                        && punct_at(tokens, i + 2, ")")
                }
                Some("expect") => {
                    punct_at(tokens, i.wrapping_sub(1), ".") && punct_at(tokens, i + 1, "(")
                }
                Some("panic" | "todo" | "unimplemented") => punct_at(tokens, i + 1, "!"),
                _ => false,
            };
            if hit {
                site_lines.push(tokens[i].line);
            }
        }
        let actual = site_lines.len();
        let allowed = allowlist.allowed(&file.rel_path);
        if actual > 0 {
            report.panic_inventory.insert(file.rel_path.clone(), actual);
        }
        if actual > allowed {
            let first_excess = site_lines[allowed];
            report.findings.push(finding(
                file,
                Rule::PanicSafety,
                first_excess,
                format!(
                    "{actual} panic site(s) (unwrap/expect/panic!/todo!/unimplemented!) but \
                     lint-allow.toml grants {allowed}; propagate errors via the crate's \
                     error types — the allowlist only ratchets down"
                ),
            ));
        } else if actual < allowed {
            report.warnings.push(format!(
                "{}: allowlist grants {allowed} panic site(s) but only {actual} remain — \
                 ratchet lint-allow.toml down",
                file.rel_path
            ));
        }
    }
    // Allowlist entries pointing at files that no longer exist.
    for (path, allowed) in &allowlist.panic {
        if !files.iter().any(|f| &f.rel_path == path) {
            report.warnings.push(format!(
                "{path}: allowlist grants {allowed} panic site(s) but the file is not in \
                 the scan set — remove the stale entry"
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::run_all;
    use super::super::testutil::{file_in, run};
    use crate::allowlist::Allowlist;
    use crate::report::Rule;
    use crate::schema::Schema;

    #[test]
    fn panic_counts_respect_allowlist_and_warn_on_slack() {
        let f = file_in(
            "core",
            "crates/core/src/x.rs",
            "fn f() { a.unwrap(); b.expect(\"m\"); panic!(\"x\"); }\n",
        );
        let mut allow = Allowlist::default();
        allow.panic.insert("crates/core/src/x.rs".into(), 3);
        let schema = Schema::default();
        let r = run_all(&[f], &allow, &schema);
        assert_eq!(r.count(Rule::PanicSafety), 0);
        assert!(r.warnings.is_empty());
        assert_eq!(r.panic_inventory["crates/core/src/x.rs"], 3);

        let f2 = file_in("core", "crates/core/src/x.rs", "fn f() { a.unwrap(); }\n");
        let r2 = run_all(&[f2], &allow, &schema);
        assert_eq!(r2.count(Rule::PanicSafety), 0);
        assert_eq!(r2.warnings.len(), 1, "{:?}", r2.warnings);
    }

    #[test]
    fn unwrap_or_else_is_not_a_panic_site() {
        let f = file_in(
            "core",
            "crates/core/src/x.rs",
            "fn f() { a.unwrap_or_else(|p| p.into_inner()); b.unwrap_or(0); }\n",
        );
        assert_eq!(run(&[f]).count(Rule::PanicSafety), 0);
    }
}
