//! Rule D — determinism.
//!
//! Outside `crates/obs` and `crates/parallel`, wall-clock reads
//! (`Instant::now`, `SystemTime::now`) and `thread::current()` identity
//! are forbidden unless the line carries `// lint: wall-clock`. In
//! result-producing crates, `HashMap`/`HashSet` are forbidden (their
//! iteration order is nondeterministic) unless the line carries
//! `// lint: ordered`.

use super::{finding, ident_at, path_sep_at, HOST_CRATES, RESULT_CRATES};
use crate::report::{LintReport, Rule};
use crate::source::SourceFile;

pub(crate) fn check(file: &SourceFile, report: &mut LintReport) {
    let tokens = &file.tokens;
    let time_banned = !HOST_CRATES.contains(&file.crate_name.as_str());
    let hash_banned = RESULT_CRATES.contains(&file.crate_name.as_str());
    for i in 0..tokens.len() {
        if file.in_test[i] {
            continue;
        }
        let line = tokens[i].line;
        if time_banned {
            if let Some(head @ ("Instant" | "SystemTime")) = ident_at(tokens, i) {
                if path_sep_at(tokens, i + 1) && ident_at(tokens, i + 3) == Some("now") {
                    if !file.justified(line, "wall-clock") {
                        report.findings.push(finding(
                            file,
                            Rule::Determinism,
                            line,
                            format!(
                                "`{head}::now()` outside crates/obs|crates/parallel makes \
                                 results depend on the wall clock; route timing through \
                                 `airfinger_obs` spans or justify with `// lint: wall-clock`"
                            ),
                        ));
                    }
                    continue;
                }
            }
            if ident_at(tokens, i) == Some("thread")
                && path_sep_at(tokens, i + 1)
                && ident_at(tokens, i + 3) == Some("current")
                && !file.justified(line, "wall-clock")
            {
                report.findings.push(finding(
                    file,
                    Rule::Determinism,
                    line,
                    "`thread::current()` identity is scheduling-dependent; results must \
                     not observe it (justify with `// lint: wall-clock` if only logged)"
                        .to_string(),
                ));
                continue;
            }
        }
        if hash_banned {
            if let Some(name @ ("HashMap" | "HashSet")) = ident_at(tokens, i) {
                if !file.justified(line, "ordered") {
                    report.findings.push(finding(
                        file,
                        Rule::Determinism,
                        line,
                        format!(
                            "`{name}` in a result-producing crate: iteration order is \
                             nondeterministic; use `BTreeMap`/`BTreeSet`/`Vec` or justify \
                             with `// lint: ordered`"
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{file_in, run};
    use crate::report::Rule;

    #[test]
    fn time_in_result_crate_fires_and_annotation_suppresses() {
        let f = file_in(
            "core",
            "crates/core/src/x.rs",
            "fn f() { let t = Instant::now(); }\n",
        );
        let r = run(&[f]);
        assert_eq!(r.count(Rule::Determinism), 1);

        let f = file_in(
            "core",
            "crates/core/src/x.rs",
            "fn f() { let t = Instant::now(); } // lint: wall-clock — display only\n",
        );
        assert_eq!(run(&[f]).count(Rule::Determinism), 0);
    }

    #[test]
    fn time_in_obs_is_exempt() {
        let f = file_in(
            "obs",
            "crates/obs/src/x.rs",
            "fn f() { let t = Instant::now(); }\n",
        );
        assert_eq!(run(&[f]).count(Rule::Determinism), 0);
    }

    #[test]
    fn hashmap_fires_only_in_result_crates() {
        let src = "use std::collections::HashMap;\n";
        let core = file_in("core", "crates/core/src/x.rs", src);
        let bench = file_in("bench", "crates/bench/src/x.rs", src);
        assert_eq!(run(&[core]).count(Rule::Determinism), 1);
        assert_eq!(run(&[bench]).count(Rule::Determinism), 0);
    }
}
