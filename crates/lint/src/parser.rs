//! Lightweight item/signature parser on top of the token stream.
//!
//! This is deliberately *not* a Rust parser: it recovers just enough
//! structure for the call-graph rules — `fn` items with their owning
//! `impl`/`trait` type, body token ranges, and the call sites inside each
//! body — with no type inference. The trade-offs are conservative: a
//! method call `.m(...)` is recorded by name and resolved later against
//! every workspace impl that could plausibly receive it, which
//! over-approximates reachability (safe for a hygiene lint, which would
//! rather scan one function too many than miss an allocating helper
//! three crates away).

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Receiver {
    /// `Owner::name(...)` — `Owner` is the path segment before the call
    /// (`Self` is kept verbatim and resolved against the enclosing impl).
    Path(String),
    /// `.name(...)` — method call on an unknown receiver type.
    Method,
    /// `name(...)` — free-function (or tuple-constructor) call.
    Plain,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Path qualifier, method, or plain call.
    pub receiver: Receiver,
    /// Callee name as written.
    pub name: String,
    /// 1-indexed source line.
    pub line: usize,
}

/// One `fn` item recovered from a file.
#[derive(Debug)]
pub struct FnItem {
    /// The function's own name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, when any.
    pub owner: Option<String>,
    /// 1-indexed line of the `fn` keyword.
    pub line: usize,
    /// Token-index range `[open, close]` of the body braces; `None` for
    /// bodyless trait signatures.
    pub body: Option<(usize, usize)>,
    /// Whether the item sits inside a `#[cfg(test)]`/`#[test]` region.
    pub is_test: bool,
    /// Whether the item carries the `// lint: hot-path-root` annotation.
    pub hot_root: bool,
    /// Call sites inside the body (nested `fn` bodies excluded — they are
    /// their own items).
    pub calls: Vec<CallSite>,
}

impl FnItem {
    /// `Owner::name` or bare `name` — how budgets and reports refer to
    /// the function.
    #[must_use]
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{owner}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Keywords that look like calls when followed by `(`.
const NON_CALL_KEYWORDS: [&str; 22] = [
    "if", "while", "for", "match", "return", "loop", "in", "as", "let", "else", "move", "mut",
    "ref", "box", "unsafe", "await", "fn", "use", "pub", "where", "break", "continue",
];

/// Parse every `fn` item in a file, with owners, bodies, and call sites.
#[must_use]
pub fn parse_items(file: &SourceFile) -> Vec<FnItem> {
    let tokens = &file.tokens;
    let mut items: Vec<FnItem> = Vec::new();
    // Stack of (owner, body-close token index) for impl/trait scopes.
    let mut scopes: Vec<(Option<String>, usize)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while scopes.last().is_some_and(|&(_, end)| i > end) {
            scopes.pop();
        }
        let t = &tokens[i];
        if t.kind == TokenKind::Ident && (t.text == "impl" || t.text == "trait") {
            if let Some((owner, open)) = scope_owner(tokens, i, &t.text) {
                let close = matching_brace(tokens, open);
                scopes.push((owner, close));
                i = open + 1;
                continue;
            }
        }
        if t.kind == TokenKind::Ident && t.text == "fn" {
            if let Some(name) = ident_at(tokens, i + 1) {
                let owner = scopes.last().and_then(|(o, _)| o.clone());
                let body = fn_body(tokens, i + 2);
                let line = t.line;
                items.push(FnItem {
                    name: name.to_string(),
                    owner,
                    line,
                    body,
                    is_test: file.in_test.get(i).copied().unwrap_or(false),
                    hot_root: file.justified(line, "hot-path-root"),
                    calls: Vec::new(),
                });
            }
        }
        i += 1;
    }
    // Collect call sites, excluding the body ranges of nested fn items so
    // a nested helper's calls are attributed to the helper, not its host.
    let bodies: Vec<Option<(usize, usize)>> = items.iter().map(|it| it.body).collect();
    for (idx, item) in items.iter_mut().enumerate() {
        let Some((open, close)) = item.body else {
            continue;
        };
        let nested: Vec<(usize, usize)> = bodies
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != idx)
            .filter_map(|(_, b)| *b)
            .filter(|&(o, c)| o > open && c < close)
            .collect();
        item.calls = calls_in(tokens, open + 1, close, &nested);
    }
    items
}

/// Owner type of an `impl`/`trait` header starting at `i`; returns the
/// owner (None when unrecoverable, e.g. `impl Trait for [T; N]`) and the
/// index of the opening body brace. `None` overall when the header has no
/// body brace (e.g. the `impl` in `impl Trait` return-position types).
fn scope_owner(tokens: &[Token], i: usize, keyword: &str) -> Option<(Option<String>, usize)> {
    let open = body_brace_after(tokens, i + 1)?;
    if keyword == "trait" {
        return Some((ident_at(tokens, i + 1).map(str::to_string), open));
    }
    // `impl<G> Type<G> {` or `impl<G> Trait for Type<G> {` — the owner is
    // the last path segment of the type after `for` (when present) or
    // after the generics otherwise.
    let mut j = i + 1;
    if punct_at(tokens, j, "<") {
        j = skip_angles(tokens, j);
    }
    let mut for_pos = None;
    let mut k = j;
    while k < open {
        if tokens[k].kind == TokenKind::Ident && tokens[k].text == "for" {
            for_pos = Some(k);
            break;
        }
        k += 1;
    }
    let start = for_pos.map_or(j, |p| p + 1);
    Some((last_path_segment(tokens, start, open), open))
}

/// Last segment of the leading type path in `[start, end)`, skipping
/// reference/pointer sigils.
fn last_path_segment(tokens: &[Token], start: usize, end: usize) -> Option<String> {
    let mut j = start;
    while j < end
        && tokens[j].kind == TokenKind::Punct
        && matches!(tokens[j].text.as_str(), "&" | "*")
    {
        j += 1;
    }
    if j < end && tokens[j].kind == TokenKind::Ident && tokens[j].text == "mut" {
        j += 1;
    }
    let mut last = None;
    while j < end {
        let Some(seg) = ident_at(tokens, j) else {
            break;
        };
        last = Some(seg.to_string());
        if path_sep_at(tokens, j + 1) {
            j += 3;
        } else {
            break;
        }
    }
    last
}

/// The opening `{` of the item body starting the scan at `from`, or
/// `None` when the item ends in `;` first (bodyless).
fn body_brace_after(tokens: &[Token], from: usize) -> Option<usize> {
    let mut bracket_depth = 0usize;
    let mut j = from;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "[" | "(" => bracket_depth += 1,
                "]" | ")" => bracket_depth = bracket_depth.saturating_sub(1),
                "{" if bracket_depth == 0 => return Some(j),
                ";" if bracket_depth == 0 => return None,
                _ => {}
            }
        }
        j += 1;
    }
    None
}

/// Body range of a `fn` whose signature starts at `from` (just past the
/// name).
fn fn_body(tokens: &[Token], from: usize) -> Option<(usize, usize)> {
    let open = body_brace_after(tokens, from)?;
    Some((open, matching_brace(tokens, open)))
}

/// Index of the `}` matching the `{` at `open` (or the last token when
/// unbalanced — the lexer guarantees balance for compiling code).
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.kind == TokenKind::Punct {
            if t.text == "{" {
                depth += 1;
            } else if t.text == "}" {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Skip a balanced `<...>` generics group starting at `open` (which must
/// be `<`); `->` arrows inside bounds do not close the group.
fn skip_angles(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.kind == TokenKind::Punct {
            if t.text == "<" {
                depth += 1;
            } else if t.text == ">" && !punct_at(tokens, j.wrapping_sub(1), "-") {
                depth -= 1;
                if depth <= 0 {
                    return j + 1;
                }
            }
        }
        j += 1;
    }
    j
}

/// Call sites in the token range `[start, end)`, skipping nested ranges.
fn calls_in(tokens: &[Token], start: usize, end: usize, skip: &[(usize, usize)]) -> Vec<CallSite> {
    let mut calls = Vec::new();
    let mut j = start;
    while j < end {
        if let Some(&(_, close)) = skip.iter().find(|&&(o, c)| j >= o && j <= c) {
            j = close + 1;
            continue;
        }
        let is_call = tokens[j].kind == TokenKind::Ident
            && punct_at(tokens, j + 1, "(")
            && !NON_CALL_KEYWORDS.contains(&tokens[j].text.as_str())
            // A nested `fn name(` is a declaration, not a call.
            && ident_at(tokens, j.wrapping_sub(1)) != Some("fn");
        if is_call {
            let name = tokens[j].text.clone();
            let line = tokens[j].line;
            let receiver = if punct_at(tokens, j.wrapping_sub(1), ".") {
                Receiver::Method
            } else if j >= 3 && path_sep_at(tokens, j - 2) {
                match ident_at(tokens, j - 3) {
                    Some(owner) => Receiver::Path(owner.to_string()),
                    None => Receiver::Plain,
                }
            } else {
                Receiver::Plain
            };
            calls.push(CallSite {
                receiver,
                name,
                line,
            });
        }
        j += 1;
    }
    calls
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    tokens
        .get(i)
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
}

fn punct_at(tokens: &[Token], i: usize, p: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text == p)
}

fn path_sep_at(tokens: &[Token], i: usize) -> bool {
    punct_at(tokens, i, ":") && punct_at(tokens, i + 1, ":")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(src: &str) -> Vec<FnItem> {
        let file = SourceFile::parse("crates/demo/src/lib.rs".into(), "demo".into(), src);
        parse_items(&file)
    }

    #[test]
    fn free_and_impl_fns_get_owners() {
        let items = parsed(
            "fn free() {}\n\
             struct Engine;\n\
             impl Engine { pub fn push(&mut self) {} }\n\
             impl Drop for Engine { fn drop(&mut self) {} }\n",
        );
        let quals: Vec<String> = items.iter().map(FnItem::qualified).collect();
        assert_eq!(quals, ["free", "Engine::push", "Engine::drop"]);
    }

    #[test]
    fn generic_impl_headers_resolve_the_type() {
        let items = parsed(
            "impl<T: Fn() -> bool> Holder<T> { fn call(&self) {} }\n\
             impl<T> From<T> for Wrapper<T> { fn from(t: T) -> Self { Wrapper(t) } }\n",
        );
        let quals: Vec<String> = items.iter().map(FnItem::qualified).collect();
        assert_eq!(quals, ["Holder::call", "Wrapper::from"]);
    }

    #[test]
    fn trait_decls_own_their_default_methods() {
        let items = parsed(
            "trait Sink { fn put(&mut self, v: f64); fn flush(&mut self) { self.put(0.0) } }\n",
        );
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].qualified(), "Sink::put");
        assert!(items[0].body.is_none());
        assert_eq!(items[1].qualified(), "Sink::flush");
        assert_eq!(items[1].calls.len(), 1);
        assert_eq!(items[1].calls[0].receiver, Receiver::Method);
    }

    #[test]
    fn call_sites_classify_path_method_plain() {
        let items = parsed(
            "fn f() {\n\
             let v = Vec::with_capacity(4);\n\
             helper(1);\n\
             v.clone();\n\
             Self::assoc();\n\
             if x(y) { }\n\
             mac!(arg);\n\
             }\n",
        );
        let calls = &items[0].calls;
        let shapes: Vec<(Receiver, &str)> = calls
            .iter()
            .map(|c| (c.receiver.clone(), c.name.as_str()))
            .collect();
        assert_eq!(
            shapes,
            [
                (Receiver::Path("Vec".into()), "with_capacity"),
                (Receiver::Plain, "helper"),
                (Receiver::Method, "clone"),
                (Receiver::Path("Self".into()), "assoc"),
                (Receiver::Plain, "x"),
            ],
            "macro invocations and keywords must not appear"
        );
    }

    #[test]
    fn nested_fn_bodies_are_not_attributed_to_the_host() {
        let items = parsed(
            "fn outer() {\n\
             fn inner() { alloc_here(); }\n\
             outer_call();\n\
             }\n",
        );
        assert_eq!(items.len(), 2);
        let outer = items.iter().find(|i| i.name == "outer").unwrap();
        let inner = items.iter().find(|i| i.name == "inner").unwrap();
        let outer_names: Vec<&str> = outer.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(outer_names, ["outer_call"]);
        let inner_names: Vec<&str> = inner.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(inner_names, ["alloc_here"]);
    }

    #[test]
    fn hot_root_annotation_and_test_flag() {
        let items = parsed(
            "// lint: hot-path-root\n\
             pub fn push() {}\n\
             #[cfg(test)]\nmod tests {\n fn t() {}\n}\n",
        );
        assert!(items[0].hot_root);
        assert!(!items[0].is_test);
        assert!(items[1].is_test);
        assert!(!items[1].hot_root);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let items = parsed("struct S { f: fn(usize) -> bool }\nfn real() {}\n");
        let names: Vec<&str> = items.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, ["real"]);
    }

    #[test]
    fn array_types_in_signatures_do_not_end_the_item() {
        let items = parsed("fn takes(xs: [u8; 4]) { work(); }\n");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].calls.len(), 1);
        assert_eq!(items[0].calls[0].name, "work");
    }
}
