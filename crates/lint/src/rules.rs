//! The five rule families: (D) determinism, (P) panic-safety ratchet,
//! (S) metric-schema conformance, (U) unsafe audit, (C) paper-constant
//! hygiene. Each rule scans the lexed token streams — never raw text —
//! so strings, comments, and doc examples can't produce false positives.

use crate::allowlist::Allowlist;
use crate::lexer::{Token, TokenKind};
use crate::report::{Finding, LintReport, Rule};
use crate::schema::{is_snake_case, Schema};
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// Crates whose whole purpose is timing/threading — rule D's time ban
/// does not apply there.
const TIME_EXEMPT_CRATES: [&str; 2] = ["obs", "parallel"];

/// Result-producing crates: anything nondeterministic here corrupts the
/// paper-reproduction numbers, so rules D-hash and C apply.
const RESULT_CRATES: [&str; 4] = ["core", "dsp", "features", "ml"];

/// The one file allowed to define paper constants.
const CONFIG_FILE: &str = "crates/core/src/config.rs";

/// How many lines above an `unsafe` site a `// SAFETY:` comment may sit.
const SAFETY_COMMENT_WINDOW: usize = 3;

/// Run every rule over the loaded workspace.
#[must_use]
pub fn run_all(files: &[SourceFile], allowlist: &Allowlist, schema: &Schema) -> LintReport {
    let mut report = LintReport {
        files_scanned: files.len(),
        ..Default::default()
    };
    for file in files {
        determinism(file, &mut report);
        unsafe_audit(file, &mut report);
        paper_constants(file, &mut report);
    }
    panic_safety(files, allowlist, &mut report);
    metric_schema(files, schema, &mut report);
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
}

fn finding(file: &SourceFile, rule: Rule, line: usize, message: String) -> Finding {
    Finding {
        rule,
        file: file.rel_path.clone(),
        line,
        message,
        excerpt: file.line_text(line).trim().to_string(),
    }
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    tokens
        .get(i)
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
}

fn punct_at(tokens: &[Token], i: usize, p: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text == p)
}

fn path_sep_at(tokens: &[Token], i: usize) -> bool {
    punct_at(tokens, i, ":") && punct_at(tokens, i + 1, ":")
}

/// Rule D — determinism.
///
/// Outside `crates/obs` and `crates/parallel`, wall-clock reads
/// (`Instant::now`, `SystemTime::now`) and `thread::current()` identity
/// are forbidden unless the line carries `// lint: wall-clock`. In
/// result-producing crates, `HashMap`/`HashSet` are forbidden (their
/// iteration order is nondeterministic) unless the line carries
/// `// lint: ordered`.
fn determinism(file: &SourceFile, report: &mut LintReport) {
    let tokens = &file.tokens;
    let time_banned = !TIME_EXEMPT_CRATES.contains(&file.crate_name.as_str());
    let hash_banned = RESULT_CRATES.contains(&file.crate_name.as_str());
    for i in 0..tokens.len() {
        if file.in_test[i] {
            continue;
        }
        let line = tokens[i].line;
        if time_banned {
            if let Some(head @ ("Instant" | "SystemTime")) = ident_at(tokens, i) {
                if path_sep_at(tokens, i + 1) && ident_at(tokens, i + 3) == Some("now") {
                    if !file.justified(line, "wall-clock") {
                        report.findings.push(finding(
                            file,
                            Rule::Determinism,
                            line,
                            format!(
                                "`{head}::now()` outside crates/obs|crates/parallel makes \
                                 results depend on the wall clock; route timing through \
                                 `airfinger_obs` spans or justify with `// lint: wall-clock`"
                            ),
                        ));
                    }
                    continue;
                }
            }
            if ident_at(tokens, i) == Some("thread")
                && path_sep_at(tokens, i + 1)
                && ident_at(tokens, i + 3) == Some("current")
                && !file.justified(line, "wall-clock")
            {
                report.findings.push(finding(
                    file,
                    Rule::Determinism,
                    line,
                    "`thread::current()` identity is scheduling-dependent; results must \
                     not observe it (justify with `// lint: wall-clock` if only logged)"
                        .to_string(),
                ));
                continue;
            }
        }
        if hash_banned {
            if let Some(name @ ("HashMap" | "HashSet")) = ident_at(tokens, i) {
                if !file.justified(line, "ordered") {
                    report.findings.push(finding(
                        file,
                        Rule::Determinism,
                        line,
                        format!(
                            "`{name}` in a result-producing crate: iteration order is \
                             nondeterministic; use `BTreeMap`/`BTreeSet`/`Vec` or justify \
                             with `// lint: ordered`"
                        ),
                    ));
                }
            }
        }
    }
}

/// Rule P — panic-safety ratchet.
///
/// Counts non-test `unwrap()` / `expect(` / `panic!` / `todo!` /
/// `unimplemented!` sites per file and compares each count against the
/// committed `lint-allow.toml` `[panic]` budget. Counts above budget are
/// findings; counts below budget are warnings (ratchet the allowlist
/// down). Test code is exempt — panicking is how tests fail.
fn panic_safety(files: &[SourceFile], allowlist: &Allowlist, report: &mut LintReport) {
    for file in files {
        let tokens = &file.tokens;
        let mut site_lines = Vec::new();
        for i in 0..tokens.len() {
            if file.in_test[i] {
                continue;
            }
            let hit = match ident_at(tokens, i) {
                Some("unwrap") => {
                    punct_at(tokens, i.wrapping_sub(1), ".")
                        && punct_at(tokens, i + 1, "(")
                        && punct_at(tokens, i + 2, ")")
                }
                Some("expect") => {
                    punct_at(tokens, i.wrapping_sub(1), ".") && punct_at(tokens, i + 1, "(")
                }
                Some("panic" | "todo" | "unimplemented") => punct_at(tokens, i + 1, "!"),
                _ => false,
            };
            if hit {
                site_lines.push(tokens[i].line);
            }
        }
        let actual = site_lines.len();
        let allowed = allowlist.allowed(&file.rel_path);
        if actual > 0 {
            report.panic_inventory.insert(file.rel_path.clone(), actual);
        }
        if actual > allowed {
            let first_excess = site_lines[allowed];
            report.findings.push(finding(
                file,
                Rule::PanicSafety,
                first_excess,
                format!(
                    "{actual} panic site(s) (unwrap/expect/panic!/todo!/unimplemented!) but \
                     lint-allow.toml grants {allowed}; propagate errors via the crate's \
                     error types — the allowlist only ratchets down"
                ),
            ));
        } else if actual < allowed {
            report.warnings.push(format!(
                "{}: allowlist grants {allowed} panic site(s) but only {actual} remain — \
                 ratchet lint-allow.toml down",
                file.rel_path
            ));
        }
    }
    // Allowlist entries pointing at files that no longer exist.
    for (path, allowed) in &allowlist.panic {
        if !files.iter().any(|f| &f.rel_path == path) {
            report.warnings.push(format!(
                "{path}: allowlist grants {allowed} panic site(s) but the file is not in \
                 the scan set — remove the stale entry"
            ));
        }
    }
}

/// One metric call site.
struct MetricSite<'a> {
    file: &'a SourceFile,
    line: usize,
    kind: &'static str,
    name: String,
}

/// Rule S — metric-schema conformance.
///
/// Extracts the name of every `counter!` / `gauge!` / `histogram!` /
/// `span!` / `span_with(` call site and validates it against the
/// DESIGN.md §9 vocabulary plus the suffix conventions: counters end
/// `_total`, histograms (and spans, which feed histograms) end
/// `_seconds`, gauges end in neither, all names are `snake_case`, and no
/// name is reused across metric kinds.
fn metric_schema(files: &[SourceFile], schema: &Schema, report: &mut LintReport) {
    let mut sites: Vec<MetricSite<'_>> = Vec::new();
    for file in files {
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            if file.in_test[i] {
                continue;
            }
            let (kind, name_idx) = match ident_at(tokens, i) {
                Some(macro_name @ ("counter" | "gauge" | "histogram" | "span"))
                    if punct_at(tokens, i + 1, "!") && punct_at(tokens, i + 2, "(") =>
                {
                    let kind = match macro_name {
                        "counter" => "counter",
                        "gauge" => "gauge",
                        _ => "histogram",
                    };
                    (kind, i + 3)
                }
                Some("span_with") if punct_at(tokens, i + 1, "(") => ("histogram", i + 2),
                _ => continue,
            };
            let Some(name_tok) = tokens.get(name_idx).filter(|t| t.kind == TokenKind::Str) else {
                continue;
            };
            sites.push(MetricSite {
                file,
                line: name_tok.line,
                kind,
                name: name_tok.text.clone(),
            });
        }
    }
    let mut kinds_by_name: BTreeMap<&str, Vec<&MetricSite<'_>>> = BTreeMap::new();
    for site in &sites {
        kinds_by_name.entry(&site.name).or_default().push(site);
        let name = &site.name;
        let mut problems = Vec::new();
        if !is_snake_case(name) {
            problems.push("metric names must be snake_case".to_string());
        }
        match site.kind {
            "counter" if !name.ends_with("_total") => {
                problems.push("counter names must end `_total`".to_string());
            }
            "histogram" if !name.ends_with("_seconds") => {
                problems.push("histogram/span names must end `_seconds`".to_string());
            }
            "gauge" if name.ends_with("_total") || name.ends_with("_seconds") => {
                problems
                    .push("gauge names must not use the `_total`/`_seconds` suffixes".to_string());
            }
            _ => {}
        }
        if !schema.contains(name) {
            problems.push("not in the DESIGN.md §9 stable schema — add it there first".to_string());
        }
        for p in problems {
            report.findings.push(finding(
                site.file,
                Rule::MetricSchema,
                site.line,
                format!("metric `{name}` ({}): {p}", site.kind),
            ));
        }
    }
    for (name, sites) in &kinds_by_name {
        let mut kinds: Vec<&str> = sites.iter().map(|s| s.kind).collect();
        kinds.sort_unstable();
        kinds.dedup();
        if kinds.len() > 1 {
            let site = sites
                .iter()
                .find(|s| s.kind != sites[0].kind)
                .unwrap_or(&sites[0]);
            report.findings.push(finding(
                site.file,
                Rule::MetricSchema,
                site.line,
                format!(
                    "metric `{name}` is registered as multiple kinds ({}) — names are \
                     unique per kind in the §9 schema",
                    kinds.join(" and ")
                ),
            ));
        }
    }
}

/// Rule U — unsafe audit.
///
/// Every `unsafe` site (block, fn, impl, trait) needs a `// SAFETY:`
/// comment on its line or within the preceding three lines, test code
/// included. Also maintains the per-crate unsafe census the report
/// always carries (most crates pin it to zero via `#![forbid(unsafe_code)]`).
fn unsafe_audit(file: &SourceFile, report: &mut LintReport) {
    let census = report
        .unsafe_census
        .entry(file.crate_name.clone())
        .or_insert(0);
    let mut sites = Vec::new();
    for t in &file.tokens {
        if t.kind == TokenKind::Ident && t.text == "unsafe" {
            *census += 1;
            sites.push(t.line);
        }
    }
    for line in sites {
        if !file.has_safety_comment(line, SAFETY_COMMENT_WINDOW) {
            report.findings.push(finding(
                file,
                Rule::UnsafeAudit,
                line,
                "`unsafe` without a `// SAFETY:` comment on the site or the three lines \
                 above it — state the invariant that makes this sound"
                    .to_string(),
            ));
        }
    }
}

/// A paper constant rule C watches for: the literal values and the
/// identifier fragments that mark a line as talking about that constant.
struct PaperConst {
    literals: &'static [&'static str],
    ident_marks: fn(&str) -> bool,
    what: &'static str,
}

const PAPER_CONSTS: [PaperConst; 4] = [
    PaperConst {
        literals: &["100.0"],
        ident_marks: |id| id.contains("rate") || id == "hz" || id.ends_with("_hz"),
        what: "the 100 Hz sample rate",
    },
    PaperConst {
        literals: &["0.1", "100"],
        ident_marks: |id| id.contains("merge") || id == "t_e" || id.starts_with("t_e_"),
        what: "the `t_e` = 100 ms merge gap",
    },
    PaperConst {
        literals: &["30.0", "0.03"],
        ident_marks: |id| id == "ig" || id.starts_with("ig_") || id.ends_with("_ig"),
        what: "the `I_g` = 30 ms family threshold",
    },
    PaperConst {
        literals: &["25"],
        ident_marks: |id| id.contains("feature"),
        what: "the 25-feature count",
    },
];

/// Rule C — paper-constant hygiene.
///
/// The paper's magic numbers live in `crates/core/src/config.rs` (or a
/// crate's named constant) and nowhere else. In result-producing crates,
/// a line that re-hardcodes one of them next to an identifier naming the
/// concept is flagged unless it carries `// lint: paper-const`.
fn paper_constants(file: &SourceFile, report: &mut LintReport) {
    if !RESULT_CRATES.contains(&file.crate_name.as_str()) || file.rel_path == CONFIG_FILE {
        return;
    }
    // Group non-test tokens by line: lowercased identifiers + numbers.
    let mut by_line: BTreeMap<usize, (Vec<String>, Vec<String>)> = BTreeMap::new();
    for (t, &in_test) in file.tokens.iter().zip(&file.in_test) {
        if in_test {
            continue;
        }
        let entry = by_line.entry(t.line).or_default();
        match t.kind {
            TokenKind::Ident => entry.0.push(t.text.to_lowercase()),
            TokenKind::Number => entry.1.push(t.text.clone()),
            _ => {}
        }
    }
    for (&line, (idents, numbers)) in &by_line {
        if file.justified(line, "paper-const") {
            continue;
        }
        for rule in &PAPER_CONSTS {
            let num = numbers.iter().find(|n| rule.literals.contains(&n.as_str()));
            let marked = idents.iter().any(|id| (rule.ident_marks)(id));
            if let (Some(num), true) = (num, marked) {
                report.findings.push(finding(
                    file,
                    Rule::PaperConst,
                    line,
                    format!(
                        "`{num}` re-hardcodes {what} outside {CONFIG_FILE}; read it from \
                         the config (or justify with `// lint: paper-const`)",
                        what = rule.what
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file_in(crate_name: &str, rel: &str, src: &str) -> SourceFile {
        SourceFile::parse(rel.to_string(), crate_name.to_string(), src)
    }

    fn run(files: &[SourceFile]) -> LintReport {
        let allow = Allowlist::default();
        let schema = Schema::from_design_md(
            "## 9. Schema\n`pipeline_windows_total` `pipeline_stage_seconds` \
             `pipeline_otsu_threshold` `stage` `sbc`\n",
        )
        .unwrap_or_default();
        run_all(files, &allow, &schema)
    }

    #[test]
    fn time_in_result_crate_fires_and_annotation_suppresses() {
        let f = file_in(
            "core",
            "crates/core/src/x.rs",
            "fn f() { let t = Instant::now(); }\n",
        );
        let r = run(&[f]);
        assert_eq!(r.count(Rule::Determinism), 1);

        let f = file_in(
            "core",
            "crates/core/src/x.rs",
            "fn f() { let t = Instant::now(); } // lint: wall-clock — display only\n",
        );
        assert_eq!(run(&[f]).count(Rule::Determinism), 0);
    }

    #[test]
    fn time_in_obs_is_exempt() {
        let f = file_in(
            "obs",
            "crates/obs/src/x.rs",
            "fn f() { let t = Instant::now(); }\n",
        );
        assert_eq!(run(&[f]).count(Rule::Determinism), 0);
    }

    #[test]
    fn hashmap_fires_only_in_result_crates() {
        let src = "use std::collections::HashMap;\n";
        let core = file_in("core", "crates/core/src/x.rs", src);
        let bench = file_in("bench", "crates/bench/src/x.rs", src);
        assert_eq!(run(&[core]).count(Rule::Determinism), 1);
        assert_eq!(run(&[bench]).count(Rule::Determinism), 0);
    }

    #[test]
    fn panic_counts_respect_allowlist_and_warn_on_slack() {
        let f = file_in(
            "core",
            "crates/core/src/x.rs",
            "fn f() { a.unwrap(); b.expect(\"m\"); panic!(\"x\"); }\n",
        );
        let mut allow = Allowlist::default();
        allow.panic.insert("crates/core/src/x.rs".into(), 3);
        let schema = Schema::default();
        let r = run_all(&[f], &allow, &schema);
        assert_eq!(r.count(Rule::PanicSafety), 0);
        assert!(r.warnings.is_empty());
        assert_eq!(r.panic_inventory["crates/core/src/x.rs"], 3);

        let f2 = file_in("core", "crates/core/src/x.rs", "fn f() { a.unwrap(); }\n");
        let r2 = run_all(&[f2], &allow, &schema);
        assert_eq!(r2.count(Rule::PanicSafety), 0);
        assert_eq!(r2.warnings.len(), 1, "{:?}", r2.warnings);
    }

    #[test]
    fn unwrap_or_else_is_not_a_panic_site() {
        let f = file_in(
            "core",
            "crates/core/src/x.rs",
            "fn f() { a.unwrap_or_else(|p| p.into_inner()); b.unwrap_or(0); }\n",
        );
        assert_eq!(run(&[f]).count(Rule::PanicSafety), 0);
    }

    #[test]
    fn metric_schema_checks_suffix_membership_and_kind_clash() {
        let f = file_in(
            "core",
            "crates/core/src/x.rs",
            "fn f() {\n\
             obs::counter!(\"pipeline_windows_total\").inc();\n\
             obs::counter!(\"bad_counter\").inc();\n\
             obs::gauge!(\"pipeline_stage_seconds\").set(1.0);\n\
             }\n",
        );
        let r = run(&[f]);
        // bad_counter: wrong suffix + not in schema; gauge reusing a
        // histogram-suffixed schema name: suffix misuse (kind clash needs
        // a second kind in the same run).
        assert_eq!(r.count(Rule::MetricSchema), 3, "{:#?}", r.findings);
    }

    #[test]
    fn metric_kind_clash_detected() {
        let f = file_in(
            "core",
            "crates/core/src/x.rs",
            "fn f() {\n\
             obs::counter!(\"pipeline_windows_total\").inc();\n\
             obs::histogram!(\"pipeline_windows_total\").observe(1.0);\n\
             }\n",
        );
        let r = run(&[f]);
        let clash = r
            .findings
            .iter()
            .filter(|f| f.message.contains("multiple kinds"))
            .count();
        assert_eq!(clash, 1, "{:#?}", r.findings);
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = file_in("nir-sim", "crates/nir-sim/src/x.rs", "unsafe { go() }\n");
        let good = file_in(
            "nir-sim",
            "crates/nir-sim/src/x.rs",
            "// SAFETY: bounds checked above\nunsafe { go() }\n",
        );
        assert_eq!(run(&[bad]).count(Rule::UnsafeAudit), 1);
        let r = run(&[good]);
        assert_eq!(r.count(Rule::UnsafeAudit), 0);
        assert_eq!(r.unsafe_census["nir-sim"], 1);
    }

    #[test]
    fn paper_const_fires_outside_config_only() {
        let src = "fn f() { let sample_rate_hz = 100.0; }\n";
        let in_core = file_in("core", "crates/core/src/x.rs", src);
        let in_config = file_in("core", "crates/core/src/config.rs", src);
        let in_bench = file_in("bench", "crates/bench/src/x.rs", src);
        assert_eq!(run(&[in_core]).count(Rule::PaperConst), 1);
        assert_eq!(run(&[in_config]).count(Rule::PaperConst), 0);
        assert_eq!(run(&[in_bench]).count(Rule::PaperConst), 0);
        let justified = file_in(
            "core",
            "crates/core/src/x.rs",
            "fn f() { let sample_rate_hz = 100.0; } // lint: paper-const — doc example\n",
        );
        assert_eq!(run(&[justified]).count(Rule::PaperConst), 0);
    }

    #[test]
    fn bare_literal_without_concept_ident_is_fine() {
        let f = file_in("dsp", "crates/dsp/src/x.rs", "fn f() { let x = 100.0; }\n");
        assert_eq!(run(&[f]).count(Rule::PaperConst), 0);
    }

    #[test]
    fn test_regions_are_exempt_from_d_p_s_c() {
        let f = file_in(
            "core",
            "crates/core/src/x.rs",
            "#[cfg(test)]\nmod tests {\n fn t() {\n let t = Instant::now();\n x.unwrap();\n \
             obs::counter!(\"nope\").inc();\n let sample_rate_hz = 100.0;\n }\n}\n",
        );
        let r = run(&[f]);
        assert!(r.passed(), "{:#?}", r.findings);
    }
}
