//! Finding model and the two output formats: a human diff-style report
//! and machine-readable JSON (hand-rolled — the linter is zero-dependency
//! by design so it can never be broken by the code it checks).
//!
//! Both renderers are deterministic functions of the findings alone: no
//! wall-clock, no host paths, and every map is a `BTreeMap`, so repeated
//! runs over the same workspace produce byte-identical reports (pinned by
//! an integration test).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The eight rule families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Determinism (wall-clock, thread ids, unordered iteration).
    Determinism,
    /// Panic-safety ratchet against `lint-allow.toml`.
    PanicSafety,
    /// Metric-name schema conformance (DESIGN.md §9).
    MetricSchema,
    /// Unsafe-block audit (`// SAFETY:` comments).
    UnsafeAudit,
    /// Paper-constant hygiene (100 Hz, `t_e`, `I_g`, 25 features).
    PaperConst,
    /// Hot-path hygiene: allocation/lock constructs transitively
    /// reachable from `// lint: hot-path-root` functions.
    HotPath,
    /// Concurrency/race audit (`static mut`, shared statics, atomic
    /// orderings).
    Concurrency,
    /// Metric/event liveness (dead §9 rows, undocumented event kinds).
    MetricLiveness,
}

impl Rule {
    /// The single-letter code used in reports
    /// (`D`/`P`/`S`/`U`/`C`/`H`/`R`/`M`).
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            Rule::Determinism => "D",
            Rule::PanicSafety => "P",
            Rule::MetricSchema => "S",
            Rule::UnsafeAudit => "U",
            Rule::PaperConst => "C",
            Rule::HotPath => "H",
            Rule::Concurrency => "R",
            Rule::MetricLiveness => "M",
        }
    }
}

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule family fired.
    pub rule: Rule,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Human explanation, including the escape hatch where one exists.
    pub message: String,
    /// The offending source line, trimmed, for the diff-style excerpt.
    pub excerpt: String,
}

/// The whole run: findings plus the censuses the tool always reports.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Rule violations (the run fails when non-empty).
    pub findings: Vec<Finding>,
    /// Non-fatal notes (e.g. stale allowlist entries that can ratchet).
    pub warnings: Vec<String>,
    /// Per-crate count of `unsafe` sites (rule U census).
    pub unsafe_census: BTreeMap<String, usize>,
    /// Per-file count of non-test panic sites (rule P inventory).
    pub panic_inventory: BTreeMap<String, usize>,
    /// Per-function count of hot-path allocation/lock sites (rule H
    /// inventory, keyed `path::function` like the `[hot-path]` budget).
    pub hot_path_inventory: BTreeMap<String, usize>,
    /// Number of functions the rule-H walk reached from the annotated
    /// hot-path roots.
    pub hot_path_functions: usize,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Whether the workspace is clean.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings of one rule family.
    #[must_use]
    pub fn count(&self, rule: Rule) -> usize {
        self.findings.iter().filter(|f| f.rule == rule).count()
    }

    /// Render the human diff-style report.
    #[must_use]
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        let mut by_file: BTreeMap<&str, Vec<&Finding>> = BTreeMap::new();
        for f in &self.findings {
            by_file.entry(&f.file).or_default().push(f);
        }
        for (file, findings) in &by_file {
            let _ = writeln!(out, "--- {file}");
            for f in findings {
                let _ = writeln!(out, "@@ line {} [{}]", f.line, f.rule.code());
                if !f.excerpt.is_empty() {
                    let _ = writeln!(out, "-    {}", f.excerpt);
                }
                let _ = writeln!(out, "     {}", f.message);
            }
            out.push('\n');
        }
        for w in &self.warnings {
            let _ = writeln!(out, "warning: {w}");
        }
        let _ = writeln!(
            out,
            "airfinger-lint: {} file(s) scanned, {} hot-path fn(s), {} finding(s) \
             [D:{} P:{} S:{} U:{} C:{} H:{} R:{} M:{}], {} warning(s)",
            self.files_scanned,
            self.hot_path_functions,
            self.findings.len(),
            self.count(Rule::Determinism),
            self.count(Rule::PanicSafety),
            self.count(Rule::MetricSchema),
            self.count(Rule::UnsafeAudit),
            self.count(Rule::PaperConst),
            self.count(Rule::HotPath),
            self.count(Rule::Concurrency),
            self.count(Rule::MetricLiveness),
            self.warnings.len(),
        );
        out
    }

    /// Render the machine-readable JSON report.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"passed\": {},", self.passed());
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let comma = if i + 1 < self.findings.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}{comma}",
                json_str(f.rule.code()),
                json_str(&f.file),
                f.line,
                json_str(&f.message),
            );
        }
        out.push_str("  ],\n");
        out.push_str("  \"warnings\": [");
        for (i, w) in self.warnings.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(w));
        }
        out.push_str("],\n");
        out.push_str("  \"unsafe_census\": {");
        for (i, (krate, n)) in self.unsafe_census.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: {n}", json_str(krate));
        }
        out.push_str("},\n");
        out.push_str("  \"panic_inventory\": {");
        for (i, (file, n)) in self.panic_inventory.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: {n}", json_str(file));
        }
        out.push_str("},\n");
        out.push_str("  \"hot_path\": {\n");
        let _ = writeln!(
            out,
            "    \"reachable_functions\": {},",
            self.hot_path_functions
        );
        out.push_str("    \"inventory\": {");
        for (i, (key, n)) in self.hot_path_inventory.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: {n}", json_str(key));
        }
        out.push_str("}\n  }\n}\n");
        out
    }
}

/// Escape a string for JSON.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_report() -> LintReport {
        let mut r = LintReport {
            files_scanned: 2,
            hot_path_functions: 3,
            ..Default::default()
        };
        r.findings.push(Finding {
            rule: Rule::Determinism,
            file: "crates/core/src/a.rs".into(),
            line: 7,
            message: "message with \"quotes\"".into(),
            excerpt: "let t = Instant::now();".into(),
        });
        r.warnings.push("stale entry".into());
        r.unsafe_census.insert("core".into(), 0);
        r.panic_inventory.insert("crates/core/src/a.rs".into(), 1);
        r.hot_path_inventory
            .insert("crates/core/src/a.rs::Engine::push".into(), 2);
        r
    }

    #[test]
    fn human_report_is_diff_style() {
        let text = demo_report().render_human();
        assert!(text.contains("--- crates/core/src/a.rs"));
        assert!(text.contains("@@ line 7 [D]"));
        assert!(text.contains("-    let t = Instant::now();"));
        assert!(text.contains("warning: stale entry"));
        assert!(text.contains("1 finding(s) [D:1 P:0 S:0 U:0 C:0 H:0 R:0 M:0]"));
        assert!(text.contains("3 hot-path fn(s)"));
    }

    #[test]
    fn json_report_parses_shape() {
        let json = demo_report().render_json();
        assert!(json.contains("\"passed\": false"));
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\"rule\": \"D\""));
        assert!(json.contains("\"unsafe_census\": {\"core\": 0}"));
        assert!(json.contains("\"reachable_functions\": 3,"));
        assert!(json.contains("\"inventory\": {\"crates/core/src/a.rs::Engine::push\": 2}"));
    }

    #[test]
    fn rule_codes_are_unique() {
        let codes = [
            Rule::Determinism,
            Rule::PanicSafety,
            Rule::MetricSchema,
            Rule::UnsafeAudit,
            Rule::PaperConst,
            Rule::HotPath,
            Rule::Concurrency,
            Rule::MetricLiveness,
        ]
        .map(Rule::code);
        let mut sorted = codes.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), codes.len());
    }

    #[test]
    fn empty_report_passes() {
        let r = LintReport::default();
        assert!(r.passed());
        assert!(r.render_json().contains("\"passed\": true"));
    }
}
