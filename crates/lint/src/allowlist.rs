//! `lint-allow.toml` — the panic-safety and hot-path budget ratchets.
//!
//! The linter is zero-dependency, so this is a tiny parser for the exact
//! TOML subset the allowlist uses: comments, `[section]` headers, and
//! `"quoted/path.rs" = <integer>` entries. Anything else is a parse
//! error — the file is machine-maintained and should stay boring.
//!
//! Two sections exist today:
//!
//! - `[panic]` — per-file allowed panic-site counts (rule P).
//! - `[hot-path]` — per-function allowed allocation/lock-site counts on
//!   the transitive hot path (rule H). Keys are
//!   `"<rel_path>::<Owner>::<fn>"` (or `"<rel_path>::<fn>"` for free
//!   functions), matching the inventory the JSON report prints.
//!
//! Both ratchet the same way: counts above budget are findings, counts
//! below budget are warnings asking for the entry to be ratcheted down.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed allowlist: the committed budgets both ratchet rules consume.
#[derive(Debug, Default, Clone)]
pub struct Allowlist {
    /// `[panic]` section: workspace-relative path → allowed count.
    pub panic: BTreeMap<String, usize>,
    /// `[hot-path]` section: `path::function` key → allowed count.
    pub hot_path: BTreeMap<String, usize>,
}

/// Allowlist parse failure (line number + description).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowlistError {
    /// 1-indexed line of the offending entry.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AllowlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint-allow.toml:{}: {}", self.line, self.message)
    }
}

impl Allowlist {
    /// Parse the allowlist text.
    ///
    /// # Errors
    ///
    /// Returns the first malformed line: unknown section, entry outside a
    /// section, unquoted key, or non-integer value.
    pub fn parse(text: &str) -> Result<Self, AllowlistError> {
        let mut out = Allowlist::default();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                if section != "panic" && section != "hot-path" {
                    return Err(AllowlistError {
                        line: line_no,
                        message: format!(
                            "unknown section `[{section}]` (expected `[panic]` or `[hot-path]`)"
                        ),
                    });
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(AllowlistError {
                    line: line_no,
                    message: format!("expected `\"path\" = count`, got `{line}`"),
                });
            };
            let key = key.trim();
            let Some(path) = key
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .filter(|p| !p.is_empty())
            else {
                return Err(AllowlistError {
                    line: line_no,
                    message: format!("key must be a quoted path, got `{key}`"),
                });
            };
            let Ok(count) = value.trim().parse::<usize>() else {
                return Err(AllowlistError {
                    line: line_no,
                    message: format!(
                        "value must be a non-negative integer, got `{}`",
                        value.trim()
                    ),
                });
            };
            let target = match section.as_str() {
                "panic" => &mut out.panic,
                "hot-path" => &mut out.hot_path,
                _ => {
                    return Err(AllowlistError {
                        line: line_no,
                        message: "entry outside the `[panic]`/`[hot-path]` sections".to_string(),
                    });
                }
            };
            target.insert(path.to_string(), count);
        }
        Ok(out)
    }

    /// Allowed panic-site count for a file (0 when absent).
    #[must_use]
    pub fn allowed(&self, rel_path: &str) -> usize {
        self.panic.get(rel_path).copied().unwrap_or(0)
    }

    /// Allowed hot-path allocation/lock-site count for a function key
    /// (0 when absent).
    #[must_use]
    pub fn hot_allowed(&self, fn_key: &str) -> usize {
        self.hot_path.get(fn_key).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_comments_and_entries() {
        let text = "# ratchet file\n\n[panic]\n\"crates/obs/src/registry.rs\" = 3 # invariant\n";
        let a = Allowlist::parse(text).unwrap();
        assert_eq!(a.allowed("crates/obs/src/registry.rs"), 3);
        assert_eq!(a.allowed("crates/core/src/lib.rs"), 0);
    }

    #[test]
    fn parses_hot_path_section() {
        let text = "[panic]\n\"a.rs\" = 1\n\n[hot-path]\n\
                    \"crates/core/src/engine.rs::StreamingEngine::push\" = 2\n";
        let a = Allowlist::parse(text).unwrap();
        assert_eq!(a.allowed("a.rs"), 1);
        assert_eq!(
            a.hot_allowed("crates/core/src/engine.rs::StreamingEngine::push"),
            2
        );
        assert_eq!(a.hot_allowed("crates/core/src/engine.rs::other"), 0);
    }

    #[test]
    fn rejects_unknown_section() {
        let err = Allowlist::parse("[other]\n\"a\" = 1\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("unknown section"));
    }

    #[test]
    fn rejects_unquoted_key_and_bad_value() {
        assert!(Allowlist::parse("[panic]\npath = 1\n").is_err());
        assert!(Allowlist::parse("[panic]\n\"p\" = many\n").is_err());
        assert!(Allowlist::parse("\"p\" = 1\n").is_err());
        assert!(Allowlist::parse("[hot-path]\nkey = 1\n").is_err());
    }
}
