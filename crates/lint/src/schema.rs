//! Metric-name vocabulary extraction from DESIGN.md §9.
//!
//! §9 of DESIGN.md is the stable metric schema: every metric name the
//! workspace emits must appear there in backticks. Rather than duplicate
//! that list in code (where it would drift), rule S parses the §9 section
//! and collects every backticked `snake_case` identifier as the allowed
//! vocabulary — metric names, label keys, and label values alike. Suffix
//! and kind rules then constrain how a name may be used.

use std::collections::BTreeSet;

/// The allowed metric vocabulary plus where it came from.
#[derive(Debug, Default)]
pub struct Schema {
    /// Backticked snake_case identifiers found in the §9 section.
    pub names: BTreeSet<String>,
}

impl Schema {
    /// Extract the schema from DESIGN.md text. Returns `None` when no
    /// `## 9.` section exists (the caller reports a configuration error —
    /// a schema-less workspace cannot validate rule S).
    #[must_use]
    pub fn from_design_md(text: &str) -> Option<Self> {
        let mut in_section = false;
        let mut found = false;
        let mut names = BTreeSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("## ") {
                in_section = rest.trim_start().starts_with("9.") || rest.trim_start() == "9";
                if in_section {
                    found = true;
                }
                continue;
            }
            if !in_section {
                continue;
            }
            for span in backticked(line) {
                // §9 writes labelled metrics as `name{label}`; the name
                // part is the vocabulary entry.
                let span = span.split('{').next().unwrap_or("");
                if is_snake_case(span) {
                    names.insert(span.to_string());
                }
            }
        }
        found.then_some(Schema { names })
    }

    /// Whether `name` is part of the documented vocabulary.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.names.contains(name)
    }
}

/// All `` `…` `` spans of a line.
fn backticked(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(start) = rest.find('`') {
        let after = &rest[start + 1..];
        let Some(end) = after.find('`') else { break };
        out.push(after[..end].to_string());
        rest = &after[end + 1..];
    }
    out
}

/// `snake_case`: lowercase alphanumeric + underscores, starting with a
/// letter.
#[must_use]
pub fn is_snake_case(s: &str) -> bool {
    let mut chars = s.chars();
    chars.next().is_some_and(|c| c.is_ascii_lowercase())
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    const DESIGN: &str = "\
# Doc\n\
## 8. Other\n\
`not_in_schema`\n\
## 9. Observability: stable metric schema\n\
| `pipeline_stage_seconds` | `stage` = `sbc` \\| `threshold` | per-stage |\n\
| `engine_push_seconds`, `engine_flush_seconds` | — | engine |\n\
| `parallel_jobs_total{op}` | labelled counter |\n\
Some prose with `pipeline_windows_total` inline, and `CamelCase` ignored.\n\
## 10. Next\n\
`also_not_in_schema`\n";

    #[test]
    fn collects_section_nine_identifiers_only() {
        let s = Schema::from_design_md(DESIGN).unwrap();
        for name in [
            "pipeline_stage_seconds",
            "engine_push_seconds",
            "engine_flush_seconds",
            "pipeline_windows_total",
            "parallel_jobs_total",
            "stage",
            "sbc",
        ] {
            assert!(s.contains(name), "{name}");
        }
        assert!(!s.contains("not_in_schema"));
        assert!(!s.contains("also_not_in_schema"));
        assert!(!s.contains("CamelCase"));
    }

    #[test]
    fn missing_section_is_none() {
        assert!(Schema::from_design_md("# Doc\n## 8. Only\n").is_none());
    }

    #[test]
    fn snake_case_predicate() {
        assert!(is_snake_case("pipeline_stage_seconds"));
        assert!(is_snake_case("p2"));
        assert!(!is_snake_case("Pipeline"));
        assert!(!is_snake_case("_lead"));
        assert!(!is_snake_case(""));
        assert!(!is_snake_case("has-dash"));
    }
}
