//! Metric-name vocabulary extraction from DESIGN.md §9 (and the §14
//! event-kind vocabulary rule M checks against).
//!
//! §9 of DESIGN.md is the stable metric schema: every metric name the
//! workspace emits must appear there in backticks. Rather than duplicate
//! that list in code (where it would drift), rule S parses the §9 section
//! and collects every backticked `snake_case` identifier as the allowed
//! vocabulary — metric names, label keys, and label values alike. Suffix
//! and kind rules then constrain how a name may be used.
//!
//! Rule M needs two sharper views of the same document: the *rows* of the
//! §9 tables (the metric names proper, first column only — label keys and
//! values are vocabulary but not metrics, so they carry no liveness
//! obligation), and the backticked words of §14 (where every `EventKind`
//! tag must be documented). A row whose text contains `(reserved)` is
//! documented-dead: it keeps its schema slot but rule M does not demand an
//! emission site for it.

use std::collections::BTreeSet;

/// One metric row of a §9 table: a name that must stay live.
#[derive(Debug, Clone)]
pub struct MetricRow {
    /// The backticked metric name from the row's first column.
    pub name: String,
    /// 1-indexed DESIGN.md line of the row.
    pub line: usize,
    /// The raw row text, trimmed, for report excerpts.
    pub excerpt: String,
    /// Whether the row is marked `(reserved)` — documented as having no
    /// emission site yet, exempt from rule M's dead-metric check.
    pub reserved: bool,
}

/// The allowed metric vocabulary plus where it came from.
#[derive(Debug, Default)]
pub struct Schema {
    /// Backticked snake_case identifiers found in the §9 section.
    pub names: BTreeSet<String>,
    /// §9 table rows (metric names proper), in document order.
    pub rows: Vec<MetricRow>,
    /// Backticked spans of the §14 section, when the section exists.
    /// `None` means DESIGN.md has no §14 — rule M skips the event check.
    pub event_vocab: Option<BTreeSet<String>>,
}

impl Schema {
    /// Extract the schema from DESIGN.md text. Returns `None` when no
    /// `## 9.` section exists (the caller reports a configuration error —
    /// a schema-less workspace cannot validate rule S).
    #[must_use]
    pub fn from_design_md(text: &str) -> Option<Self> {
        #[derive(PartialEq)]
        enum Section {
            Other,
            Nine,
            Fourteen,
        }
        let mut section = Section::Other;
        let mut found = false;
        let mut names = BTreeSet::new();
        let mut rows = Vec::new();
        let mut event_vocab: Option<BTreeSet<String>> = None;
        for (idx, line) in text.lines().enumerate() {
            if let Some(rest) = line.strip_prefix("## ") {
                let rest = rest.trim_start();
                section = if rest.starts_with("9.") || rest == "9" {
                    found = true;
                    Section::Nine
                } else if rest.starts_with("14.") || rest == "14" {
                    event_vocab.get_or_insert_with(BTreeSet::new);
                    Section::Fourteen
                } else {
                    Section::Other
                };
                continue;
            }
            match section {
                Section::Nine => {
                    for span in backticked(line) {
                        // §9 writes labelled metrics as `name{label}`; the
                        // name part is the vocabulary entry.
                        let span = span.split('{').next().unwrap_or("");
                        if is_snake_case(span) {
                            names.insert(span.to_string());
                        }
                    }
                    // Table rows: the first column's backticked names are
                    // the metrics that must stay live (rule M).
                    if let Some(cell) = first_table_cell(line) {
                        let reserved = line.contains("(reserved)");
                        for span in backticked(cell) {
                            let span = span.split('{').next().unwrap_or("");
                            if is_snake_case(span) {
                                rows.push(MetricRow {
                                    name: span.to_string(),
                                    line: idx + 1,
                                    excerpt: line.trim().to_string(),
                                    reserved,
                                });
                            }
                        }
                    }
                }
                Section::Fourteen => {
                    if let Some(vocab) = event_vocab.as_mut() {
                        vocab.extend(backticked(line));
                    }
                }
                Section::Other => {}
            }
        }
        found.then_some(Schema {
            names,
            rows,
            event_vocab,
        })
    }

    /// Whether `name` is part of the documented vocabulary.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.names.contains(name)
    }
}

/// The first content cell of a markdown table row, or `None` for
/// non-table lines and `|---|` separator rows.
fn first_table_cell(line: &str) -> Option<&str> {
    let rest = line.trim_start().strip_prefix('|')?;
    let cell = rest.split('|').next().unwrap_or("");
    let trimmed = cell.trim();
    if trimmed.chars().all(|c| c == '-' || c == ':') {
        return None;
    }
    Some(cell)
}

/// All `` `…` `` spans of a line.
fn backticked(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(start) = rest.find('`') {
        let after = &rest[start + 1..];
        let Some(end) = after.find('`') else { break };
        out.push(after[..end].to_string());
        rest = &after[end + 1..];
    }
    out
}

/// `snake_case`: lowercase alphanumeric + underscores, starting with a
/// letter.
#[must_use]
pub fn is_snake_case(s: &str) -> bool {
    let mut chars = s.chars();
    chars.next().is_some_and(|c| c.is_ascii_lowercase())
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    const DESIGN: &str = "\
# Doc\n\
## 8. Other\n\
`not_in_schema`\n\
## 9. Observability: stable metric schema\n\
| `pipeline_stage_seconds` | `stage` = `sbc` \\| `threshold` | per-stage |\n\
| --- | --- | --- |\n\
| `engine_push_seconds`, `engine_flush_seconds` | — | engine |\n\
| `parallel_jobs_total{op}` | labelled counter |\n\
| `future_metric_total` | — | (reserved) for the next PR |\n\
Some prose with `pipeline_windows_total` inline, and `CamelCase` ignored.\n\
## 10. Next\n\
`also_not_in_schema`\n\
## 14. Structured events\n\
Kinds: `admitted`, `shed`.\n";

    #[test]
    fn collects_section_nine_identifiers_only() {
        let s = Schema::from_design_md(DESIGN).unwrap();
        for name in [
            "pipeline_stage_seconds",
            "engine_push_seconds",
            "engine_flush_seconds",
            "pipeline_windows_total",
            "parallel_jobs_total",
            "stage",
            "sbc",
        ] {
            assert!(s.contains(name), "{name}");
        }
        assert!(!s.contains("not_in_schema"));
        assert!(!s.contains("also_not_in_schema"));
        assert!(!s.contains("CamelCase"));
    }

    #[test]
    fn table_rows_are_metric_names_not_label_vocab() {
        let s = Schema::from_design_md(DESIGN).unwrap();
        let row_names: Vec<&str> = s.rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            row_names,
            [
                "pipeline_stage_seconds",
                "engine_push_seconds",
                "engine_flush_seconds",
                "parallel_jobs_total",
                "future_metric_total",
            ]
        );
        // Label vocabulary is in `names` but never a row.
        assert!(!row_names.contains(&"stage"));
        assert!(!row_names.contains(&"sbc"));
        // Inline prose names are vocabulary, not rows.
        assert!(!row_names.contains(&"pipeline_windows_total"));
    }

    #[test]
    fn reserved_rows_are_marked() {
        let s = Schema::from_design_md(DESIGN).unwrap();
        let reserved: Vec<&str> = s
            .rows
            .iter()
            .filter(|r| r.reserved)
            .map(|r| r.name.as_str())
            .collect();
        assert_eq!(reserved, ["future_metric_total"]);
    }

    #[test]
    fn event_vocab_comes_from_section_fourteen() {
        let s = Schema::from_design_md(DESIGN).unwrap();
        let vocab = s.event_vocab.as_ref().unwrap();
        assert!(vocab.contains("admitted"));
        assert!(vocab.contains("shed"));
        assert!(!vocab.contains("pipeline_stage_seconds"));
    }

    #[test]
    fn missing_section_fourteen_is_none() {
        let s = Schema::from_design_md("## 9. Schema\n`a_total`\n").unwrap();
        assert!(s.event_vocab.is_none());
    }

    #[test]
    fn missing_section_is_none() {
        assert!(Schema::from_design_md("# Doc\n## 8. Only\n").is_none());
    }

    #[test]
    fn snake_case_predicate() {
        assert!(is_snake_case("pipeline_stage_seconds"));
        assert!(is_snake_case("p2"));
        assert!(!is_snake_case("Pipeline"));
        assert!(!is_snake_case("_lead"));
        assert!(!is_snake_case(""));
        assert!(!is_snake_case("has-dash"));
    }
}
