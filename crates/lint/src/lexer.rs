//! A small hand-rolled Rust lexer: just enough token structure for the
//! lint rules — identifiers, numbers, string literals, and punctuation —
//! while correctly *skipping* the places naive text search goes wrong
//! (line/block comments, doc comments, string and char literals, raw
//! strings, lifetimes).
//!
//! Comments are not discarded: the rules need them for the
//! justification-comment grammar (`// lint: <word>`) and the unsafe
//! audit (`// SAFETY:`), so each comment is kept as a `(line, text)`
//! record alongside the token stream.

/// One lexical token with its 1-indexed source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Token text. For string literals this is the *decoded-enough* body
    /// (escape sequences left as-is): the rules only match plain
    /// `snake_case` metric names, which never contain escapes.
    pub text: String,
    /// 1-indexed line where the token starts.
    pub line: usize,
}

/// Token classes distinguished by the lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `unsafe`, `HashMap`, …).
    Ident,
    /// Numeric literal (`100.0`, `25`, `0xA1`, `1_000`).
    Number,
    /// String literal body (without quotes), raw or cooked.
    Str,
    /// A single punctuation character (`.`, `!`, `:`, `#`, `{`, …).
    Punct,
}

/// A comment retained for annotation lookups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-indexed line where the comment starts.
    pub line: usize,
    /// Comment text without the `//` / `/*` markers, trimmed.
    pub text: String,
}

/// Lexer output: the token stream plus the retained comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenize Rust source. Never fails: unterminated constructs consume to
/// end-of-input, which is the forgiving behaviour a linter wants.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0;
    let mut line = 1;
    let n = bytes.len();
    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                let start = i + 2;
                let mut j = start;
                while j < n && bytes[j] != '\n' {
                    j += 1;
                }
                let text: String = bytes[start..j].iter().collect();
                out.comments.push(Comment {
                    line,
                    text: text.trim_start_matches(['/', '!']).trim().to_string(),
                });
                i = j;
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1;
                let mut j = start;
                while j < n && depth > 0 {
                    if bytes[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if bytes[j] == '/' && j + 1 < n && bytes[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == '*' && j + 1 < n && bytes[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                let text: String = bytes[start..end].iter().collect();
                out.comments.push(Comment {
                    line: start_line,
                    text: text.trim_start_matches(['*', '!']).trim().to_string(),
                });
                i = j;
            }
            '"' => {
                let (body, nl, j) = cooked_string(&bytes, i + 1);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: body,
                    line,
                });
                line += nl;
                i = j;
            }
            // Byte char literal (`b'x'`, `b'\n'`): without this branch the
            // `b` would leak into the stream as a phantom identifier.
            'b' if i + 1 < n && bytes[i + 1] == '\'' => {
                i = skip_char_literal(&bytes, i + 1);
            }
            'r' | 'b' if starts_raw_or_byte_string(&bytes, i) => {
                let (body, nl, j) = raw_or_byte_string(&bytes, i);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: body,
                    line,
                });
                line += nl;
                i = j;
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                if is_lifetime(&bytes, i) {
                    let mut j = i + 1;
                    while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                        j += 1;
                    }
                    i = j;
                } else {
                    i = skip_char_literal(&bytes, i);
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: bytes[start..j].iter().collect(),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                while j < n
                    && (bytes[j].is_ascii_alphanumeric()
                        || bytes[j] == '_'
                        || (bytes[j] == '.'
                            && j + 1 < n
                            && bytes[j + 1].is_ascii_digit()
                            && bytes[j..].iter().take_while(|&&b| b == '.').count() == 1))
                {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Number,
                    text: bytes[start..j].iter().collect(),
                    line,
                });
                i = j;
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Whether `r`/`b` at `i` opens a raw (`r"`, `r#"`) or byte (`b"`, `br"`)
/// string rather than being a plain identifier head.
fn starts_raw_or_byte_string(bytes: &[char], i: usize) -> bool {
    let n = bytes.len();
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
        if j < n && bytes[j] == 'r' {
            j += 1;
        }
    } else {
        // 'r'
        j += 1;
    }
    while j < n && bytes[j] == '#' {
        j += 1;
    }
    j < n && bytes[j] == '"'
}

/// Lex a cooked string starting after the opening quote at `start`.
/// Returns `(body, newlines_consumed, index_after_closing_quote)`.
fn cooked_string(bytes: &[char], start: usize) -> (String, usize, usize) {
    let n = bytes.len();
    let mut j = start;
    let mut nl = 0;
    let mut body = String::new();
    while j < n {
        match bytes[j] {
            '\\' => {
                if j + 1 < n {
                    body.push(bytes[j]);
                    body.push(bytes[j + 1]);
                    if bytes[j + 1] == '\n' {
                        nl += 1;
                    }
                }
                j += 2;
            }
            '"' => return (body, nl, j + 1),
            c => {
                if c == '\n' {
                    nl += 1;
                }
                body.push(c);
                j += 1;
            }
        }
    }
    (body, nl, j)
}

/// Lex a raw/byte string whose prefix (`r`, `b`, `br`, hashes) starts at
/// `i`. Returns `(body, newlines_consumed, index_after_close)`.
fn raw_or_byte_string(bytes: &[char], i: usize) -> (String, usize, usize) {
    let n = bytes.len();
    let mut j = i;
    let mut raw = false;
    if bytes[j] == 'b' {
        j += 1;
    }
    if j < n && bytes[j] == 'r' {
        raw = true;
        j += 1;
    }
    let mut hashes = 0;
    while j < n && bytes[j] == '#' {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    let start = j;
    let mut nl = 0;
    while j < n {
        if bytes[j] == '\n' {
            nl += 1;
            j += 1;
        } else if !raw && bytes[j] == '\\' {
            j += 2;
        } else if bytes[j] == '"' {
            // Closing quote must be followed by `hashes` '#'s for raw.
            let mut k = j + 1;
            let mut seen = 0;
            while raw && k < n && bytes[k] == '#' && seen < hashes {
                k += 1;
                seen += 1;
            }
            if seen == hashes {
                let body: String = bytes[start..j].iter().collect();
                return (body, nl, k);
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    (bytes[start..j.min(n)].iter().collect(), nl, j)
}

/// Skip a char literal whose opening quote is at `i`, returning the index
/// after the closing quote. Handles escapes (`'\''`, `'\\'`, `'\u{7af}'`,
/// `'\x41'`) by scanning the escape body up to the closing quote.
fn skip_char_literal(bytes: &[char], i: usize) -> usize {
    let n = bytes.len();
    let mut j = i + 1;
    if j < n && bytes[j] == '\\' {
        j += 2;
        while j < n && bytes[j] != '\'' {
            j += 1;
        }
    } else if j < n {
        j += 1;
    }
    if j < n && bytes[j] == '\'' {
        j += 1;
    }
    j
}

/// `'x` is a lifetime when the quote is followed by an identifier that is
/// *not* closed by another quote (which would make it a char literal).
fn is_lifetime(bytes: &[char], i: usize) -> bool {
    let n = bytes.len();
    if i + 1 >= n {
        return false;
    }
    let c = bytes[i + 1];
    if !(c.is_alphabetic() || c == '_') {
        return false;
    }
    let mut j = i + 1;
    while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
        j += 1;
    }
    !(j < n && bytes[j] == '\'')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn skips_comments_and_strings() {
        let src = r#"
            // unwrap() in a comment
            /* HashMap in a block comment */
            let s = "Instant::now() in a string";
            let r = r"panic! in a raw string";
            call();
        "#;
        let ids = idents(src);
        assert!(ids.contains(&"call".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
    }

    #[test]
    fn keeps_comment_text_for_annotations() {
        let src = "let x = 1; // lint: ordered — sorted before use\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.starts_with("lint: ordered"));
        assert_eq!(lexed.comments[0].line, 1);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x';\nlet nl = '\\n';\nafter();";
        let ids = idents(src);
        assert!(ids.contains(&"after".to_string()));
        // The char bodies must not leak identifiers.
        assert!(!ids.contains(&"x\'".to_string()));
    }

    #[test]
    fn string_token_carries_body_and_lines() {
        let lexed = lex("span!(\"pipeline_stage_seconds\", stage = \"sbc\")");
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(strs, ["pipeline_stage_seconds", "sbc"]);
    }

    #[test]
    fn raw_string_with_hashes() {
        let lexed = lex("let x = r#\"quote \" inside\"#; done();");
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Str && t.text == "quote \" inside"));
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "done"));
    }

    #[test]
    fn numbers_including_floats() {
        let lexed = lex("let a = 100.0; let b = 25; let c = 0.03;");
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, ["100.0", "25", "0.03"]);
    }

    #[test]
    fn line_numbers_advance_through_all_constructs() {
        let src = "a();\n/* two\nlines */\nb();\n\"str\nwith newline\";\nc();";
        let lexed = lex(src);
        let find = |name: &str| lexed.tokens.iter().find(|t| t.text == name).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(4));
        assert_eq!(find("c"), Some(7));
    }

    #[test]
    fn nested_block_comments_track_depth_and_lines() {
        let src = "a();\n/* outer\n/* inner unwrap() */\nstill comment */\nafter();";
        let lexed = lex(src);
        let ids: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .collect();
        assert_eq!(
            ids.iter().map(|t| t.text.as_str()).collect::<Vec<_>>(),
            ["a", "after"],
            "nested comment body must not leak tokens"
        );
        assert_eq!(ids[1].line, 5, "line count must survive the nested comment");
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner unwrap()"));
    }

    #[test]
    fn byte_and_byte_raw_strings_are_single_tokens() {
        let src = "let a = b\"esc \\\" quote\"; let c = br#\"raw \" body\"#; done();";
        let lexed = lex(src);
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(strs, ["esc \\\" quote", "raw \" body"]);
        assert!(lexed.tokens.iter().any(|t| t.text == "done"));
    }

    #[test]
    fn lifetime_labels_on_loops_are_skipped() {
        let src = "'outer: loop { while x { break 'outer; } continue 'outer; }";
        let ids = idents(src);
        assert_eq!(ids, ["loop", "while", "x", "break", "continue"]);
    }

    #[test]
    fn escaped_char_literals_do_not_derail_the_stream() {
        let src = "let q = '\\''; let b = '\\\\'; let u = '\\u{7af}'; let h = '\\x41'; after();";
        let ids = idents(src);
        assert!(ids.contains(&"after".to_string()), "idents: {ids:?}");
        // Escape bodies must not leak as idents or puncts that look like code.
        assert!(!ids.contains(&"u".to_string()) || ids.iter().filter(|i| *i == "u").count() == 1);
        assert!(!ids.contains(&"x41".to_string()));
    }

    #[test]
    fn byte_char_literals_do_not_leak_a_phantom_ident() {
        let src = "let nl = b'\\n'; let ch = b'x'; after();";
        let ids = idents(src);
        assert_eq!(ids, ["let", "nl", "let", "ch", "after"]);
    }

    #[test]
    fn idents_with_string_prefix_letters_stay_idents() {
        // `r`, `b`, `br`-prefixed identifiers must not be mistaken for
        // raw/byte string openers.
        let src = "let result = branch(raw_value, b, r);";
        let ids = idents(src);
        assert_eq!(ids, ["let", "result", "branch", "raw_value", "b", "r"]);
    }

    #[test]
    fn multiline_raw_strings_advance_lines() {
        let src = "a();\nlet s = r#\"one\ntwo\nthree\"#;\nafter();";
        let lexed = lex(src);
        let find = |name: &str| lexed.tokens.iter().find(|t| t.text == name).map(|t| t.line);
        assert_eq!(find("after"), Some(5));
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Str && t.text == "one\ntwo\nthree"));
    }

    #[test]
    fn unterminated_constructs_consume_to_eof_without_panicking() {
        for src in ["let s = \"never closed", "let r = r#\"open", "/* open", "'"] {
            let _ = lex(src); // must not panic
        }
        // Unterminated raw string still yields what it saw.
        let lexed = lex("r\"tail");
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Str && t.text == "tail"));
    }

    #[test]
    fn doc_comments_are_captured_with_markers_trimmed() {
        let src = "/// outer doc\n//! inner doc\n/** block doc */\nfn f() {}";
        let lexed = lex(src);
        let texts: Vec<_> = lexed.comments.iter().map(|c| c.text.as_str()).collect();
        assert_eq!(texts, ["outer doc", "inner doc", "block doc"]);
    }

    #[test]
    fn method_range_dots_do_not_merge_into_numbers() {
        let lexed = lex("for i in 0..10 { x[i] = 1.0; }");
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, ["0", "10", "1.0"]);
    }
}
