//! Workspace discovery and the per-file source model the rules consume:
//! tokens, `#[cfg(test)]`/`#[test]` region marking, raw lines for report
//! excerpts, and the `// lint: <word>` justification annotations.

use crate::lexer::{lex, Comment, Token, TokenKind};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lexed source file with everything the rules need.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable across hosts).
    pub rel_path: String,
    /// Crate directory name under `crates/` (e.g. `core`, `nir-sim`).
    pub crate_name: String,
    /// Token stream (comments stripped, strings collapsed to bodies).
    pub tokens: Vec<Token>,
    /// `in_test[i]` ⇔ token `i` sits inside a `#[cfg(test)]`/`#[test]` item.
    pub in_test: Vec<bool>,
    /// Retained comments for annotation and `SAFETY:` lookups.
    pub comments: Vec<Comment>,
    /// `line → justification word` from `// lint: <word>` comments.
    pub annotations: BTreeMap<usize, String>,
    /// Raw source lines for report excerpts (1-indexed via `line - 1`).
    pub lines: Vec<String>,
}

impl SourceFile {
    /// Parse one file that lives at `crates/<crate_name>/…`.
    #[must_use]
    pub fn parse(rel_path: String, crate_name: String, src: &str) -> Self {
        let lexed = lex(src);
        let in_test = mark_test_regions(&lexed.tokens);
        let annotations = collect_annotations(&lexed.comments);
        SourceFile {
            rel_path,
            crate_name,
            tokens: lexed.tokens,
            in_test,
            comments: lexed.comments,
            annotations,
            lines: src.lines().map(str::to_string).collect(),
        }
    }

    /// The raw text of 1-indexed `line`, or `""` when out of range.
    #[must_use]
    pub fn line_text(&self, line: usize) -> &str {
        line.checked_sub(1)
            .and_then(|i| self.lines.get(i))
            .map_or("", String::as_str)
    }

    /// Whether `line` carries the given `// lint: <word>` justification —
    /// as a trailing comment on the line itself or a standalone comment on
    /// the line directly above.
    #[must_use]
    pub fn justified(&self, line: usize, word: &str) -> bool {
        let at = |l: usize| self.annotations.get(&l).is_some_and(|w| w == word);
        at(line) || (line > 1 && at(line - 1))
    }

    /// Whether a `// SAFETY:` comment sits on `line` or up to `within`
    /// lines above it.
    #[must_use]
    pub fn has_safety_comment(&self, line: usize, within: usize) -> bool {
        self.comments.iter().any(|c| {
            c.line <= line && line - c.line <= within && c.text.trim_start().starts_with("SAFETY:")
        })
    }
}

/// Mark every token inside a `#[cfg(test)]` or `#[test]` item body.
///
/// The scan finds the attribute token sequence, then the next top-level
/// `{` and its matching `}`: everything in between is a test region. An
/// attribute followed by `;` before any `{` (e.g. `#[cfg(test)] mod t;`)
/// marks nothing.
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if let Some(attr_end) = test_attribute_end(tokens, i) {
            // Find the body start before the item ends in `;`.
            let mut j = attr_end;
            let mut body_start = None;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.kind == TokenKind::Punct {
                    if t.text == "{" {
                        body_start = Some(j);
                        break;
                    }
                    if t.text == ";" {
                        break;
                    }
                }
                j += 1;
            }
            if let Some(open) = body_start {
                let mut depth = 0usize;
                let mut k = open;
                while k < tokens.len() {
                    let t = &tokens[k];
                    if t.kind == TokenKind::Punct {
                        if t.text == "{" {
                            depth += 1;
                        } else if t.text == "}" {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                    }
                    k += 1;
                }
                let end = k.min(tokens.len().saturating_sub(1));
                for flag in in_test.iter_mut().take(end + 1).skip(i) {
                    *flag = true;
                }
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    in_test
}

/// If tokens at `i` open a test attribute (`#[test]`, `#[cfg(test)]`,
/// `#[cfg(all(test, …))]`), return the index just past the closing `]`.
fn test_attribute_end(tokens: &[Token], i: usize) -> Option<usize> {
    if !(punct_at(tokens, i, "#") && punct_at(tokens, i + 1, "[")) {
        return None;
    }
    let mut depth = 0usize;
    let mut saw_test = false;
    let mut head: Option<&str> = None;
    let mut j = i + 1;
    while j < tokens.len() {
        let t = &tokens[j];
        match t.kind {
            TokenKind::Punct if t.text == "[" => depth += 1,
            TokenKind::Punct if t.text == "]" => {
                depth -= 1;
                if depth == 0 {
                    let is_test_attr = saw_test && matches!(head, Some("test" | "cfg"));
                    return if is_test_attr { Some(j + 1) } else { None };
                }
            }
            TokenKind::Ident => {
                if head.is_none() {
                    head = Some(match t.text.as_str() {
                        "test" => "test",
                        "cfg" => "cfg",
                        _ => "other",
                    });
                }
                if t.text == "test" {
                    saw_test = true;
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

fn punct_at(tokens: &[Token], i: usize, p: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text == p)
}

/// Extract `// lint: <word>` justifications, keyed by comment line.
fn collect_annotations(comments: &[Comment]) -> BTreeMap<usize, String> {
    let mut map = BTreeMap::new();
    for c in comments {
        if let Some(rest) = c.text.strip_prefix("lint:") {
            let word: String = rest
                .trim_start()
                .chars()
                .take_while(|ch| ch.is_ascii_alphanumeric() || *ch == '-')
                .collect();
            if !word.is_empty() {
                map.insert(c.line, word);
            }
        }
    }
    map
}

/// Discover and parse every `crates/*/src/**/*.rs` file under `root`,
/// sorted by path so reports and rule evaluation are deterministic.
///
/// # Errors
///
/// Propagates I/O errors from directory walks and file reads; a missing
/// `crates/` directory is an error (wrong `--root`).
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut files = Vec::new();
    for dir in crate_dirs {
        let crate_name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let src_dir = dir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut rs_files = Vec::new();
        walk_rs(&src_dir, &mut rs_files)?;
        rs_files.sort();
        for path in rs_files {
            let src = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            files.push(SourceFile::parse(rel, crate_name.clone(), &src));
        }
    }
    Ok(files)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(src: &str) -> SourceFile {
        SourceFile::parse("crates/demo/src/lib.rs".into(), "demo".into(), src)
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn live() { a.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { b.unwrap(); }\n}\n";
        let f = parsed(src);
        let unwraps: Vec<(usize, bool)> = f
            .tokens
            .iter()
            .zip(&f.in_test)
            .filter(|(t, _)| t.text == "unwrap")
            .map(|(t, &in_test)| (t.line, in_test))
            .collect();
        assert_eq!(unwraps, [(1, false), (4, true)]);
    }

    #[test]
    fn non_test_cfg_attribute_marks_nothing() {
        let src = "#[cfg(feature = \"obs\")]\nfn live() { a.unwrap(); }\n";
        let f = parsed(src);
        assert!(f.in_test.iter().all(|&b| !b));
    }

    #[test]
    fn test_fn_attribute_marks_body() {
        let src = "#[test]\nfn check() { x.unwrap(); }\nfn live() { y.unwrap(); }\n";
        let f = parsed(src);
        let flags: Vec<bool> = f
            .tokens
            .iter()
            .zip(&f.in_test)
            .filter(|(t, _)| t.text == "unwrap")
            .map(|(_, &b)| b)
            .collect();
        assert_eq!(flags, [true, false]);
    }

    #[test]
    fn annotations_and_safety_lookup() {
        let src = "use std::collections::HashMap; // lint: ordered — keys sorted\n\
                   // SAFETY: bounds checked above\nunsafe { go() }\n";
        let f = parsed(src);
        assert!(f.justified(1, "ordered"));
        assert!(!f.justified(1, "wall-clock"));
        assert!(f.has_safety_comment(3, 3));
        assert!(!f.has_safety_comment(30, 3));
    }
}
