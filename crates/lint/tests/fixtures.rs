//! End-to-end tests of [`airfinger_lint::check`] over the fixture
//! workspaces in `tests/fixtures/`. Each fixture is a miniature repo
//! (`crates/*/src/*.rs` + `DESIGN.md` + optional `lint-allow.toml`)
//! that the linter scans exactly like the real workspace — the fixture
//! sources themselves are never compiled.

use airfinger_lint::report::Rule;
use airfinger_lint::{check, CheckError};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn each_rule_fires_exactly_once_on_the_violations_fixture() {
    let report = check(&fixture("violations")).expect("fixture loads");
    assert_eq!(report.files_scanned, 2);
    for rule in [
        Rule::Determinism,
        Rule::PanicSafety,
        Rule::MetricSchema,
        Rule::UnsafeAudit,
        Rule::PaperConst,
    ] {
        assert_eq!(
            report.count(rule),
            1,
            "rule {} should fire exactly once: {:#?}",
            rule.code(),
            report.findings
        );
    }
    assert_eq!(report.findings.len(), 5);
    assert!(!report.passed());
    // The census side-channels are populated even for findings.
    assert_eq!(report.unsafe_census["lowlevel"], 1);
    assert_eq!(report.panic_inventory["crates/core/src/lib.rs"], 1);
}

#[test]
fn findings_point_at_the_offending_lines() {
    let report = check(&fixture("violations")).expect("fixture loads");
    let line_of = |rule: Rule| {
        report
            .findings
            .iter()
            .find(|f| f.rule == rule)
            .map(|f| (f.file.as_str(), f.line))
            .expect("finding present")
    };
    assert_eq!(line_of(Rule::Determinism), ("crates/core/src/lib.rs", 5));
    assert_eq!(line_of(Rule::PanicSafety), ("crates/core/src/lib.rs", 9));
    assert_eq!(line_of(Rule::MetricSchema), ("crates/core/src/lib.rs", 13));
    assert_eq!(line_of(Rule::PaperConst), ("crates/core/src/lib.rs", 17));
    assert_eq!(
        line_of(Rule::UnsafeAudit),
        ("crates/lowlevel/src/lib.rs", 4)
    );
}

#[test]
fn annotations_and_allowlist_suppress_every_finding() {
    let report = check(&fixture("suppressed")).expect("fixture loads");
    assert!(report.passed(), "{:#?}", report.findings);
    // The budget is exactly met, so no ratchet-down warning either.
    assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    // Suppression hides findings, not the censuses.
    assert_eq!(report.unsafe_census["lowlevel"], 1);
    assert_eq!(report.panic_inventory["crates/core/src/lib.rs"], 1);
}

#[test]
fn missing_design_schema_is_a_check_error() {
    let err = check(&fixture("noschema")).expect_err("no DESIGN.md");
    assert!(matches!(err, CheckError::MissingSchema), "{err}");
}

#[test]
fn reports_render_in_both_formats() {
    let report = check(&fixture("violations")).expect("fixture loads");
    let human = report.render_human();
    assert!(human.contains("--- crates/core/src/lib.rs"));
    assert!(human.contains("[D:1 P:1 S:1 U:1 C:1]"));
    let json = report.render_json();
    assert!(json.contains("\"passed\": false"));
    for code in ["\"D\"", "\"P\"", "\"S\"", "\"U\"", "\"C\""] {
        assert!(json.contains(code), "missing rule code {code} in {json}");
    }
}

#[test]
fn the_real_workspace_is_clean_at_head() {
    // tests/ lives two levels under the repo root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let report = check(root).expect("workspace loads");
    assert!(report.passed(), "{}", report.render_human());
}
