//! End-to-end tests of [`airfinger_lint::check`] over the fixture
//! workspaces in `tests/fixtures/`. Each fixture is a miniature repo
//! (`crates/*/src/*.rs` + `DESIGN.md` + optional `lint-allow.toml`)
//! that the linter scans exactly like the real workspace — the fixture
//! sources themselves are never compiled.

use airfinger_lint::report::Rule;
use airfinger_lint::{check, CheckError};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn each_rule_fires_exactly_once_on_the_violations_fixture() {
    let report = check(&fixture("violations")).expect("fixture loads");
    assert_eq!(report.files_scanned, 3);
    for rule in [
        Rule::Determinism,
        Rule::PanicSafety,
        Rule::MetricSchema,
        Rule::UnsafeAudit,
        Rule::PaperConst,
        Rule::HotPath,
        Rule::Concurrency,
        Rule::MetricLiveness,
    ] {
        assert_eq!(
            report.count(rule),
            1,
            "rule {} should fire exactly once: {:#?}",
            rule.code(),
            report.findings
        );
    }
    assert_eq!(report.findings.len(), 8);
    assert!(!report.passed());
    // The census side-channels are populated even for findings.
    assert_eq!(report.unsafe_census["lowlevel"], 1);
    assert_eq!(report.panic_inventory["crates/core/src/lib.rs"], 1);
    // The hot-path walk saw the one annotated root.
    assert_eq!(report.hot_path_functions, 1);
    assert_eq!(report.hot_path_inventory["crates/core/src/hot.rs::push"], 1);
}

#[test]
fn findings_point_at_the_offending_lines() {
    let report = check(&fixture("violations")).expect("fixture loads");
    let line_of = |rule: Rule| {
        report
            .findings
            .iter()
            .find(|f| f.rule == rule)
            .map(|f| (f.file.as_str(), f.line))
            .expect("finding present")
    };
    assert_eq!(line_of(Rule::Determinism), ("crates/core/src/lib.rs", 5));
    assert_eq!(line_of(Rule::PanicSafety), ("crates/core/src/lib.rs", 9));
    assert_eq!(line_of(Rule::MetricSchema), ("crates/core/src/lib.rs", 13));
    assert_eq!(line_of(Rule::PaperConst), ("crates/core/src/lib.rs", 17));
    assert_eq!(
        line_of(Rule::UnsafeAudit),
        ("crates/lowlevel/src/lib.rs", 4)
    );
    assert_eq!(line_of(Rule::Concurrency), ("crates/core/src/hot.rs", 4));
    assert_eq!(line_of(Rule::HotPath), ("crates/core/src/hot.rs", 8));
    // Rule M anchors at the dead metric's DESIGN.md table row.
    assert_eq!(line_of(Rule::MetricLiveness), ("DESIGN.md", 7));
}

#[test]
fn annotations_and_allowlist_suppress_every_finding() {
    let report = check(&fixture("suppressed")).expect("fixture loads");
    assert!(report.passed(), "{:#?}", report.findings);
    // Both budgets are exactly met, so no ratchet-down warning either.
    assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    // Suppression hides findings, not the censuses.
    assert_eq!(report.unsafe_census["lowlevel"], 1);
    assert_eq!(report.panic_inventory["crates/core/src/lib.rs"], 1);
    // The budgeted hot-path site still shows in the inventory (the
    // inline-justified one does not).
    assert_eq!(report.hot_path_inventory["crates/core/src/hot.rs::push"], 1);
}

#[test]
fn missing_design_schema_is_a_check_error() {
    let err = check(&fixture("noschema")).expect_err("no DESIGN.md");
    assert!(matches!(err, CheckError::MissingSchema), "{err}");
}

#[test]
fn reports_render_in_both_formats() {
    let report = check(&fixture("violations")).expect("fixture loads");
    let human = report.render_human();
    assert!(human.contains("--- crates/core/src/lib.rs"));
    assert!(human.contains("[D:1 P:1 S:1 U:1 C:1 H:1 R:1 M:1]"));
    assert!(human.contains("hot-path fn(s)"));
    let json = report.render_json();
    assert!(json.contains("\"passed\": false"));
    for code in [
        "\"D\"", "\"P\"", "\"S\"", "\"U\"", "\"C\"", "\"H\"", "\"R\"", "\"M\"",
    ] {
        assert!(json.contains(code), "missing rule code {code} in {json}");
    }
    assert!(json.contains("\"hot_path\""));
}

/// Recreate `src`'s tree under `dst`, visiting directory entries in
/// reverse lexicographic order so the on-disk creation order differs
/// from the original.
fn copy_tree_reversed(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("mkdir");
    let mut entries: Vec<_> = std::fs::read_dir(src)
        .expect("readdir")
        .map(|e| e.expect("entry").path())
        .collect();
    entries.sort();
    entries.reverse();
    for path in entries {
        let to = dst.join(path.file_name().expect("name"));
        if path.is_dir() {
            copy_tree_reversed(&path, &to);
        } else {
            std::fs::copy(&path, &to).expect("copy");
        }
    }
}

#[test]
fn reports_are_byte_identical_across_runs_and_discovery_orders() {
    let root = fixture("violations");
    let first = check(&root).expect("fixture loads");
    let second = check(&root).expect("fixture loads");
    assert_eq!(
        first.render_json(),
        second.render_json(),
        "repeated runs must render identically"
    );
    assert_eq!(first.render_human(), second.render_human());

    // A copy of the same tree created in reverse order must render the
    // exact same bytes: discovery is sorted, findings are sorted, and
    // nothing in the report depends on the filesystem's enumeration
    // order or on wall-clock time.
    let copy =
        std::env::temp_dir().join(format!("airfinger-lint-determinism-{}", std::process::id()));
    if copy.exists() {
        std::fs::remove_dir_all(&copy).expect("clean stale copy");
    }
    copy_tree_reversed(&root, &copy);
    let from_copy = check(&copy).expect("copied fixture loads");
    assert_eq!(first.render_json(), from_copy.render_json());
    assert_eq!(first.render_human(), from_copy.render_human());
    std::fs::remove_dir_all(&copy).expect("cleanup");
}

#[test]
fn the_real_workspace_is_clean_at_head() {
    // tests/ lives two levels under the repo root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let report = check(root).expect("workspace loads");
    assert!(report.passed(), "{}", report.render_human());
    assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    // The real hot path is non-trivial: the roots annotated in
    // crates/core, crates/fleet reach a real slice of the workspace.
    assert!(
        report.hot_path_functions >= 50,
        "only {} hot-path fns — did the root annotations move?",
        report.hot_path_functions
    );
}
