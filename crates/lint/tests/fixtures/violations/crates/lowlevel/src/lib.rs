// Fixture: rule U fires exactly once (unsafe with no SAFETY comment).

fn deref(p: *const u8) -> u8 {
    unsafe { *p }
}
