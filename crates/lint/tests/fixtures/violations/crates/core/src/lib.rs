// Fixture: each of rules D, P, S, C fires exactly once in this file.
// Never compiled — scanned by the airfinger-lint integration tests only.

fn wall_clock() {
    let _t = std::time::Instant::now();
}

fn panics() {
    Some(1).unwrap();
}

fn metrics() {
    counter!("rogue_metric_total").inc();
}

fn constants() {
    let _sample_rate_hz = 100.0;
}
