// Fixture: rules H and R fire exactly once each — one allocation in a
// hot-path root, one bare shared static outside the host crates.

static SHARED: u8 = 0;

// lint: hot-path-root — fixture streaming entry point
fn push(sample: &[f64]) -> Vec<f64> {
    sample.to_vec()
}
