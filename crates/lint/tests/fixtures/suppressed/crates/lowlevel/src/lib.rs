// Fixture: the unsafe site carries its SAFETY comment.

fn deref(p: *const u8) -> u8 {
    // SAFETY: the fixture caller always passes a valid, aligned pointer.
    unsafe { *p }
}
