// Fixture: the same sites as the violations fixture, each suppressed by
// its documented escape hatch. Never compiled — scanned by tests only.

fn wall_clock() {
    // lint: wall-clock — display only, never feeds a result
    let _t = std::time::Instant::now();
}

fn panics() {
    Some(1).unwrap(); // budgeted by lint-allow.toml
}

fn metrics() {
    counter!("good_metric_total").inc();
}

fn constants() {
    let _sample_rate_hz = 100.0; // lint: paper-const — doc example
}
