// Fixture: the same sites as the violations fixture, suppressed by the
// rule H/R escape hatches — inline justifications and the [hot-path]
// budget in lint-allow.toml.

// lint: sync — the fixture's zero-sized marker is trivially shareable
static SHARED: u8 = 0;

// lint: hot-path-root — fixture streaming entry point
fn push(sample: &[f64]) -> Vec<f64> {
    let _budgeted = sample.to_owned();
    // lint: hot-path — ownership handoff for the caller
    sample.to_vec()
}
