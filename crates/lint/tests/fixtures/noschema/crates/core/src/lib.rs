// Fixture: a clean file in a workspace with no DESIGN.md at all.

fn fine() {}
