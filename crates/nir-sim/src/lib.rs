//! Physics-based simulator of the airFinger NIR sensing hardware.
//!
//! The paper's prototype is a custom sensor: two 940 nm NIR LEDs
//! (304IRC-94, 20° field of view) and three NIR photodiodes (304PT,
//! 700–1000 nm, 80° field of view) alternating side by side behind a
//! 3D-printed black shield, read through amplifiers and an Arduino UNO ADC
//! at 100 Hz. This crate reproduces that hardware as an optical simulation
//! so that the rest of the pipeline can be exercised without the physical
//! device:
//!
//! * [`vec3`] — minimal 3-D vector math.
//! * [`components`] — LED and photodiode models (emission lobe, spectral
//!   overlap, angular responsivity, shield clipping).
//! * [`layout`] — the alternating `P1 L1 P2 L2 P3` board layout builder.
//! * [`skin`] — diffuse skin reflectance at NIR wavelengths.
//! * [`finger`] — the fingertip reflector patch.
//! * [`channel`] — the LED → finger → photodiode optical path.
//! * [`ambient`] — ambient NIR sources: indoor baseline, sunlight by time
//!   of day, passers-by, IR remote bursts.
//! * [`noise`] — shot noise, thermal noise and hardware spikes.
//! * [`adc`] — amplifier gain and 10-bit ADC quantization/saturation.
//! * [`sampler`] — drives a finger trajectory through the scene at 100 Hz
//!   and produces a multi-channel [`trace::RssTrace`].
//! * [`power`] — the component power budget (the paper reports 24 mW for
//!   LEDs + PDs).
//! * [`modulation`] — the §VI outdoor extension: chopped LEDs with lock-in
//!   demodulation, cancelling arbitrary ambient light.
//!
//! # Example
//!
//! ```
//! use airfinger_nir_sim::layout::SensorLayout;
//! use airfinger_nir_sim::sampler::{Sampler, Scene};
//! use airfinger_nir_sim::vec3::Vec3;
//!
//! let scene = Scene::new(SensorLayout::paper_prototype());
//! let sampler = Sampler::new(scene, 100.0);
//! // Hold a fingertip 2 cm above the board center for half a second.
//! let trace = sampler.sample(0.5, 42, |_t| Some(Vec3::new(0.0, 0.0, 0.02)));
//! assert_eq!(trace.channel_count(), 3);
//! assert_eq!(trace.len(), 50);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adc;
pub mod ambient;
pub mod channel;
pub mod components;
pub mod finger;
pub mod layout;
pub mod modulation;
pub mod noise;
pub mod power;
pub mod sampler;
pub mod skin;
pub mod trace;
pub mod vec3;

pub use layout::SensorLayout;
pub use sampler::{Sampler, Scene};
pub use trace::RssTrace;
pub use vec3::Vec3;
