//! Amplifier and ADC model: the prototype reads the photodiodes through
//! amplifiers into an Arduino UNO's 10-bit ADC at 100 Hz.
//!
//! The front end compresses softly (`tanh`) before quantizing: a
//! phototransistor's current gain falls off at high photocurrents and the
//! amplifier output stage approaches its rail gradually, so a close, bright
//! finger compresses the signal rather than slamming into a hard clip.
//! Without this, the d⁴ path-loss law would make every close-range gesture
//! an information-free flat line — whereas the paper's prototype keeps
//! working down to 0.5 cm.

use serde::{Deserialize, Serialize};

/// Transimpedance-amplifier + ADC front end.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Adc {
    /// Conversion gain from photocurrent (simulator radiometric units) to
    /// pre-compression counts.
    pub gain: f64,
    /// Electronics bias in counts (op-amp offset + dark current), added
    /// after compression.
    pub offset_counts: f64,
    /// Resolution in bits (Arduino UNO: 10).
    pub bits: u32,
}

impl Adc {
    /// Full-scale count (e.g. 1023 for 10 bits).
    #[must_use]
    pub fn full_scale(&self) -> f64 {
        ((1u64 << self.bits) - 1) as f64
    }

    /// Convert a photocurrent plus additive noise (already in counts) into
    /// a soft-compressed, quantized, saturated ADC reading.
    #[must_use]
    pub fn convert(&self, photocurrent: f64, noise_counts: f64) -> f64 {
        let fs = self.full_scale();
        let compressed = fs * (self.gain * photocurrent / fs).tanh();
        (compressed + self.offset_counts + noise_counts)
            .round()
            .clamp(0.0, fs)
    }

    /// Whether a reading sits in the deep-compression region (above 95 % of
    /// full scale) — the §VI outdoor failure mode.
    #[must_use]
    pub fn is_saturated(&self, reading: f64) -> bool {
        reading >= 0.95 * self.full_scale()
    }

    /// Build an ADC whose gain maps `reference_signal` (the photocurrent of
    /// a reference fingertip pose) to `target_counts` above the offset,
    /// accounting for the soft compression.
    ///
    /// # Panics
    ///
    /// Panics if `reference_signal` is not positive or `target_counts` is
    /// not inside `(0, full_scale)`.
    #[must_use]
    pub fn calibrated(reference_signal: f64, target_counts: f64, offset_counts: f64) -> Self {
        assert!(reference_signal > 0.0, "reference signal must be positive");
        let fs = ((1u64 << 10) - 1) as f64;
        assert!(
            target_counts > 0.0 && target_counts < fs,
            "target counts must be inside the ADC range"
        );
        // Invert out = fs·tanh(gain·ref/fs): gain = fs·atanh(target/fs)/ref.
        let gain = fs * (target_counts / fs).atanh() / reference_signal;
        Adc {
            gain,
            offset_counts,
            bits: 10,
        }
    }
}

impl Default for Adc {
    fn default() -> Self {
        Adc {
            gain: 1.0,
            offset_counts: 60.0,
            bits: 10,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_10bit() {
        assert_eq!(Adc::default().full_scale(), 1023.0);
    }

    #[test]
    fn convert_is_monotone() {
        let adc = Adc {
            gain: 2.0,
            offset_counts: 10.0,
            bits: 10,
        };
        let mut prev = -1.0;
        for k in 0..200 {
            let out = adc.convert(k as f64 * 10.0, 0.0);
            assert!(out >= prev, "monotone at {k}");
            prev = out;
        }
    }

    #[test]
    fn convert_linear_at_low_signal() {
        // tanh(x) ≈ x for small x: low signals stay essentially linear.
        let adc = Adc {
            gain: 1.0,
            offset_counts: 0.0,
            bits: 10,
        };
        let out = adc.convert(50.0, 0.0);
        assert!((out - 50.0).abs() <= 1.0, "out = {out}");
    }

    #[test]
    fn convert_compresses_high_signal() {
        let adc = Adc {
            gain: 1.0,
            offset_counts: 0.0,
            bits: 10,
        };
        // Equal input steps produce shrinking output steps near the rail.
        let d_low = adc.convert(150.0, 0.0) - adc.convert(100.0, 0.0);
        let d_high = adc.convert(1600.0, 0.0) - adc.convert(1550.0, 0.0);
        assert!(d_high < d_low / 2.0, "low {d_low} vs high {d_high}");
    }

    #[test]
    fn convert_never_exceeds_full_scale() {
        let adc = Adc {
            gain: 1.0,
            offset_counts: 60.0,
            bits: 10,
        };
        assert!(adc.convert(1e12, 100.0) <= 1023.0);
        assert_eq!(adc.convert(-50.0, -500.0), 0.0);
    }

    #[test]
    fn quantizes_to_integers() {
        let adc = Adc {
            gain: 1.0,
            offset_counts: 0.0,
            bits: 10,
        };
        let out = adc.convert(100.4, 0.2);
        assert_eq!(out, out.round());
    }

    #[test]
    fn saturation_flag() {
        let adc = Adc::default();
        assert!(adc.is_saturated(1000.0));
        assert!(!adc.is_saturated(500.0));
    }

    #[test]
    fn calibration_hits_target() {
        let adc = Adc::calibrated(4.0e-4, 400.0, 60.0);
        assert!((adc.convert(4.0e-4, 0.0) - 460.0).abs() <= 1.0);
    }

    #[test]
    #[should_panic(expected = "reference signal")]
    fn calibration_rejects_zero_reference() {
        let _ = Adc::calibrated(0.0, 400.0, 60.0);
    }

    #[test]
    #[should_panic(expected = "target counts")]
    fn calibration_rejects_overrange_target() {
        let _ = Adc::calibrated(1.0, 1100.0, 0.0);
    }
}
