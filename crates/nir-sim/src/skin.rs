//! Diffuse skin reflectance at NIR wavelengths.
//!
//! The paper cites Meglinski & Matcher (Physiol. Meas. 2002): human skin
//! absorbs only a tiny amount of NIR, so "most of the emitted NIR will be
//! reflected by the fingers". We model skin as a Lambertian reflector with
//! a wavelength-dependent albedo peaking in the 800–1000 nm window.

use serde::{Deserialize, Serialize};

/// Lambertian skin reflectance model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SkinModel {
    /// Diffuse albedo at the reference wavelength (940 nm).
    pub albedo_940: f64,
}

impl SkinModel {
    /// Typical fingertip skin: ~60 % diffuse reflectance at 940 nm.
    #[must_use]
    pub fn typical() -> Self {
        SkinModel { albedo_940: 0.6 }
    }

    /// Albedo at `wavelength_nm`. A smooth bump around the NIR window:
    /// full value at 940 nm, falling toward the visible and the water
    /// absorption band beyond 1150 nm.
    #[must_use]
    pub fn albedo(&self, wavelength_nm: f64) -> f64 {
        let x = (wavelength_nm - 940.0) / 250.0;
        (self.albedo_940 * (-x * x).exp()).clamp(0.0, 1.0)
    }

    /// Reflected radiant intensity (per steradian) toward `cos_out` given
    /// incident irradiance `irradiance` arriving at incidence cosine
    /// `cos_in` on a patch of area `area_m2`.
    ///
    /// Lambertian BRDF: `L = ρ·E·cosθᵢ / π`, intensity toward the exit
    /// direction scales with `cosθᵣ`.
    #[must_use]
    pub fn reflected_intensity(
        &self,
        irradiance: f64,
        cos_in: f64,
        cos_out: f64,
        area_m2: f64,
        wavelength_nm: f64,
    ) -> f64 {
        if cos_in <= 0.0 || cos_out <= 0.0 {
            return 0.0;
        }
        self.albedo(wavelength_nm) * irradiance * cos_in * cos_out * area_m2 / std::f64::consts::PI
    }
}

impl Default for SkinModel {
    fn default() -> Self {
        SkinModel::typical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn albedo_peaks_at_940() {
        let s = SkinModel::typical();
        assert!((s.albedo(940.0) - 0.6).abs() < 1e-12);
        assert!(s.albedo(940.0) > s.albedo(700.0));
        assert!(s.albedo(940.0) > s.albedo(1300.0));
    }

    #[test]
    fn albedo_bounded() {
        let s = SkinModel { albedo_940: 0.9 };
        for wl in (400..1500).step_by(50) {
            let a = s.albedo(wl as f64);
            assert!((0.0..=1.0).contains(&a));
        }
    }

    #[test]
    fn reflection_zero_at_grazing() {
        let s = SkinModel::typical();
        assert_eq!(s.reflected_intensity(1.0, 0.0, 1.0, 1e-4, 940.0), 0.0);
        assert_eq!(s.reflected_intensity(1.0, 1.0, -0.2, 1e-4, 940.0), 0.0);
    }

    #[test]
    fn reflection_scales_with_irradiance_and_area() {
        let s = SkinModel::typical();
        let base = s.reflected_intensity(1.0, 1.0, 1.0, 1e-4, 940.0);
        assert!((s.reflected_intensity(2.0, 1.0, 1.0, 1e-4, 940.0) - 2.0 * base).abs() < 1e-15);
        assert!((s.reflected_intensity(1.0, 1.0, 1.0, 2e-4, 940.0) - 2.0 * base).abs() < 1e-15);
    }

    #[test]
    fn reflection_conserves_energy_scale() {
        // Reflected intensity integrated over the hemisphere (∫cosθ dΩ = π)
        // equals ρ·E·cosθᵢ·A — never more than the incident flux.
        let s = SkinModel::typical();
        let e = 5.0;
        let area = 1e-4;
        let peak = s.reflected_intensity(e, 1.0, 1.0, area, 940.0);
        let total = peak * std::f64::consts::PI; // hemisphere integral
        assert!(total <= e * area + 1e-12);
    }
}
