//! Optical component models: NIR LEDs and photodiodes.
//!
//! The paper's parts: 304IRC-94 emitters (940 nm, 20° viewing angle) and
//! 304PT phototransistors (700–1000 nm spectral response, 80° viewing
//! angle), both 3 mm in diameter, retailing around $0.2 each.

use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Near-field softening of the inverse-square law, in m² — the square of
/// the effective reflector/emitter extent (~25 mm: the thumb+index pair is
/// not a point). Both optical legs divide by `d² + NEAR_FIELD_M2` instead
/// of `d²`, which flattens the response at gesture range the way a real
/// extended reflector does; without it a point-patch d⁴ law would make the
/// paper's working band (0.5–6 cm) span four orders of magnitude, which no
/// 10-bit front end could digitize.
pub const NEAR_FIELD_M2: f64 = 0.000_625;

/// Emission model of an NIR LED.
///
/// Radiant intensity follows a generalized Lambertian lobe
/// `I(θ) = I₀ · cosᵐ(θ)` where `m` is chosen so intensity halves at the
/// datasheet half-angle (half the quoted viewing angle). A hard cutoff at
/// `cutoff_deg` models the shield that the prototype adds around each
/// component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LedSpec {
    /// Peak emission wavelength in nanometers.
    pub wavelength_nm: f64,
    /// Full viewing angle in degrees (datasheet "20°").
    pub viewing_angle_deg: f64,
    /// On-axis radiant intensity in arbitrary radiometric units.
    pub intensity: f64,
    /// Hard emission cutoff half-angle in degrees (shield aperture).
    pub cutoff_deg: f64,
    /// Electrical power draw in watts when driven.
    pub electrical_power_w: f64,
}

impl LedSpec {
    /// The 304IRC-94 emitter of the prototype: 940 nm, nominal 20° viewing
    /// angle. The *effective* lobe is modelled wider (40° half-power)
    /// because cheap 3 mm epoxy LEDs emit substantial side light beyond
    /// their nominal beam — and because the paper's sensor keeps working
    /// at 6 cm with lateral finger offsets that a literal 20° spotlight
    /// could not illuminate.
    #[must_use]
    pub fn ir304c94() -> Self {
        LedSpec {
            wavelength_nm: 940.0,
            viewing_angle_deg: 40.0,
            intensity: 1.0,
            cutoff_deg: 55.0,
            electrical_power_w: 0.008,
        }
    }

    /// Lambertian exponent `m` from the datasheet half-angle.
    #[must_use]
    pub fn lobe_exponent(&self) -> f64 {
        let half = (self.viewing_angle_deg / 2.0).to_radians();
        // I(θ_half) = I0/2 → m = ln(0.5) / ln(cos θ_half)
        (0.5f64).ln() / half.cos().ln()
    }

    /// Radiant intensity toward a direction `off_axis` radians from the
    /// optical axis.
    #[must_use]
    pub fn intensity_at(&self, off_axis: f64) -> f64 {
        let theta = off_axis.abs();
        if theta >= self.cutoff_deg.to_radians() || theta >= std::f64::consts::FRAC_PI_2 {
            return 0.0;
        }
        self.intensity * theta.cos().powf(self.lobe_exponent())
    }
}

/// Responsivity model of an NIR photodiode / phototransistor.
///
/// Angular response is `cosᵏ(θ)` with `k` fitted to the datasheet
/// half-angle, clipped at the shield aperture. Spectral response covers
/// `spectral_lo_nm..spectral_hi_nm` with a triangular weighting peaking at
/// `spectral_peak_nm`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhotodiodeSpec {
    /// Full viewing angle in degrees (datasheet "80°").
    pub viewing_angle_deg: f64,
    /// Active area in m² (3 mm diameter disc).
    pub area_m2: f64,
    /// Lower edge of spectral response in nm.
    pub spectral_lo_nm: f64,
    /// Upper edge of spectral response in nm.
    pub spectral_hi_nm: f64,
    /// Peak-response wavelength in nm.
    pub spectral_peak_nm: f64,
    /// Conversion gain from received optical flux (radiometric units) to
    /// photocurrent (signal units before the amplifier).
    pub responsivity: f64,
    /// Hard acceptance cutoff half-angle in degrees (shield aperture).
    pub cutoff_deg: f64,
    /// Electrical power draw in watts.
    pub electrical_power_w: f64,
}

impl PhotodiodeSpec {
    /// The 304PT detector of the prototype: 700–1000 nm, 80° viewing angle,
    /// 3 mm diameter.
    #[must_use]
    pub fn pt304() -> Self {
        let r = 0.0015; // 3 mm diameter
        PhotodiodeSpec {
            // The bare part sees 80°; the 3D-printed black shield narrows
            // the effective acceptance to ~50°, which is what localizes
            // each photodiode's view of the finger.
            viewing_angle_deg: 50.0,
            area_m2: std::f64::consts::PI * r * r,
            spectral_lo_nm: 700.0,
            spectral_hi_nm: 1000.0,
            spectral_peak_nm: 940.0,
            responsivity: 1.0,
            cutoff_deg: 42.0,
            electrical_power_w: 0.002,
        }
    }

    /// Angular response exponent `k` from the datasheet half-angle.
    #[must_use]
    pub fn angular_exponent(&self) -> f64 {
        let half = (self.viewing_angle_deg / 2.0).to_radians();
        (0.5f64).ln() / half.cos().ln()
    }

    /// Relative angular response for light arriving `off_axis` radians from
    /// the detector normal.
    #[must_use]
    pub fn angular_response(&self, off_axis: f64) -> f64 {
        let theta = off_axis.abs();
        if theta >= self.cutoff_deg.to_radians() || theta >= std::f64::consts::FRAC_PI_2 {
            return 0.0;
        }
        theta.cos().powf(self.angular_exponent())
    }

    /// Relative spectral response at `wavelength_nm` (triangular, 0 outside
    /// the response band).
    #[must_use]
    pub fn spectral_response(&self, wavelength_nm: f64) -> f64 {
        if wavelength_nm < self.spectral_lo_nm || wavelength_nm > self.spectral_hi_nm {
            return 0.0;
        }
        if wavelength_nm <= self.spectral_peak_nm {
            (wavelength_nm - self.spectral_lo_nm) / (self.spectral_peak_nm - self.spectral_lo_nm)
        } else {
            (self.spectral_hi_nm - wavelength_nm) / (self.spectral_hi_nm - self.spectral_peak_nm)
        }
    }
}

/// A placed LED: spec + position + optical axis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Led {
    /// Component model.
    pub spec: LedSpec,
    /// Position on the board in meters.
    pub position: Vec3,
    /// Optical axis (unit vector), `+z` for the flat prototype.
    pub axis: Vec3,
}

impl Led {
    /// Radiant intensity from this LED toward world-space point `p`.
    #[must_use]
    pub fn intensity_toward(&self, p: Vec3) -> f64 {
        let dir = p - self.position;
        if dir.dot(self.axis) <= 0.0 {
            return 0.0; // behind the board
        }
        self.spec.intensity_at(dir.angle_to(self.axis))
    }

    /// Irradiance (flux per area) delivered at point `p`, with near-field
    /// softened inverse-square falloff (see [`NEAR_FIELD_M2`]).
    #[must_use]
    pub fn irradiance_at(&self, p: Vec3) -> f64 {
        let d2 = (p - self.position).length_sq() + NEAR_FIELD_M2;
        self.intensity_toward(p) / d2
    }
}

/// A placed photodiode: spec + position + normal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Photodiode {
    /// Component model.
    pub spec: PhotodiodeSpec,
    /// Position on the board in meters.
    pub position: Vec3,
    /// Detector normal (unit vector).
    pub axis: Vec3,
}

impl Photodiode {
    /// Signal contribution from a point source of radiant intensity
    /// `intensity` located at `p` emitting at `wavelength_nm`.
    #[must_use]
    pub fn signal_from(&self, p: Vec3, intensity: f64, wavelength_nm: f64) -> f64 {
        let dir = p - self.position;
        if dir.dot(self.axis) <= 0.0 {
            return 0.0;
        }
        let d2 = dir.length_sq() + NEAR_FIELD_M2;
        let ang = self.spec.angular_response(dir.angle_to(self.axis));
        let spec = self.spec.spectral_response(wavelength_nm);
        self.spec.responsivity * intensity * self.spec.area_m2 * ang * spec / d2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn led_halves_at_half_angle() {
        let led = LedSpec::ir304c94();
        let half = (led.viewing_angle_deg / 2.0).to_radians();
        let on_axis = led.intensity_at(0.0);
        let at_half = led.intensity_at(half);
        assert!((at_half / on_axis - 0.5).abs() < 1e-9);
    }

    #[test]
    fn led_cutoff_is_dark() {
        let led = LedSpec::ir304c94();
        assert_eq!(led.intensity_at(led.cutoff_deg.to_radians() + 0.01), 0.0);
    }

    #[test]
    fn led_lobe_falls_off_axis() {
        // At 35° off axis (just inside the shield cutoff) the intensity has
        // dropped well below half power.
        let led = LedSpec::ir304c94();
        let ratio = led.intensity_at(35f64.to_radians()) / led.intensity_at(0.0);
        assert!(ratio < 0.5, "ratio = {ratio}");
        assert!(ratio > 0.0);
    }

    #[test]
    fn pd_halves_at_half_angle() {
        let pd = PhotodiodeSpec::pt304();
        let half = (pd.viewing_angle_deg / 2.0).to_radians();
        assert!((pd.angular_response(half) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn pd_accepts_moderate_off_axis() {
        let pd = PhotodiodeSpec::pt304();
        // The shielded PD still sees 20°-off-axis light at a substantial
        // fraction.
        assert!(pd.angular_response(20f64.to_radians()) > 0.5);
    }

    #[test]
    fn pd_shield_cutoff() {
        let pd = PhotodiodeSpec::pt304();
        assert_eq!(pd.angular_response(pd.cutoff_deg.to_radians() + 0.02), 0.0);
    }

    #[test]
    fn pd_spectral_band() {
        let pd = PhotodiodeSpec::pt304();
        assert_eq!(pd.spectral_response(650.0), 0.0);
        assert_eq!(pd.spectral_response(1050.0), 0.0);
        assert!((pd.spectral_response(940.0) - 1.0).abs() < 1e-12);
        assert!(pd.spectral_response(800.0) > 0.0);
    }

    #[test]
    fn led_softened_inverse_square() {
        let led = Led {
            spec: LedSpec::ir304c94(),
            position: Vec3::ZERO,
            axis: Vec3::UP,
        };
        // Near range: softened (ratio < 4 for a distance doubling)…
        let near = led.irradiance_at(Vec3::new(0.0, 0.0, 0.01));
        let mid = led.irradiance_at(Vec3::new(0.0, 0.0, 0.02));
        let r_near = near / mid;
        assert!(r_near > 1.0 && r_near < 2.0, "near ratio {r_near}");
        // Far range: approaches true inverse-square.
        let far_a = led.irradiance_at(Vec3::new(0.0, 0.0, 0.10));
        let far_b = led.irradiance_at(Vec3::new(0.0, 0.0, 0.20));
        let r_far = far_a / far_b;
        assert!((r_far - 4.0).abs() < 0.4, "far ratio {r_far}");
    }

    #[test]
    fn led_dark_behind_board() {
        let led = Led {
            spec: LedSpec::ir304c94(),
            position: Vec3::ZERO,
            axis: Vec3::UP,
        };
        assert_eq!(led.irradiance_at(Vec3::new(0.0, 0.0, -0.05)), 0.0);
    }

    #[test]
    fn pd_signal_decreases_with_distance() {
        let pd = Photodiode {
            spec: PhotodiodeSpec::pt304(),
            position: Vec3::ZERO,
            axis: Vec3::UP,
        };
        let s1 = pd.signal_from(Vec3::new(0.0, 0.0, 0.01), 1.0, 940.0);
        let s2 = pd.signal_from(Vec3::new(0.0, 0.0, 0.03), 1.0, 940.0);
        assert!(s1 > s2 && s2 > 0.0);
    }

    #[test]
    fn pd_ignores_out_of_band_source() {
        let pd = Photodiode {
            spec: PhotodiodeSpec::pt304(),
            position: Vec3::ZERO,
            axis: Vec3::UP,
        };
        assert_eq!(pd.signal_from(Vec3::new(0.0, 0.0, 0.02), 1.0, 550.0), 0.0);
    }

    #[test]
    fn pd_dark_behind_board() {
        let pd = Photodiode {
            spec: PhotodiodeSpec::pt304(),
            position: Vec3::ZERO,
            axis: Vec3::UP,
        };
        assert_eq!(pd.signal_from(Vec3::new(0.0, 0.0, -0.02), 1.0, 940.0), 0.0);
    }
}
