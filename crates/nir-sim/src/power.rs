//! Component power budget.
//!
//! The paper reports "the total power consumed by the PDs and LEDs is
//! highly efficient, 24 mW excluding the consumption of the
//! microcontroller". This module accounts for that budget and lets the
//! ablation benches reason about duty-cycling.

use crate::layout::SensorLayout;
use serde::{Deserialize, Serialize};

/// A power budget breakdown in watts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBudget {
    /// Total LED draw.
    pub leds_w: f64,
    /// Total photodiode draw.
    pub photodiodes_w: f64,
    /// Duty cycle applied to the LEDs in `[0, 1]`.
    pub led_duty: f64,
}

impl PowerBudget {
    /// Budget for a layout with LEDs driven at `led_duty`.
    ///
    /// # Panics
    ///
    /// Panics if `led_duty` is outside `[0, 1]`.
    #[must_use]
    pub fn for_layout(layout: &SensorLayout, led_duty: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&led_duty),
            "duty cycle must be in [0, 1]"
        );
        let leds_w: f64 = layout
            .leds()
            .iter()
            .map(|l| l.spec.electrical_power_w)
            .sum::<f64>()
            * led_duty;
        let photodiodes_w: f64 = layout
            .photodiodes()
            .iter()
            .map(|p| p.spec.electrical_power_w)
            .sum();
        PowerBudget {
            leds_w,
            photodiodes_w,
            led_duty,
        }
    }

    /// Total sensor draw in watts.
    #[must_use]
    pub fn total_w(&self) -> f64 {
        self.leds_w + self.photodiodes_w
    }

    /// Total sensor draw in milliwatts.
    #[must_use]
    pub fn total_mw(&self) -> f64 {
        self.total_w() * 1000.0
    }

    /// Energy in joules consumed over `seconds` of operation.
    #[must_use]
    pub fn energy_j(&self, seconds: f64) -> f64 {
        self.total_w() * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_budget_matches_paper_scale() {
        // 2 LEDs × 8 mW + 3 PDs × 2 mW = 22 mW at full duty — the paper's
        // "24 mW" scale.
        let b = PowerBudget::for_layout(&SensorLayout::paper_prototype(), 1.0);
        assert!(
            (15.0..=30.0).contains(&b.total_mw()),
            "total = {} mW",
            b.total_mw()
        );
    }

    #[test]
    fn duty_cycling_scales_led_share_only() {
        let layout = SensorLayout::paper_prototype();
        let full = PowerBudget::for_layout(&layout, 1.0);
        let half = PowerBudget::for_layout(&layout, 0.5);
        assert!((half.leds_w - full.leds_w / 2.0).abs() < 1e-12);
        assert_eq!(half.photodiodes_w, full.photodiodes_w);
    }

    #[test]
    fn energy_scales_with_time() {
        let b = PowerBudget::for_layout(&SensorLayout::paper_prototype(), 1.0);
        assert!((b.energy_j(10.0) - 10.0 * b.total_w()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "duty cycle")]
    fn bad_duty_panics() {
        let _ = PowerBudget::for_layout(&SensorLayout::paper_prototype(), 1.5);
    }
}
