//! LED modulation with synchronous (lock-in) demodulation — the paper's
//! §VI "Outdoors Situation" proposal, implemented.
//!
//! Under strong sunlight the photodiodes approach saturation and the DC
//! reflection measurement drowns. The classical fix the paper sketches
//! ("frequency modulation, high sample rate, and adjustable amplifiers")
//! is a lock-in front end: the LEDs toggle at half the fast ADC rate, and
//! the demodulator outputs the difference between LED-on and LED-off
//! readings. Ambient light — however bright — contributes equally to both
//! phases and cancels; only LED-correlated reflection survives.
//!
//! The [`ModulatedSampler`] oversamples the scene at `2 × chop_rate` and
//! emits demodulated RSS at the usual 100 Hz, so the downstream pipeline is
//! unchanged. The residual ambient effect is shot noise (which grows with
//! the ambient level) plus any ambient *change* between adjacent phases
//! (negligible below kHz chop rates).

use crate::finger::SkinPatch;
use crate::noise::NoiseModel;
use crate::sampler::Scene;
use crate::trace::RssTrace;
use crate::vec3::Vec3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A lock-in sampler: chopped LEDs + synchronous demodulation.
///
/// # Example
///
/// ```
/// use airfinger_nir_sim::modulation::ModulatedSampler;
/// use airfinger_nir_sim::sampler::Scene;
/// use airfinger_nir_sim::{SensorLayout, Vec3};
///
/// // Even under harsh noon sunlight the demodulated baseline stays low.
/// let scene = Scene::outdoor_noon(SensorLayout::paper_prototype());
/// let sampler = ModulatedSampler::new(scene, 100.0, 4);
/// let trace = sampler.sample(0.2, 1, |_t| Some(Vec3::new(0.0, 0.0, 0.02)));
/// assert_eq!(trace.channel_count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct ModulatedSampler {
    scene: Scene,
    output_rate_hz: f64,
    /// LED on/off pairs per output sample (oversampling factor).
    pairs_per_sample: usize,
}

impl ModulatedSampler {
    /// Create a lock-in sampler emitting demodulated samples at
    /// `output_rate_hz`, averaging `pairs_per_sample` on/off pairs each.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive or `pairs_per_sample` is zero.
    #[must_use]
    pub fn new(scene: Scene, output_rate_hz: f64, pairs_per_sample: usize) -> Self {
        assert!(output_rate_hz > 0.0, "output rate must be positive");
        assert!(
            pairs_per_sample > 0,
            "need at least one chop pair per sample"
        );
        ModulatedSampler {
            scene,
            output_rate_hz,
            pairs_per_sample,
        }
    }

    /// The scene being sampled.
    #[must_use]
    pub fn scene(&self) -> &Scene {
        &self.scene
    }

    /// The effective LED chop rate in Hz.
    #[must_use]
    pub fn chop_rate_hz(&self) -> f64 {
        self.output_rate_hz * self.pairs_per_sample as f64
    }

    /// Record `duration_s` seconds of demodulated RSS. The output trace
    /// carries `|on − off|` readings re-biased to the ADC offset, so the
    /// downstream pipeline sees the same signal structure as the plain
    /// sampler — minus the ambient term.
    pub fn sample<F>(&self, duration_s: f64, seed: u64, trajectory: F) -> RssTrace
    where
        F: Fn(f64) -> Option<Vec3>,
    {
        let n = (duration_s * self.output_rate_hz).round() as usize;
        let pd_count = self.scene.layout.photodiodes().len();
        let mut trace = RssTrace::new(pd_count, self.output_rate_hz);
        let mut rng = StdRng::seed_from_u64(seed);
        let phase: f64 = rng.gen();
        let mut hand_anchor: Option<Vec3> = None;
        let dt_pair = 1.0 / self.chop_rate_hz();
        let mut out = vec![0.0; pd_count];
        for i in 0..n {
            let t0 = i as f64 / self.output_rate_hz;
            out.iter_mut().for_each(|v| *v = 0.0);
            for pair in 0..self.pairs_per_sample {
                let t = t0 + pair as f64 * dt_pair;
                let finger_pos = trajectory(t);
                let mut patches: Vec<SkinPatch> = Vec::with_capacity(2);
                if let Some(pos) = finger_pos {
                    let anchor = *hand_anchor.get_or_insert(pos);
                    patches.push(SkinPatch::fingertip(pos));
                    patches.push(SkinPatch::hand_back(
                        anchor + self.scene.hand_offset + (pos - anchor) * self.scene.hand_follow,
                    ));
                } else {
                    hand_anchor = None;
                }
                let reflected = crate::channel::reflected_signals(&self.scene.layout, &patches);
                let mut irr = self.scene.ambient.irradiance(t);
                for src in &self.scene.interference {
                    irr += src.irradiance(t, phase);
                }
                for (k, acc) in out.iter_mut().enumerate() {
                    let ambient = self.scene.ambient_photocurrent(k, irr, 0.0);
                    // A synchronous detector subtracts the two phases in
                    // the analog domain (AC coupling): the ambient DC never
                    // reaches the compressing output stage. What survives
                    // of the ambient is its shot noise, which scales with
                    // the *total* photocurrent of each phase.
                    let level_on = (self.scene.adc.gain * (reflected[k] + ambient))
                        .min(self.scene.adc.full_scale());
                    let level_off =
                        (self.scene.adc.gain * ambient).min(self.scene.adc.full_scale());
                    let noise_on = self.scene.noise.sample(level_on, dt_pair, &mut rng);
                    let noise_off = self.scene.noise.sample(level_off, dt_pair, &mut rng);
                    let demod = self.scene.adc.convert(reflected[k], noise_on - noise_off)
                        - self.scene.adc.offset_counts;
                    *acc += demod.max(0.0);
                }
            }
            for v in out.iter_mut() {
                // Average the pairs and re-bias to the electronics offset so
                // downstream code sees familiar count levels.
                *v = (*v / self.pairs_per_sample as f64 + self.scene.adc.offset_counts)
                    .round()
                    .clamp(0.0, self.scene.adc.full_scale());
            }
            trace.push_sample(&out);
        }
        trace
    }
}

impl Scene {
    /// A scene under harsh outdoor sunlight: the §VI failure case. The
    /// in-band irradiance is an order of magnitude above the indoor level
    /// and pushes the plain (unmodulated) front end into deep compression.
    #[must_use]
    pub fn outdoor_noon(layout: crate::layout::SensorLayout) -> Self {
        let mut scene = Scene::new(layout);
        scene.ambient = crate::ambient::AmbientConditions {
            indoor_level: 40.0,
            sunlight_peak: 3000.0,
            hour_of_day: 13.0,
            drift_amplitude: 0.10,
            drift_period_s: 5.0,
            shield_leak: 0.12,
        };
        scene.noise = NoiseModel {
            shot_coeff: 0.08,
            ..NoiseModel::prototype()
        };
        scene
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::SensorLayout;
    use crate::noise::NoiseModel;

    fn finger(t: f64) -> Option<Vec3> {
        // A small vertical wiggle above the board.
        Some(Vec3::new(
            0.0,
            0.0,
            0.02 - 0.003 * (std::f64::consts::TAU * 2.0 * t).sin(),
        ))
    }

    #[test]
    fn demodulation_cancels_bright_ambient() {
        // Outdoor noon: plain sampling pins near full scale; the lock-in
        // output stays near the bias + reflection level.
        let outdoor =
            Scene::outdoor_noon(SensorLayout::paper_prototype()).with_noise(NoiseModel::none());
        let plain = crate::sampler::Sampler::new(outdoor.clone(), 100.0).sample(0.5, 3, |_| None);
        let lockin = ModulatedSampler::new(outdoor, 100.0, 4).sample(0.5, 3, |_| None);
        let mean = |t: &RssTrace| {
            t.channels().iter().flat_map(|c| c.iter()).sum::<f64>()
                / (t.len() * t.channel_count()) as f64
        };
        assert!(
            mean(&plain) > 800.0,
            "plain outdoor baseline {}",
            mean(&plain)
        );
        assert!(mean(&lockin) < 200.0, "lock-in baseline {}", mean(&lockin));
    }

    #[test]
    fn gesture_signal_survives_demodulation() {
        let indoor = Scene::new(SensorLayout::paper_prototype()).with_noise(NoiseModel::none());
        let trace = ModulatedSampler::new(indoor, 100.0, 4).sample(1.0, 5, finger);
        let swing: f64 = trace
            .channels()
            .iter()
            .map(|c| {
                c.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                    - c.iter().cloned().fold(f64::INFINITY, f64::min)
            })
            .fold(0.0, f64::max);
        assert!(swing > 20.0, "gesture swing through lock-in: {swing}");
    }

    #[test]
    fn chop_rate_accounts_for_oversampling() {
        let s = ModulatedSampler::new(Scene::new(SensorLayout::paper_prototype()), 100.0, 8);
        assert_eq!(s.chop_rate_hz(), 800.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let scene = Scene::new(SensorLayout::paper_prototype());
        let a = ModulatedSampler::new(scene.clone(), 100.0, 2).sample(0.3, 9, finger);
        let b = ModulatedSampler::new(scene, 100.0, 2).sample(0.3, 9, finger);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "chop pair")]
    fn zero_pairs_panics() {
        let _ = ModulatedSampler::new(Scene::new(SensorLayout::paper_prototype()), 100.0, 0);
    }
}
