//! The LED → skin patch → photodiode optical channel.
//!
//! For each (LED, patch, PD) triple the received signal is:
//!
//! 1. irradiance `E = I(θ_led) / d_led²` delivered by the LED at the patch;
//! 2. Lambertian reflection off the patch with incidence/exit cosines
//!    against the patch normal (which faces the board);
//! 3. detection at the PD: inverse-square, angular response, spectral
//!    response, active area.
//!
//! Summing over LEDs and patches gives the gesture signal `S_ges` plus the
//! static hand reflection `N_static` of the paper's signal model.

use crate::components::{Led, Photodiode};
use crate::finger::SkinPatch;
use crate::layout::SensorLayout;
use crate::vec3::Vec3;

/// Signal contribution at one photodiode from one LED reflecting off one
/// skin patch.
#[must_use]
pub fn led_patch_pd_signal(led: &Led, patch: &SkinPatch, pd: &Photodiode) -> f64 {
    let p = patch.position;
    // Stage 1: irradiance at the patch.
    let irradiance = led.irradiance_at(p);
    if irradiance <= 0.0 {
        return 0.0;
    }
    // Stage 2: Lambertian reflection. The patch normal faces the midpoint
    // between emitter and detector (a pad-down fingertip).
    let normal = patch.normal_toward((led.position + pd.position) / 2.0);
    let to_led = (led.position - p).normalized();
    let to_pd = (pd.position - p).normalized();
    let cos_in = normal.dot(to_led);
    let cos_out = normal.dot(to_pd);
    let intensity = patch.skin.reflected_intensity(
        irradiance,
        cos_in,
        cos_out,
        patch.area_m2(),
        led.spec.wavelength_nm,
    );
    if intensity <= 0.0 {
        return 0.0;
    }
    // Stage 3: detection. `signal_from` applies inverse-square, angular and
    // spectral response; the exit cosine is already inside `intensity`.
    pd.signal_from(p, intensity, led.spec.wavelength_nm)
}

/// Total reflected-signal vector (one entry per photodiode) for a set of
/// skin patches above `layout`.
#[must_use]
pub fn reflected_signals(layout: &SensorLayout, patches: &[SkinPatch]) -> Vec<f64> {
    layout
        .photodiodes()
        .iter()
        .map(|pd| {
            layout
                .leds()
                .iter()
                .map(|led| {
                    patches
                        .iter()
                        .map(|pt| led_patch_pd_signal(led, pt, pd))
                        .sum::<f64>()
                })
                .sum()
        })
        .collect()
}

/// Which LED irradiation cone (if any) a point falls inside, by index.
/// "Inside" means within the LED's datasheet half-angle of its axis.
#[must_use]
pub fn irradiation_zone(layout: &SensorLayout, p: Vec3) -> Option<usize> {
    layout.leds().iter().position(|led| {
        let dir = p - led.position;
        dir.dot(led.axis) > 0.0
            && dir.angle_to(led.axis) <= (led.spec.viewing_angle_deg / 2.0).to_radians()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::SensorLayout;

    fn proto() -> SensorLayout {
        SensorLayout::paper_prototype()
    }

    fn finger_at(x_mm: f64, z_mm: f64) -> SkinPatch {
        SkinPatch::fingertip(Vec3::from_mm(x_mm, 0.0, z_mm))
    }

    #[test]
    fn finger_above_l1_brightens_p1_p2_over_p3() {
        let l = proto();
        // L1 sits at x = -5 mm.
        let s = reflected_signals(&l, &[finger_at(-5.0, 20.0)]);
        assert!(s[0] > s[2], "P1 {} should exceed P3 {}", s[0], s[2]);
        assert!(s[1] > s[2], "P2 {} should exceed P3 {}", s[1], s[2]);
    }

    #[test]
    fn finger_above_l2_brightens_p2_p3_over_p1() {
        let l = proto();
        let s = reflected_signals(&l, &[finger_at(5.0, 20.0)]);
        assert!(s[2] > s[0]);
        assert!(s[1] > s[0]);
    }

    #[test]
    fn symmetry_of_the_board() {
        let l = proto();
        let left = reflected_signals(&l, &[finger_at(-5.0, 20.0)]);
        let right = reflected_signals(&l, &[finger_at(5.0, 20.0)]);
        assert!((left[0] - right[2]).abs() / left[0].max(1e-30) < 1e-6);
        assert!((left[1] - right[1]).abs() / left[1].max(1e-30) < 1e-6);
    }

    #[test]
    fn closer_finger_is_brighter() {
        let l = proto();
        let near: f64 = reflected_signals(&l, &[finger_at(0.0, 15.0)]).iter().sum();
        let far: f64 = reflected_signals(&l, &[finger_at(0.0, 40.0)]).iter().sum();
        assert!(near > far * 2.0, "near {near} vs far {far}");
    }

    #[test]
    fn far_lateral_finger_is_dark() {
        let l = proto();
        // 15 cm off to the side: outside every cone.
        let s: f64 = reflected_signals(&l, &[finger_at(150.0, 20.0)])
            .iter()
            .sum();
        assert!(s < 1e-15, "s = {s}");
    }

    #[test]
    fn no_patch_no_signal() {
        let l = proto();
        assert!(reflected_signals(&l, &[]).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn irradiation_zones() {
        let l = proto();
        assert_eq!(
            irradiation_zone(&l, Vec3::from_mm(-5.0, 0.0, 20.0)),
            Some(0)
        );
        assert_eq!(irradiation_zone(&l, Vec3::from_mm(5.0, 0.0, 20.0)), Some(1));
        assert_eq!(irradiation_zone(&l, Vec3::from_mm(-60.0, 0.0, 20.0)), None);
        assert_eq!(irradiation_zone(&l, Vec3::from_mm(0.0, 0.0, -20.0)), None);
    }

    #[test]
    fn hand_back_adds_static_offset_everywhere() {
        let l = proto();
        let hand = SkinPatch::hand_back(Vec3::from_mm(0.0, 30.0, 50.0));
        let s = reflected_signals(&l, &[hand]);
        // A large patch up high is inside both LED cones' soft tails only if
        // within cutoff; at 30mm lateral/50mm height the angle to each LED
        // axis is ~31°, inside the 35° cutoff, so all PDs see something.
        assert!(s.iter().all(|&v| v > 0.0), "{s:?}");
    }

    #[test]
    fn signal_positive_and_finite() {
        let l = proto();
        for z in [5.0, 10.0, 30.0, 60.0] {
            for x in [-10.0, 0.0, 10.0] {
                let s = reflected_signals(&l, &[finger_at(x, z)]);
                assert!(s.iter().all(|v| v.is_finite() && *v >= 0.0));
            }
        }
    }
}
