//! Electronic noise models: shot noise, thermal noise, hardware spikes.
//!
//! The paper's §IV-B1 mentions "sudden RSS changes due to hardware" as one
//! interference class; §IV-F removes them together with unintentional
//! motions. All three noise mechanisms are driven by a seeded RNG so
//! recordings are reproducible.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Noise configuration in ADC-count units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Shot-noise coefficient: σ = `shot_coeff · √counts`.
    pub shot_coeff: f64,
    /// Thermal (signal-independent) noise σ in counts.
    pub thermal_sigma: f64,
    /// Mean hardware spikes per second.
    pub spike_rate_hz: f64,
    /// Peak spike amplitude in counts.
    pub spike_amplitude: f64,
}

impl NoiseModel {
    /// Calibrated to the Arduino-class prototype: ~1 count thermal noise,
    /// mild shot noise, rare ~40-count spikes.
    #[must_use]
    pub fn prototype() -> Self {
        NoiseModel {
            shot_coeff: 0.04,
            thermal_sigma: 0.5,
            spike_rate_hz: 0.05,
            spike_amplitude: 40.0,
        }
    }

    /// A noiseless model (for deterministic unit tests).
    #[must_use]
    pub fn none() -> Self {
        NoiseModel {
            shot_coeff: 0.0,
            thermal_sigma: 0.0,
            spike_rate_hz: 0.0,
            spike_amplitude: 0.0,
        }
    }

    /// Draw the additive noise (in counts) for a sample whose clean level
    /// is `clean_counts`, with sampling interval `dt` seconds.
    pub fn sample<R: Rng>(&self, clean_counts: f64, dt: f64, rng: &mut R) -> f64 {
        let mut n = 0.0;
        let shot_sigma = self.shot_coeff * clean_counts.max(0.0).sqrt();
        let sigma = (shot_sigma * shot_sigma + self.thermal_sigma * self.thermal_sigma).sqrt();
        if sigma > 0.0 {
            n += sigma * gaussian(rng);
        }
        if self.spike_rate_hz > 0.0 && rng.gen::<f64>() < self.spike_rate_hz * dt {
            n += self.spike_amplitude * rng.gen::<f64>();
        }
        n
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::prototype()
    }
}

/// Standard normal draw via Box–Muller (avoids a `rand_distr` dependency).
pub fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_is_silent() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = NoiseModel::none();
        for _ in 0..100 {
            assert_eq!(m.sample(500.0, 0.01, &mut rng), 0.0);
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean: f64 = draws.iter().sum::<f64>() / n as f64;
        let var: f64 = draws.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.1, "var = {var}");
    }

    #[test]
    fn shot_noise_grows_with_signal() {
        let m = NoiseModel {
            shot_coeff: 0.5,
            thermal_sigma: 0.0,
            spike_rate_hz: 0.0,
            spike_amplitude: 0.0,
        };
        let spread = |level: f64, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let draws: Vec<f64> = (0..5000).map(|_| m.sample(level, 0.01, &mut rng)).collect();
            let mean: f64 = draws.iter().sum::<f64>() / draws.len() as f64;
            (draws.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / draws.len() as f64).sqrt()
        };
        let dim = spread(10.0, 2);
        let bright = spread(1000.0, 2);
        assert!(bright > 5.0 * dim, "bright {bright} vs dim {dim}");
    }

    #[test]
    fn spikes_occur_at_configured_rate() {
        let m = NoiseModel {
            shot_coeff: 0.0,
            thermal_sigma: 0.0,
            spike_rate_hz: 2.0,
            spike_amplitude: 100.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000; // 1000 s at 100 Hz
        let spikes = (0..n)
            .filter(|_| m.sample(0.0, 0.01, &mut rng) > 0.0)
            .count();
        // Expect ~2000 spikes; allow wide tolerance.
        assert!((1500..2600).contains(&spikes), "spikes = {spikes}");
    }

    #[test]
    fn seeded_noise_is_reproducible() {
        let m = NoiseModel::prototype();
        let run = || {
            let mut rng = StdRng::seed_from_u64(99);
            (0..50)
                .map(|_| m.sample(200.0, 0.01, &mut rng))
                .collect::<Vec<f64>>()
        };
        assert_eq!(run(), run());
    }
}
