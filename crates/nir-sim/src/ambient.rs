//! Ambient NIR sources: indoor baseline, sunlight by time of day, and the
//! interference sources of §V-J (passers-by, IR remote controls).
//!
//! Ambient light reaches the photodiodes directly (attenuated by the black
//! shield) and is weakly modulated by the moving finger — the paper's
//! `N_dyn` term: "except the emitted NIR, other NIR sources, such as
//! sunlight, are affected along with the finger movements".

use serde::{Deserialize, Serialize};

/// Relative solar NIR intensity over the day: a smooth bump that is zero
/// before ~6 h and after ~20 h, peaking at 13 h. Matches the §V-J2
/// experiment design (measurements every 3 h from 8 h to 20 h).
#[must_use]
pub fn sunlight_factor(hour_of_day: f64) -> f64 {
    let h = hour_of_day.rem_euclid(24.0);
    let x = (h - 13.0) / 4.0;
    let f = (-x * x).exp();
    // Clamp the tails to true darkness at night.
    if !(5.0..=21.0).contains(&h) {
        0.0
    } else {
        f
    }
}

/// Ambient NIR conditions for a recording.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AmbientConditions {
    /// Indoor baseline in-band irradiance at the board (radiometric units
    /// comparable to the LED channel).
    pub indoor_level: f64,
    /// Additional irradiance contributed by sunlight at solar peak.
    pub sunlight_peak: f64,
    /// Local hour of day in `[0, 24)` controlling the sunlight factor.
    pub hour_of_day: f64,
    /// Relative amplitude of slow ambient drift (clouds, people dimming
    /// lights) applied multiplicatively.
    pub drift_amplitude: f64,
    /// Period of the slow drift in seconds.
    pub drift_period_s: f64,
    /// Fraction of ambient light that penetrates the black shield and
    /// reaches the detectors.
    pub shield_leak: f64,
}

impl AmbientConditions {
    /// Typical indoor daytime office around noon.
    #[must_use]
    pub fn indoor() -> Self {
        AmbientConditions {
            indoor_level: 8.0,
            sunlight_peak: 60.0,
            hour_of_day: 12.0,
            drift_amplitude: 0.05,
            drift_period_s: 7.0,
            shield_leak: 0.12,
        }
    }

    /// Same office at a specific hour (used by the Fig. 15 sweep).
    #[must_use]
    pub fn indoor_at_hour(hour_of_day: f64) -> Self {
        AmbientConditions {
            hour_of_day,
            ..AmbientConditions::indoor()
        }
    }

    /// Night conditions: artificial light only.
    #[must_use]
    pub fn night() -> Self {
        AmbientConditions {
            hour_of_day: 23.0,
            ..AmbientConditions::indoor()
        }
    }

    /// Effective ambient irradiance at the board at time `t` seconds into
    /// the recording.
    #[must_use]
    pub fn irradiance(&self, t: f64) -> f64 {
        let base = self.indoor_level + self.sunlight_peak * sunlight_factor(self.hour_of_day);
        let drift = 1.0
            + self.drift_amplitude * (2.0 * std::f64::consts::PI * t / self.drift_period_s).sin();
        base * drift
    }
}

impl Default for AmbientConditions {
    fn default() -> Self {
        AmbientConditions::indoor()
    }
}

/// Interference sources of §V-J4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Interference {
    /// Another person moving around the user: a slow quasi-periodic
    /// reflection reaching the detectors heavily attenuated (they are
    /// outside the 0.5–6 cm sensing range).
    Passerby {
        /// Walking period in seconds.
        period_s: f64,
        /// Peak irradiance contribution at the board.
        amplitude: f64,
    },
    /// An IR remote control operated nearby: 100–200 ms button bursts.
    /// `direct` models pointing the remote straight at the sensor — the
    /// case the paper reports as causing recognition errors.
    IrRemote {
        /// Mean button presses per second.
        presses_per_s: f64,
        /// Irradiance per burst; direct pointing is orders of magnitude
        /// stronger than scattered light.
        amplitude: f64,
        /// Whether the remote is pointed straight at the sensor.
        direct: bool,
    },
}

impl Interference {
    /// A person walking by at a normal pace.
    #[must_use]
    pub fn passerby() -> Self {
        Interference::Passerby {
            period_s: 1.1,
            amplitude: 0.12,
        }
    }

    /// An IR remote used in the same room but not aimed at the sensor.
    #[must_use]
    pub fn ir_remote_indirect() -> Self {
        Interference::IrRemote {
            presses_per_s: 0.5,
            amplitude: 3.0,
            direct: false,
        }
    }

    /// An IR remote pointed directly at the sensor.
    #[must_use]
    pub fn ir_remote_direct() -> Self {
        Interference::IrRemote {
            presses_per_s: 0.5,
            amplitude: 4000.0,
            direct: true,
        }
    }

    /// Irradiance contributed at time `t`. Deterministic given `t` and the
    /// per-trace phase seed `phase` in `[0, 1)`.
    #[must_use]
    pub fn irradiance(&self, t: f64, phase: f64) -> f64 {
        match *self {
            Interference::Passerby {
                period_s,
                amplitude,
            } => {
                let s = (2.0 * std::f64::consts::PI * (t / period_s + phase)).sin();
                // Only the approach half of the stride reflects light in.
                amplitude * s.max(0.0) * s.max(0.0)
            }
            Interference::IrRemote {
                presses_per_s,
                amplitude,
                direct,
            } => {
                // Deterministic pseudo-random press schedule: one candidate
                // press per 1/presses_per_s window, ~150 ms long.
                let window = 1.0 / presses_per_s;
                let k = (t / window).floor();
                let jitter = fract_hash(k + phase * 1e3);
                let press_start = k * window + jitter * (window - 0.15).max(0.0);
                let active = t >= press_start && t < press_start + 0.15;
                if !active {
                    return 0.0;
                }
                let scale = if direct { 1.0 } else { 0.01 };
                amplitude * scale
            }
        }
    }
}

/// Deterministic hash of a float to `[0, 1)` (press-schedule jitter).
fn fract_hash(x: f64) -> f64 {
    let bits = x.to_bits();
    let mut z = bits.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sunlight_peaks_at_13h() {
        assert!((sunlight_factor(13.0) - 1.0).abs() < 1e-12);
        assert!(sunlight_factor(8.0) < sunlight_factor(11.0));
        assert!(sunlight_factor(17.0) < sunlight_factor(14.0));
    }

    #[test]
    fn sunlight_zero_at_night() {
        assert_eq!(sunlight_factor(2.0), 0.0);
        assert_eq!(sunlight_factor(23.0), 0.0);
    }

    #[test]
    fn sunlight_wraps_24h() {
        assert!((sunlight_factor(13.0) - sunlight_factor(37.0)).abs() < 1e-12);
    }

    #[test]
    fn noon_brighter_than_night() {
        let noon = AmbientConditions::indoor_at_hour(13.0).irradiance(0.0);
        let night = AmbientConditions::night().irradiance(0.0);
        assert!(noon > 3.0 * night, "noon {noon} vs night {night}");
    }

    #[test]
    fn drift_oscillates_around_base() {
        let amb = AmbientConditions::indoor();
        let samples: Vec<f64> = (0..700).map(|i| amb.irradiance(i as f64 * 0.01)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(hi > mean && lo < mean);
        assert!((hi - lo) / mean < 2.5 * amb.drift_amplitude + 1e-9);
    }

    #[test]
    fn passerby_is_bounded_and_nonnegative() {
        let p = Interference::passerby();
        for i in 0..500 {
            let v = p.irradiance(i as f64 * 0.01, 0.3);
            assert!((0.0..=0.13).contains(&v));
        }
    }

    #[test]
    fn direct_remote_is_much_stronger() {
        let direct = Interference::ir_remote_direct();
        let indirect = Interference::ir_remote_indirect();
        let peak = |s: &Interference| {
            (0..4000)
                .map(|i| s.irradiance(i as f64 * 0.01, 0.5))
                .fold(0.0f64, f64::max)
        };
        let pd = peak(&direct);
        let pi = peak(&indirect);
        assert!(pd > 100.0 * pi, "direct {pd} vs indirect {pi}");
    }

    #[test]
    fn remote_bursts_are_sparse() {
        let r = Interference::ir_remote_indirect();
        let active = (0..10_000)
            .filter(|i| r.irradiance(*i as f64 * 0.01, 0.1) > 0.0)
            .count();
        // ~0.5 presses/s × 150 ms ≈ 7.5 % duty cycle over 100 s.
        assert!(active > 100 && active < 3000, "active = {active}");
    }
}
