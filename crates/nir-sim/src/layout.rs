//! Sensor board layout: the alternating `P1 L1 P2 L2 P3` arrangement.
//!
//! The paper's sensor places two NIR LEDs and three NIR photodiodes
//! "alternatively located close to each other" along one axis (Fig. 6).
//! The LEDs' narrow irradiation cones `IL1`, `IL2` and the photodiodes'
//! wide sensing cones `SP1..SP3` overlap so that a finger above `IL1`
//! brightens mainly `P1`/`P2` and a finger above `IL2` brightens mainly
//! `P2`/`P3` — the geometric fact ZEBRA exploits.

use crate::components::{Led, LedSpec, Photodiode, PhotodiodeSpec};
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// A complete sensor board.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorLayout {
    leds: Vec<Led>,
    photodiodes: Vec<Photodiode>,
    pitch_m: f64,
}

impl SensorLayout {
    /// The paper's prototype: `P1 L1 P2 L2 P3` along the `x` axis with a
    /// 5 mm component pitch, every component facing `+z`.
    #[must_use]
    pub fn paper_prototype() -> Self {
        SensorLayout::alternating(3, 5.0e-3, LedSpec::ir304c94(), PhotodiodeSpec::pt304())
    }

    /// Build an alternating layout `P1 L1 P2 L2 … P_n` with `pd_count`
    /// photodiodes (therefore `pd_count − 1` LEDs) and `pitch_m` spacing,
    /// centered on the origin.
    ///
    /// # Panics
    ///
    /// Panics if `pd_count < 1` or `pitch_m <= 0`.
    #[must_use]
    pub fn alternating(pd_count: usize, pitch_m: f64, led: LedSpec, pd: PhotodiodeSpec) -> Self {
        assert!(pd_count >= 1, "need at least one photodiode");
        assert!(pitch_m > 0.0, "pitch must be positive");
        let total = 2 * pd_count - 1;
        let x0 = -((total - 1) as f64) * pitch_m / 2.0;
        let mut leds = Vec::with_capacity(pd_count.saturating_sub(1));
        let mut pds = Vec::with_capacity(pd_count);
        for slot in 0..total {
            let pos = Vec3::new(x0 + slot as f64 * pitch_m, 0.0, 0.0);
            if slot % 2 == 0 {
                pds.push(Photodiode {
                    spec: pd,
                    position: pos,
                    axis: Vec3::UP,
                });
            } else {
                leds.push(Led {
                    spec: led,
                    position: pos,
                    axis: Vec3::UP,
                });
            }
        }
        SensorLayout {
            leds,
            photodiodes: pds,
            pitch_m,
        }
    }

    /// The LEDs, in board order (`L1, L2, …`).
    #[must_use]
    pub fn leds(&self) -> &[Led] {
        &self.leds
    }

    /// The photodiodes, in board order (`P1, P2, …`).
    #[must_use]
    pub fn photodiodes(&self) -> &[Photodiode] {
        &self.photodiodes
    }

    /// Component pitch in meters.
    #[must_use]
    pub fn pitch_m(&self) -> f64 {
        self.pitch_m
    }

    /// Distance in meters between the first and last photodiode (`P1`–`P3`
    /// for the prototype) — the baseline ZEBRA uses to convert the ascent
    /// time gap into a velocity.
    #[must_use]
    pub fn pd_baseline_m(&self) -> f64 {
        match (self.photodiodes.first(), self.photodiodes.last()) {
            (Some(a), Some(b)) => a.position.distance(b.position),
            _ => 0.0,
        }
    }

    /// A plus-shaped 2-D board (§VI: "other posited distributions to
    /// construct a multi-dimensional sensing area"): one alternating arm
    /// along `x` and one along `y`, sharing the central photodiode. With
    /// `arm_pds` photodiodes per arm the board has `2·arm_pds − 1`
    /// photodiodes and `2·(arm_pds − 1)` LEDs, and resolves finger motion
    /// in both lateral axes.
    ///
    /// Channel order: the `x` arm first (`P1..P_n` left to right), then
    /// the `y` arm without its center (`P_{n+1}..` front to back).
    ///
    /// # Panics
    ///
    /// Panics if `arm_pds < 2` or `pitch_m <= 0`.
    #[must_use]
    pub fn cross(arm_pds: usize, pitch_m: f64, led: LedSpec, pd: PhotodiodeSpec) -> Self {
        assert!(
            arm_pds >= 2,
            "a cross needs at least two photodiodes per arm"
        );
        assert!(pitch_m > 0.0, "pitch must be positive");
        let x_arm = SensorLayout::alternating(arm_pds, pitch_m, led, pd);
        let mut leds = x_arm.leds.clone();
        let mut pds = x_arm.photodiodes.clone();
        // Rotate the same arm onto the y axis, skipping the shared center.
        for l in &x_arm.leds {
            leds.push(Led {
                position: Vec3::new(0.0, l.position.x, 0.0),
                ..*l
            });
        }
        for p in &x_arm.photodiodes {
            if p.position.x.abs() < 1e-12 {
                continue; // the center photodiode is shared
            }
            pds.push(Photodiode {
                position: Vec3::new(0.0, p.position.x, 0.0),
                ..*p
            });
        }
        SensorLayout {
            leds,
            photodiodes: pds,
            pitch_m,
        }
    }

    /// Mirror the layout across the `yz` plane (swap left/right). Used by
    /// the non-dominant-hand experiments where "the prototype is oriented
    /// accordingly".
    #[must_use]
    pub fn mirrored(&self) -> SensorLayout {
        let flip = |v: Vec3| Vec3::new(-v.x, v.y, v.z);
        let mut leds: Vec<Led> = self
            .leds
            .iter()
            .map(|l| Led {
                position: flip(l.position),
                ..*l
            })
            .collect();
        let mut pds: Vec<Photodiode> = self
            .photodiodes
            .iter()
            .map(|p| Photodiode {
                position: flip(p.position),
                ..*p
            })
            .collect();
        leds.reverse();
        pds.reverse();
        SensorLayout {
            leds,
            photodiodes: pds,
            pitch_m: self.pitch_m,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_counts() {
        let l = SensorLayout::paper_prototype();
        assert_eq!(l.leds().len(), 2);
        assert_eq!(l.photodiodes().len(), 3);
    }

    #[test]
    fn prototype_alternates_and_centers() {
        let l = SensorLayout::paper_prototype();
        let p = l.photodiodes();
        let d = l.leds();
        // Order along x: P1 < L1 < P2 < L2 < P3, centered on zero.
        assert!(p[0].position.x < d[0].position.x);
        assert!(d[0].position.x < p[1].position.x);
        assert!(p[1].position.x < d[1].position.x);
        assert!(d[1].position.x < p[2].position.x);
        assert!((p[1].position.x).abs() < 1e-12);
    }

    #[test]
    fn prototype_baseline_is_20mm() {
        let l = SensorLayout::paper_prototype();
        assert!((l.pd_baseline_m() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn all_face_up() {
        let l = SensorLayout::paper_prototype();
        assert!(l.leds().iter().all(|c| c.axis == Vec3::UP));
        assert!(l.photodiodes().iter().all(|c| c.axis == Vec3::UP));
    }

    #[test]
    fn single_pd_layout_has_no_led() {
        let l = SensorLayout::alternating(1, 0.005, LedSpec::ir304c94(), PhotodiodeSpec::pt304());
        assert_eq!(l.photodiodes().len(), 1);
        assert!(l.leds().is_empty());
        assert_eq!(l.pd_baseline_m(), 0.0);
    }

    #[test]
    fn larger_board_scales() {
        let l = SensorLayout::alternating(5, 0.004, LedSpec::ir304c94(), PhotodiodeSpec::pt304());
        assert_eq!(l.photodiodes().len(), 5);
        assert_eq!(l.leds().len(), 4);
        assert!((l.pd_baseline_m() - 8.0 * 0.004).abs() < 1e-12);
    }

    #[test]
    fn mirroring_preserves_order_and_is_involutive() {
        // The alternating board is symmetric about the origin, so mirroring
        // + relabelling restores the same physical positions (the paper's
        // "prototype oriented accordingly" is then purely about which side
        // the hand approaches from — handled by trajectory mirroring).
        let l = SensorLayout::paper_prototype();
        let m = l.mirrored();
        for (a, b) in m.photodiodes().iter().zip(l.photodiodes()) {
            assert!((a.position.x - b.position.x).abs() < 1e-12);
        }
        assert!(m.photodiodes()[0].position.x < m.photodiodes()[2].position.x);
        // Mirroring twice is the identity.
        let mm = m.mirrored();
        for (a, b) in mm.photodiodes().iter().zip(l.photodiodes()) {
            assert!((a.position.x - b.position.x).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least one photodiode")]
    fn zero_pd_panics() {
        let _ = SensorLayout::alternating(0, 0.005, LedSpec::ir304c94(), PhotodiodeSpec::pt304());
    }

    #[test]
    fn cross_counts_and_shared_center() {
        let c = SensorLayout::cross(3, 0.005, LedSpec::ir304c94(), PhotodiodeSpec::pt304());
        assert_eq!(c.photodiodes().len(), 5); // 3 on x + 2 more on y
        assert_eq!(c.leds().len(), 4);
        // Exactly one photodiode at the origin.
        let centered = c
            .photodiodes()
            .iter()
            .filter(|p| p.position.length() < 1e-12)
            .count();
        assert_eq!(centered, 1);
    }

    #[test]
    fn cross_resolves_both_axes() {
        use crate::channel::reflected_signals;
        use crate::finger::SkinPatch;
        let c = SensorLayout::cross(3, 0.005, LedSpec::ir304c94(), PhotodiodeSpec::pt304());
        // A finger off to +x brightens the x-arm end more than the y-arm
        // ends; a finger off to +y does the reverse.
        let sx = reflected_signals(&c, &[SkinPatch::fingertip(Vec3::from_mm(8.0, 0.0, 18.0))]);
        let sy = reflected_signals(&c, &[SkinPatch::fingertip(Vec3::from_mm(0.0, 8.0, 18.0))]);
        // Channels: 0..3 = x arm (left, center, right); 3..5 = y arm.
        assert!(
            sx[2] > sx[3] && sx[2] > sx[4],
            "x finger favours x arm: {sx:?}"
        );
        assert!(
            sy[4] > sy[0] && sy[4] > sy[2],
            "y finger favours y arm: {sy:?}"
        );
    }

    #[test]
    #[should_panic(expected = "two photodiodes per arm")]
    fn cross_needs_two_per_arm() {
        let _ = SensorLayout::cross(1, 0.005, LedSpec::ir304c94(), PhotodiodeSpec::pt304());
    }
}
