//! Minimal 3-D vector math for the optical simulation.
//!
//! Coordinates: the sensor board lies in the `xy` plane at `z = 0`, with
//! components arranged along the `x` axis (the scrolling axis) and every
//! LED/photodiode facing `+z`. Units are meters.

use serde::{Deserialize, Serialize};
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A 3-D vector in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// Component along the board / scroll axis.
    pub x: f64,
    /// Component across the board.
    pub y: f64,
    /// Component away from the board (sensing direction).
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along `+z` (the board normal).
    pub const UP: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Construct from components.
    #[must_use]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Construct from components given in centimeters.
    #[must_use]
    pub fn from_cm(x: f64, y: f64, z: f64) -> Self {
        Vec3 {
            x: x * 0.01,
            y: y * 0.01,
            z: z * 0.01,
        }
    }

    /// Construct from components given in millimeters.
    #[must_use]
    pub fn from_mm(x: f64, y: f64, z: f64) -> Self {
        Vec3 {
            x: x * 0.001,
            y: y * 0.001,
            z: z * 0.001,
        }
    }

    /// Dot product.
    #[must_use]
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Euclidean length.
    #[must_use]
    pub fn length(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared length (avoids the square root).
    #[must_use]
    pub fn length_sq(self) -> f64 {
        self.dot(self)
    }

    /// Unit vector in this direction; the zero vector normalizes to zero.
    #[must_use]
    pub fn normalized(self) -> Vec3 {
        let l = self.length();
        if l <= f64::EPSILON {
            Vec3::ZERO
        } else {
            self / l
        }
    }

    /// Distance to another point.
    #[must_use]
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).length()
    }

    /// Angle in radians between this vector and `other` (both treated as
    /// directions); returns 0 if either is zero.
    #[must_use]
    pub fn angle_to(self, other: Vec3) -> f64 {
        let denom = self.length() * other.length();
        if denom <= f64::EPSILON {
            return 0.0;
        }
        (self.dot(other) / denom).clamp(-1.0, 1.0).acos()
    }

    /// Linear interpolation: `self + t * (other - self)`.
    #[must_use]
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units() {
        assert_eq!(Vec3::from_cm(100.0, 0.0, 0.0).x, 1.0);
        assert_eq!(Vec3::from_mm(1000.0, 0.0, 0.0).x, 1.0);
    }

    #[test]
    fn dot_and_length() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.length(), 5.0);
        assert_eq!(v.length_sq(), 25.0);
        assert_eq!(v.dot(Vec3::UP), 0.0);
    }

    #[test]
    fn normalized_unit_length() {
        let v = Vec3::new(1.0, 2.0, 2.0).normalized();
        assert!((v.length() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_zero_is_zero() {
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn angle_between_axes_is_right() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert!((a.angle_to(b) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn angle_to_self_is_zero() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert!(v.angle_to(v) < 1e-7);
    }

    #[test]
    fn angle_opposite_is_pi() {
        let v = Vec3::new(0.0, 0.0, 2.0);
        assert!((v.angle_to(-v) - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(b / 2.0, Vec3::new(2.0, 2.5, 3.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::ZERO;
        let b = Vec3::new(2.0, 0.0, 0.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 0.0, 0.0));
    }

    #[test]
    fn distance_symmetric() {
        let a = Vec3::new(1.0, 1.0, 1.0);
        let b = Vec3::new(2.0, 2.0, 2.0);
        assert!((a.distance(b) - b.distance(a)).abs() < 1e-15);
        assert!((a.distance(b) - 3.0f64.sqrt()).abs() < 1e-12);
    }
}
