//! The 100 Hz sampler: drives a finger trajectory through a scene and
//! produces a multi-channel [`RssTrace`].
//!
//! Per sample, the simulator assembles the paper's signal model
//! `RSS = S_ges + N_static + N_dyn`:
//!
//! * `S_ges` — reflection of the LEDs off the moving fingertip patch;
//! * `N_static` — reflection off the hand-back patch, which is anchored to
//!   the trial's starting pose and only weakly follows the fingertip;
//! * `N_dyn` — ambient light leaking past the shield (weakly modulated by
//!   finger presence) plus any configured interference sources;
//!
//! then adds electronic noise and converts through the amplifier + ADC.

use crate::adc::Adc;
use crate::ambient::{AmbientConditions, Interference};
use crate::channel::reflected_signals;
use crate::finger::SkinPatch;
use crate::layout::SensorLayout;
use crate::noise::NoiseModel;
use crate::trace::RssTrace;
use crate::vec3::Vec3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Everything about the physical recording situation except the finger
/// trajectory itself.
#[derive(Debug, Clone, PartialEq)]
pub struct Scene {
    /// The sensor board.
    pub layout: SensorLayout,
    /// Ambient light conditions.
    pub ambient: AmbientConditions,
    /// Electronic noise model.
    pub noise: NoiseModel,
    /// Amplifier + ADC front end.
    pub adc: Adc,
    /// Offset of the hand-back patch from the fingertip (meters).
    pub hand_offset: Vec3,
    /// Fraction of fingertip displacement the hand-back patch follows
    /// (0 = perfectly static hand, 1 = rigidly attached).
    pub hand_follow: f64,
    /// Interference sources active during the recording.
    pub interference: Vec<Interference>,
}

impl Scene {
    /// A scene over `layout` with indoor ambient light, prototype noise and
    /// an ADC calibrated so a fingertip 2 cm above the board center reads
    /// ~400 counts above the bias on the brightest photodiode.
    #[must_use]
    pub fn new(layout: SensorLayout) -> Self {
        let reference = SkinPatch::fingertip(Vec3::new(0.0, 0.0, 0.02));
        let peak = reflected_signals(&layout, &[reference])
            .into_iter()
            .fold(f64::MIN_POSITIVE, f64::max);
        let adc = Adc::calibrated(peak, 450.0, 60.0);
        Scene {
            layout,
            ambient: AmbientConditions::indoor(),
            noise: NoiseModel::prototype(),
            adc,
            hand_offset: Vec3::from_mm(0.0, 18.0, 22.0),
            hand_follow: 0.12,
            interference: Vec::new(),
        }
    }

    /// Replace the ambient conditions.
    #[must_use]
    pub fn with_ambient(mut self, ambient: AmbientConditions) -> Self {
        self.ambient = ambient;
        self
    }

    /// Replace the noise model.
    #[must_use]
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Add an interference source.
    #[must_use]
    pub fn with_interference(mut self, source: Interference) -> Self {
        self.interference.push(source);
        self
    }

    /// Photocurrent contributed by ambient irradiance `irr` at photodiode
    /// `pd_idx`, given the finger's occlusion factor.
    pub(crate) fn ambient_photocurrent(&self, pd_idx: usize, irr: f64, occlusion: f64) -> f64 {
        let pd = &self.layout.photodiodes()[pd_idx];
        irr * pd.spec.area_m2 * pd.spec.responsivity * self.ambient.shield_leak * (1.0 - occlusion)
    }
}

/// How strongly a fingertip at `pos` shadows ambient light from a
/// photodiode's aperture: full shadowing right on top of the detector,
/// fading with lateral distance and height.
fn finger_occlusion(pd_pos: Vec3, finger: Vec3) -> f64 {
    let lateral = ((finger.x - pd_pos.x).powi(2) + (finger.y - pd_pos.y).powi(2)).sqrt();
    let height = (finger.z - pd_pos.z).max(0.001);
    // Solid-angle style falloff; ≈0.5 occlusion when the finger hovers
    // 2 cm directly above, less when off to the side.
    let core = 1.0 / (1.0 + (lateral / height) * (lateral / height));
    (0.5 * core / (1.0 + height / 0.05)).clamp(0.0, 0.95)
}

/// The 100 Hz (configurable) sampler.
#[derive(Debug, Clone)]
pub struct Sampler {
    scene: Scene,
    sample_rate_hz: f64,
}

impl Sampler {
    /// Create a sampler over `scene` at `sample_rate_hz`.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive.
    #[must_use]
    pub fn new(scene: Scene, sample_rate_hz: f64) -> Self {
        assert!(sample_rate_hz > 0.0, "sample rate must be positive");
        Sampler {
            scene,
            sample_rate_hz,
        }
    }

    /// The scene being sampled.
    #[must_use]
    pub fn scene(&self) -> &Scene {
        &self.scene
    }

    /// The sampling rate in Hz.
    #[must_use]
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// Record `duration_s` seconds. `trajectory(t)` returns the fingertip
    /// position at time `t`, or `None` while no hand is present.
    ///
    /// The recording is fully determined by (`scene`, `duration_s`, `seed`,
    /// `trajectory`).
    pub fn sample<F>(&self, duration_s: f64, seed: u64, trajectory: F) -> RssTrace
    where
        F: Fn(f64) -> Option<Vec3>,
    {
        let n = (duration_s * self.sample_rate_hz).round() as usize;
        let dt = 1.0 / self.sample_rate_hz;
        let pd_count = self.scene.layout.photodiodes().len();
        let mut trace = RssTrace::new(pd_count, self.sample_rate_hz);
        let mut rng = StdRng::seed_from_u64(seed);
        let phase: f64 = rng.gen();
        let mut hand_anchor: Option<Vec3> = None;
        let mut sample = vec![0.0; pd_count];
        for i in 0..n {
            let t = i as f64 * dt;
            let finger_pos = trajectory(t);
            // Assemble the reflecting patches.
            let mut patches: Vec<SkinPatch> = Vec::with_capacity(2);
            if let Some(pos) = finger_pos {
                let anchor = *hand_anchor.get_or_insert(pos);
                patches.push(SkinPatch::fingertip(pos));
                let hand_pos =
                    anchor + self.scene.hand_offset + (pos - anchor) * self.scene.hand_follow;
                patches.push(SkinPatch::hand_back(hand_pos));
            } else {
                hand_anchor = None;
            }
            let reflected = reflected_signals(&self.scene.layout, &patches);
            // Ambient + interference irradiance.
            let mut irr = self.scene.ambient.irradiance(t);
            for src in &self.scene.interference {
                irr += src.irradiance(t, phase);
            }
            for (k, out) in sample.iter_mut().enumerate() {
                let occl = finger_pos.map_or(0.0, |p| {
                    finger_occlusion(self.scene.layout.photodiodes()[k].position, p)
                });
                let photocurrent = reflected[k] + self.scene.ambient_photocurrent(k, irr, occl);
                let clean = self.scene.adc.convert(photocurrent, 0.0);
                let noise = self.scene.noise.sample(clean, dt, &mut rng);
                *out = self.scene.adc.convert(photocurrent, noise);
            }
            trace.push_sample(&sample);
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_scene() -> Scene {
        Scene::new(SensorLayout::paper_prototype()).with_noise(NoiseModel::none())
    }

    #[test]
    fn static_finger_gives_flat_trace() {
        let s = Sampler::new(quiet_scene(), 100.0);
        let trace = s.sample(0.5, 1, |_| Some(Vec3::new(0.0, 0.0, 0.02)));
        assert_eq!(trace.len(), 50);
        for c in trace.channels() {
            let first = c[0];
            assert!(first > 60.0, "signal above bias, got {first}");
            // Only ambient drift moves the trace; variation is tiny.
            let spread = c
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                    (lo.min(v), hi.max(v))
                });
            assert!(spread.1 - spread.0 <= 3.0, "spread {spread:?}");
        }
    }

    #[test]
    fn no_finger_reads_low_baseline() {
        let s = Sampler::new(quiet_scene(), 100.0);
        let trace = s.sample(0.2, 1, |_| None);
        // Bias (60) + ambient leak: well below mid-scale, above raw bias.
        for c in trace.channels() {
            assert!(c.iter().all(|&v| (60.0..300.0).contains(&v)), "{c:?}");
        }
    }

    #[test]
    fn moving_finger_modulates_signal() {
        let s = Sampler::new(quiet_scene(), 100.0);
        // Sweep across the board: x from -2 cm to +2 cm at 2 cm height.
        let trace = s.sample(1.0, 1, |t| Some(Vec3::new(-0.02 + 0.04 * t, 0.0, 0.02)));
        for c in trace.channels() {
            let lo = c.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = c.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(hi - lo > 30.0, "channel should swing, got {lo}..{hi}");
        }
    }

    #[test]
    fn sweep_ascends_p1_before_p3() {
        let s = Sampler::new(quiet_scene(), 100.0);
        let trace = s.sample(1.0, 1, |t| Some(Vec3::new(-0.025 + 0.05 * t, 0.0, 0.015)));
        // Peak time of P1 precedes peak time of P3.
        let argmax = |c: &[f64]| {
            c.iter()
                .enumerate()
                .fold((0usize, f64::NEG_INFINITY), |(bi, bm), (i, &v)| {
                    if v > bm {
                        (i, v)
                    } else {
                        (bi, bm)
                    }
                })
        };
        let (t1, _) = argmax(trace.channel(0));
        let (t3, _) = argmax(trace.channel(2));
        assert!(t1 < t3, "P1 peak {t1} should precede P3 peak {t3}");
    }

    #[test]
    fn seeded_sampling_is_reproducible() {
        let s = Sampler::new(Scene::new(SensorLayout::paper_prototype()), 100.0);
        let a = s.sample(0.3, 9, |t| Some(Vec3::new(0.0, 0.0, 0.02 + 0.005 * t)));
        let b = s.sample(0.3, 9, |t| Some(Vec3::new(0.0, 0.0, 0.02 + 0.005 * t)));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let s = Sampler::new(Scene::new(SensorLayout::paper_prototype()), 100.0);
        let a = s.sample(0.3, 1, |_| Some(Vec3::new(0.0, 0.0, 0.02)));
        let b = s.sample(0.3, 2, |_| Some(Vec3::new(0.0, 0.0, 0.02)));
        assert_ne!(a, b);
    }

    #[test]
    fn readings_stay_in_adc_range() {
        let s = Sampler::new(Scene::new(SensorLayout::paper_prototype()), 100.0);
        let trace = s.sample(1.0, 3, |t| Some(Vec3::new(0.0, 0.0, 0.006 + 0.01 * t)));
        for c in trace.channels() {
            assert!(c.iter().all(|&v| (0.0..=1023.0).contains(&v)));
        }
    }

    #[test]
    fn direct_ir_remote_saturates() {
        let scene = quiet_scene().with_interference(Interference::ir_remote_direct());
        let s = Sampler::new(scene, 100.0);
        let trace = s.sample(5.0, 4, |_| None);
        let saturated = trace
            .channels()
            .iter()
            .flat_map(|c| c.iter())
            .filter(|&&v| v >= 1022.0)
            .count();
        assert!(saturated > 0, "direct remote should saturate the ADC");
    }

    #[test]
    fn noon_sunlight_raises_baseline() {
        let noon = Scene::new(SensorLayout::paper_prototype())
            .with_noise(NoiseModel::none())
            .with_ambient(AmbientConditions::indoor_at_hour(13.0));
        let night = Scene::new(SensorLayout::paper_prototype())
            .with_noise(NoiseModel::none())
            .with_ambient(AmbientConditions::night());
        let tn = Sampler::new(noon, 100.0).sample(0.2, 5, |_| None);
        let tm = Sampler::new(night, 100.0).sample(0.2, 5, |_| None);
        let mean = |t: &RssTrace| {
            t.channels().iter().flat_map(|c| c.iter()).sum::<f64>()
                / (t.len() * t.channel_count()) as f64
        };
        assert!(
            mean(&tn) > mean(&tm) + 2.0,
            "noon {} vs night {}",
            mean(&tn),
            mean(&tm)
        );
    }

    #[test]
    fn hand_back_contributes_static_offset() {
        // Same fingertip, but compare a scene with hands to one where the
        // hand-follow fraction is 1.0 (hand glued to finger): the anchored
        // hand produces a nearly constant extra term.
        let s = Sampler::new(quiet_scene(), 100.0);
        let with_hand = s.sample(0.2, 1, |_| Some(Vec3::new(0.0, 0.0, 0.02)));
        // Remove finger → hand also gone → reading drops.
        let without = s.sample(0.2, 1, |_| None);
        assert!(with_hand.channel(1)[10] > without.channel(1)[10]);
    }
}
