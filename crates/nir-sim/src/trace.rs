//! Multi-channel RSS recordings.

use serde::{Deserialize, Serialize};

/// A multi-channel received-signal-strength recording: one series of ADC
/// counts per photodiode, sampled at a fixed rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RssTrace {
    sample_rate_hz: f64,
    channels: Vec<Vec<f64>>,
}

impl RssTrace {
    /// Create an empty trace with `channel_count` channels.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate_hz` is not positive or `channel_count` is 0.
    #[must_use]
    pub fn new(channel_count: usize, sample_rate_hz: f64) -> Self {
        assert!(sample_rate_hz > 0.0, "sample rate must be positive");
        assert!(channel_count > 0, "need at least one channel");
        RssTrace {
            sample_rate_hz,
            channels: vec![Vec::new(); channel_count],
        }
    }

    /// Build from existing channel data.
    ///
    /// # Panics
    ///
    /// Panics if the channels have different lengths, there are none, or
    /// the sample rate is not positive.
    #[must_use]
    pub fn from_channels(channels: Vec<Vec<f64>>, sample_rate_hz: f64) -> Self {
        assert!(sample_rate_hz > 0.0, "sample rate must be positive");
        assert!(!channels.is_empty(), "need at least one channel");
        let len = channels[0].len();
        assert!(
            channels.iter().all(|c| c.len() == len),
            "channel lengths differ"
        );
        RssTrace {
            sample_rate_hz,
            channels,
        }
    }

    /// Sampling rate in Hz.
    #[must_use]
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// Number of channels (photodiodes).
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Number of samples per channel.
    #[must_use]
    pub fn len(&self) -> usize {
        self.channels.first().map_or(0, Vec::len)
    }

    /// Whether the trace holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Recording duration in seconds.
    #[must_use]
    pub fn duration_s(&self) -> f64 {
        self.len() as f64 / self.sample_rate_hz
    }

    /// One channel's series.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn channel(&self, idx: usize) -> &[f64] {
        &self.channels[idx]
    }

    /// All channels.
    #[must_use]
    pub fn channels(&self) -> &[Vec<f64>] {
        &self.channels
    }

    /// Consume the trace, returning the channel data.
    #[must_use]
    pub fn into_channels(self) -> Vec<Vec<f64>> {
        self.channels
    }

    /// Append one simultaneous sample across all channels.
    ///
    /// # Panics
    ///
    /// Panics if `sample.len()` differs from the channel count.
    pub fn push_sample(&mut self, sample: &[f64]) {
        assert_eq!(sample.len(), self.channels.len(), "sample width mismatch");
        for (c, &v) in self.channels.iter_mut().zip(sample) {
            c.push(v);
        }
    }

    /// Sum of all channels at each instant (the single-channel view used
    /// when plotting "the" RSS of a gesture, as the paper's Fig. 3 does).
    #[must_use]
    pub fn summed(&self) -> Vec<f64> {
        let n = self.len();
        let mut out = vec![0.0; n];
        for c in &self.channels {
            for (o, &v) in out.iter_mut().zip(c) {
                *o += v;
            }
        }
        out
    }

    /// Extract a sub-trace covering samples `[start, end)` (clamped).
    #[must_use]
    pub fn window(&self, start: usize, end: usize) -> RssTrace {
        let e = end.min(self.len());
        let s = start.min(e);
        RssTrace {
            sample_rate_hz: self.sample_rate_hz,
            channels: self.channels.iter().map(|c| c[s..e].to_vec()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut t = RssTrace::new(3, 100.0);
        t.push_sample(&[1.0, 2.0, 3.0]);
        t.push_sample(&[4.0, 5.0, 6.0]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.channel_count(), 3);
        assert_eq!(t.channel(1), &[2.0, 5.0]);
        assert!((t.duration_s() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn summed_adds_channels() {
        let t = RssTrace::from_channels(vec![vec![1.0, 2.0], vec![10.0, 20.0]], 100.0);
        assert_eq!(t.summed(), vec![11.0, 22.0]);
    }

    #[test]
    fn window_clamps() {
        let t = RssTrace::from_channels(vec![vec![1.0, 2.0, 3.0]], 100.0);
        let w = t.window(1, 10);
        assert_eq!(w.channel(0), &[2.0, 3.0]);
        assert!(t.window(5, 9).is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let t = RssTrace::from_channels(vec![vec![1.5, 2.5], vec![0.0, 9.0]], 100.0);
        let json = serde_json::to_string(&t).unwrap();
        let back: RssTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    #[should_panic(expected = "channel lengths differ")]
    fn ragged_channels_panic() {
        let _ = RssTrace::from_channels(vec![vec![1.0], vec![1.0, 2.0]], 100.0);
    }

    #[test]
    #[should_panic(expected = "sample width mismatch")]
    fn wrong_sample_width_panics() {
        let mut t = RssTrace::new(2, 100.0);
        t.push_sample(&[1.0]);
    }
}
