//! The fingertip reflector model.
//!
//! A fingertip is approximated as a small spherical patch: a Lambertian
//! reflector of effective area `π·r²` centered at the tip position, with
//! surface normal pointing from the patch toward the board (the pad of the
//! finger faces the sensor in every paper gesture). The rest of the hand is
//! modelled separately as a larger, farther, static patch — the `N_static`
//! term of §IV-B1.

use crate::skin::SkinModel;
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// A spherical skin patch acting as a diffuse reflector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SkinPatch {
    /// Center of the patch in meters.
    pub position: Vec3,
    /// Effective radius of the reflecting disc in meters.
    pub radius_m: f64,
    /// Reflectance model.
    pub skin: SkinModel,
}

impl SkinPatch {
    /// A typical adult fingertip: 7 mm effective radius.
    #[must_use]
    pub fn fingertip(position: Vec3) -> Self {
        SkinPatch {
            position,
            radius_m: 0.007,
            skin: SkinModel::typical(),
        }
    }

    /// The back of the hand hovering behind the fingers: a larger patch
    /// (25 mm radius) that produces the static reflection offset.
    #[must_use]
    pub fn hand_back(position: Vec3) -> Self {
        SkinPatch {
            position,
            radius_m: 0.025,
            skin: SkinModel::typical(),
        }
    }

    /// Effective reflecting area in m².
    #[must_use]
    pub fn area_m2(&self) -> f64 {
        std::f64::consts::PI * self.radius_m * self.radius_m
    }

    /// Surface normal used for reflection: from the patch toward a board
    /// point `toward` (the pad faces the sensor).
    #[must_use]
    pub fn normal_toward(&self, toward: Vec3) -> Vec3 {
        (toward - self.position).normalized()
    }

    /// Relocate the patch.
    #[must_use]
    pub fn at(&self, position: Vec3) -> SkinPatch {
        SkinPatch { position, ..*self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingertip_dimensions() {
        let f = SkinPatch::fingertip(Vec3::new(0.0, 0.0, 0.02));
        assert!((f.radius_m - 0.007).abs() < 1e-12);
        assert!(f.area_m2() > 0.0);
    }

    #[test]
    fn hand_back_is_larger() {
        let f = SkinPatch::fingertip(Vec3::ZERO);
        let h = SkinPatch::hand_back(Vec3::ZERO);
        assert!(h.area_m2() > f.area_m2());
    }

    #[test]
    fn normal_points_at_target() {
        let f = SkinPatch::fingertip(Vec3::new(0.0, 0.0, 0.02));
        let n = f.normal_toward(Vec3::ZERO);
        assert!((n.z + 1.0).abs() < 1e-12); // straight down
    }

    #[test]
    fn relocation_keeps_size() {
        let f = SkinPatch::fingertip(Vec3::ZERO);
        let g = f.at(Vec3::new(0.01, 0.0, 0.03));
        assert_eq!(g.radius_m, f.radius_m);
        assert_eq!(g.position, Vec3::new(0.01, 0.0, 0.03));
    }
}
