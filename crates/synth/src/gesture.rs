//! The gesture set of Fig. 2 plus the unintentional-motion kinds of §V-J1.

use serde::{Deserialize, Serialize};

/// The eight micro finger gestures of the paper.
///
/// *Detect-aimed* gestures (circle, double circle, rub, double rub, click,
/// double click) only need to be recognized; *track-aimed* gestures (scroll
/// up, scroll down) are additionally tracked by ZEBRA in direction,
/// velocity and displacement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Gesture {
    /// Thumb-tip draws one circle against the index fingertip.
    Circle,
    /// Two consecutive circles.
    DoubleCircle,
    /// One thumb rub (forth and back) against the index fingertip.
    Rub,
    /// Two consecutive rubs.
    DoubleRub,
    /// One click (press toward the sensor and release).
    Click,
    /// Two consecutive clicks.
    DoubleClick,
    /// Scroll passing `P1` before `P3`.
    ScrollUp,
    /// Scroll passing `P3` before `P1`.
    ScrollDown,
}

impl Gesture {
    /// All eight gestures in the paper's order.
    pub const ALL: [Gesture; 8] = [
        Gesture::Circle,
        Gesture::DoubleCircle,
        Gesture::Rub,
        Gesture::DoubleRub,
        Gesture::Click,
        Gesture::DoubleClick,
        Gesture::ScrollUp,
        Gesture::ScrollDown,
    ];

    /// The six detect-aimed gestures.
    pub const DETECT_AIMED: [Gesture; 6] = [
        Gesture::Circle,
        Gesture::DoubleCircle,
        Gesture::Rub,
        Gesture::DoubleRub,
        Gesture::Click,
        Gesture::DoubleClick,
    ];

    /// The two track-aimed gestures.
    pub const TRACK_AIMED: [Gesture; 2] = [Gesture::ScrollUp, Gesture::ScrollDown];

    /// Whether this gesture needs ZEBRA tracking.
    #[must_use]
    pub fn is_track_aimed(&self) -> bool {
        matches!(self, Gesture::ScrollUp | Gesture::ScrollDown)
    }

    /// Stable index `0..8` in [`Gesture::ALL`] order (classifier label).
    #[must_use]
    pub fn index(&self) -> usize {
        // Exhaustive match keeps this panic-free and lets the compiler
        // enforce agreement with `ALL` when a variant is added.
        match self {
            Gesture::Circle => 0,
            Gesture::DoubleCircle => 1,
            Gesture::Rub => 2,
            Gesture::DoubleRub => 3,
            Gesture::Click => 4,
            Gesture::DoubleClick => 5,
            Gesture::ScrollUp => 6,
            Gesture::ScrollDown => 7,
        }
    }

    /// Gesture from its [`Gesture::index`].
    #[must_use]
    pub fn from_index(idx: usize) -> Option<Gesture> {
        Gesture::ALL.get(idx).copied()
    }

    /// Index `0..6` within [`Gesture::DETECT_AIMED`], if detect-aimed.
    #[must_use]
    pub fn detect_index(&self) -> Option<usize> {
        Gesture::DETECT_AIMED.iter().position(|g| g == self)
    }

    /// Display name matching the paper's tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Gesture::Circle => "circle",
            Gesture::DoubleCircle => "double circle",
            Gesture::Rub => "rub",
            Gesture::DoubleRub => "double rub",
            Gesture::Click => "click",
            Gesture::DoubleClick => "double click",
            Gesture::ScrollUp => "scroll up",
            Gesture::ScrollDown => "scroll down",
        }
    }
}

impl std::fmt::Display for Gesture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Unintentional finger motions (§V-J1: "scratching, extending, or
/// reposition hands and fingers").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NonGestureKind {
    /// Erratic scratching near the sensor.
    Scratch,
    /// Extending the fingers away from the sensing zone.
    Extend,
    /// Slowly repositioning the hand.
    Reposition,
}

impl NonGestureKind {
    /// All unintentional-motion kinds.
    pub const ALL: [NonGestureKind; 3] = [
        NonGestureKind::Scratch,
        NonGestureKind::Extend,
        NonGestureKind::Reposition,
    ];

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            NonGestureKind::Scratch => "scratch",
            NonGestureKind::Extend => "extend",
            NonGestureKind::Reposition => "reposition",
        }
    }
}

impl std::fmt::Display for NonGestureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A sample label: an intentional gesture or an unintentional motion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SampleLabel {
    /// One of the eight designed gestures.
    Gesture(Gesture),
    /// An unintentional motion.
    NonGesture(NonGestureKind),
}

impl SampleLabel {
    /// The gesture, if this label is one.
    #[must_use]
    pub fn gesture(&self) -> Option<Gesture> {
        match self {
            SampleLabel::Gesture(g) => Some(*g),
            SampleLabel::NonGesture(_) => None,
        }
    }

    /// Whether the label is an intentional gesture.
    #[must_use]
    pub fn is_gesture(&self) -> bool {
        matches!(self, SampleLabel::Gesture(_))
    }
}

impl std::fmt::Display for SampleLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SampleLabel::Gesture(g) => g.fmt(f),
            SampleLabel::NonGesture(n) => n.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_gestures_partition() {
        assert_eq!(Gesture::ALL.len(), 8);
        assert_eq!(Gesture::DETECT_AIMED.len(), 6);
        assert_eq!(Gesture::TRACK_AIMED.len(), 2);
        let detect = Gesture::ALL.iter().filter(|g| !g.is_track_aimed()).count();
        assert_eq!(detect, 6);
    }

    #[test]
    fn index_roundtrip() {
        for g in Gesture::ALL {
            assert_eq!(Gesture::from_index(g.index()), Some(g));
        }
        assert_eq!(Gesture::from_index(8), None);
    }

    #[test]
    fn detect_index_only_for_detect_aimed() {
        assert_eq!(Gesture::Circle.detect_index(), Some(0));
        assert_eq!(Gesture::DoubleClick.detect_index(), Some(5));
        assert_eq!(Gesture::ScrollUp.detect_index(), None);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Gesture::DoubleCircle.to_string(), "double circle");
        assert_eq!(Gesture::ScrollDown.to_string(), "scroll down");
        assert_eq!(NonGestureKind::Scratch.to_string(), "scratch");
    }

    #[test]
    fn label_accessors() {
        let g = SampleLabel::Gesture(Gesture::Rub);
        let n = SampleLabel::NonGesture(NonGestureKind::Extend);
        assert!(g.is_gesture());
        assert!(!n.is_gesture());
        assert_eq!(g.gesture(), Some(Gesture::Rub));
        assert_eq!(n.gesture(), None);
    }

    #[test]
    fn serde_roundtrip() {
        let l = SampleLabel::Gesture(Gesture::ScrollUp);
        let json = serde_json::to_string(&l).unwrap();
        assert_eq!(serde_json::from_str::<SampleLabel>(&json).unwrap(), l);
    }
}
