//! The two-level random-effects model: volunteers, sessions, trials.
//!
//! §V-B: "volunteers perform gestures according to their habits, without
//! given any instructions" — so users differ systematically (individual
//! diversity: finger position, towards angle, moving speed), and each user
//! drifts a little between sessions and trials (gesture inconsistency).
//!
//! Variance budget (σ per level, applied multiplicatively or additively):
//!
//! | parameter  | between-user | between-session | between-trial |
//! |------------|--------------|-----------------|---------------|
//! | speed      | 0.14 (log)   | 0.05 (log)      | 0.02 (log)    |
//! | amplitude  | 0.14         | 0.04            | 0.02          |
//! | base x/y   | ±4 mm        | ±1.5 mm         | ±0.5 mm       |
//! | height z   | 18–24 mm     | ±2 mm           | ±0.6 mm       |
//! | tilt       | ±0.18 rad    | ±0.05 rad       | ±0.015 rad    |
//!
//! The user level dominating the session level is what reproduces the
//! paper's headline contrast: leave-one-user-out accuracy (83.61 %) falls
//! far below leave-one-session-out accuracy (97.07 %).

use crate::gesture::SampleLabel;
use crate::mix_seed;
use crate::trajectory::MotionParams;
use airfinger_nir_sim::vec3::Vec3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Standard-normal draw (Box–Muller).
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A volunteer's stable gesture habits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// Volunteer id.
    pub user_id: usize,
    /// Habitual speed factor (1.0 = canonical pace).
    pub speed: f64,
    /// Habitual gesture size factor.
    pub amplitude: f64,
    /// Habitual resting fingertip pose (m).
    pub base: Vec3,
    /// Habitual approach angle (rad).
    pub tilt_rad: f64,
    /// Physiological tremor amplitude (m).
    pub tremor_m: f64,
    /// Habitual pause inside double gestures (s).
    pub double_gap_s: f64,
    /// Stylistic phase (circle start angle etc.).
    pub phase: f64,
    /// Per-gesture amplitude quirks (some users click shallow, rub wide…).
    pub gesture_quirk: [f64; 8],
}

impl UserProfile {
    /// Draw volunteer `user_id`'s profile from the population
    /// distribution, deterministically from `corpus_seed`.
    #[must_use]
    pub fn sample(user_id: usize, corpus_seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(mix_seed(&[corpus_seed, 0xA11CE, user_id as u64]));
        let mut quirk = [1.0f64; 8];
        for q in &mut quirk {
            *q = (1.0 + 0.07 * gauss(&mut rng)).clamp(0.75, 1.3);
        }
        UserProfile {
            user_id,
            speed: (0.14 * gauss(&mut rng)).exp().clamp(0.65, 1.55),
            amplitude: (1.0 + 0.14 * gauss(&mut rng)).clamp(0.65, 1.45),
            base: Vec3::new(
                0.004 * gauss(&mut rng),
                0.004 * gauss(&mut rng),
                0.018 + 0.006 * rng.gen::<f64>(), // 18–24 mm hover
            ),
            tilt_rad: 0.18 * gauss(&mut rng),
            tremor_m: 0.00015 + 0.00025 * rng.gen::<f64>(),
            double_gap_s: 0.12 + 0.16 * rng.gen::<f64>(),
            phase: 1.1 * gauss(&mut rng),
            gesture_quirk: quirk,
        }
    }

    /// Motion parameters for one trial: the user's habits plus session
    /// drift plus trial jitter, all deterministic in the seed components.
    #[must_use]
    pub fn trial_params(
        &self,
        label: SampleLabel,
        session: usize,
        rep: usize,
        corpus_seed: u64,
    ) -> MotionParams {
        // Session-level drift (shared by every trial of the session).
        let mut srng = StdRng::seed_from_u64(mix_seed(&[
            corpus_seed,
            0x5E55,
            self.user_id as u64,
            session as u64,
        ]));
        let s_speed = (0.05 * gauss(&mut srng)).exp();
        let s_amp = 1.0 + 0.04 * gauss(&mut srng);
        let s_base = Vec3::new(
            0.0015 * gauss(&mut srng),
            0.0015 * gauss(&mut srng),
            0.002 * gauss(&mut srng),
        );
        let s_tilt = 0.05 * gauss(&mut srng);

        // Trial-level jitter.
        let label_tag = match label {
            SampleLabel::Gesture(g) => g.index() as u64,
            SampleLabel::NonGesture(n) => 100 + n as u64,
        };
        let mut trng = StdRng::seed_from_u64(mix_seed(&[
            corpus_seed,
            0x7121A1,
            self.user_id as u64,
            session as u64,
            rep as u64,
            label_tag,
        ]));
        let t_speed = (0.02 * gauss(&mut trng)).exp();
        let t_amp = 1.0 + 0.02 * gauss(&mut trng);
        let t_base = Vec3::new(
            0.0005 * gauss(&mut trng),
            0.0005 * gauss(&mut trng),
            0.0006 * gauss(&mut trng),
        );
        let t_tilt = 0.015 * gauss(&mut trng);
        let quirk = match label {
            SampleLabel::Gesture(g) => self.gesture_quirk[g.index()],
            SampleLabel::NonGesture(_) => 1.0,
        };

        let mut base = self.base + s_base + t_base;
        base.z = base.z.clamp(0.006, 0.12);
        MotionParams {
            base,
            amplitude: (self.amplitude * s_amp * t_amp * quirk).clamp(0.4, 1.8),
            speed: (self.speed * s_speed * t_speed).clamp(0.45, 2.2),
            tilt_rad: self.tilt_rad + s_tilt + t_tilt,
            tremor_m: self.tremor_m,
            double_gap_s: (self.double_gap_s + 0.03 * gauss(&mut trng)).clamp(0.06, 0.45),
            phase: self.phase + 0.15 * gauss(&mut trng),
            lead_in_s: 0.25 + 0.15 * trng.gen::<f64>(),
            lead_out_s: 0.3 + 0.15 * trng.gen::<f64>(),
            scroll_extent: sample_scroll_extent(&mut trng),
        }
    }
}

/// Scroll completeness: mostly full sweeps, occasionally partial (the
/// paper's "users do not scroll completely between P1 and P3" case).
fn sample_scroll_extent(rng: &mut StdRng) -> f64 {
    if rng.gen::<f64>() < 0.15 {
        0.35 + 0.2 * rng.gen::<f64>() // partial: passes the first PD only
    } else {
        0.85 + 0.15 * rng.gen::<f64>()
    }
}

/// A volunteer population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Population {
    profiles: Vec<UserProfile>,
}

impl Population {
    /// Generate `n` volunteers deterministically from `corpus_seed`.
    #[must_use]
    pub fn generate(n: usize, corpus_seed: u64) -> Self {
        Population {
            profiles: (0..n)
                .map(|u| UserProfile::sample(u, corpus_seed))
                .collect(),
        }
    }

    /// All profiles, in user-id order.
    #[must_use]
    pub fn profiles(&self) -> &[UserProfile] {
        &self.profiles
    }

    /// One profile.
    ///
    /// # Panics
    ///
    /// Panics if `user_id` is out of range.
    #[must_use]
    pub fn profile(&self, user_id: usize) -> &UserProfile {
        &self.profiles[user_id]
    }

    /// Number of volunteers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the population is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gesture::Gesture;

    #[test]
    fn profiles_are_deterministic() {
        assert_eq!(UserProfile::sample(3, 42), UserProfile::sample(3, 42));
    }

    #[test]
    fn profiles_differ_between_users() {
        let a = UserProfile::sample(0, 42);
        let b = UserProfile::sample(1, 42);
        assert_ne!(a, b);
        assert!((a.speed - b.speed).abs() > 1e-6 || (a.amplitude - b.amplitude).abs() > 1e-6);
    }

    #[test]
    fn population_spans_reasonable_ranges() {
        let pop = Population::generate(50, 7);
        for p in pop.profiles() {
            assert!((0.6..=1.7).contains(&p.speed), "speed {}", p.speed);
            assert!((0.6..=1.5).contains(&p.amplitude));
            assert!((0.018..=0.024).contains(&p.base.z), "height {}", p.base.z);
            assert!(p.tremor_m > 0.0);
            assert!((0.12..=0.28).contains(&p.double_gap_s));
        }
    }

    #[test]
    fn user_variance_exceeds_session_variance() {
        // Measure the speed factor across users vs across sessions of one
        // user — the core calibration property.
        let seed = 11;
        let user_speeds: Vec<f64> = (0..40)
            .map(|u| UserProfile::sample(u, seed).speed)
            .collect();
        let u0 = UserProfile::sample(0, seed);
        let label = SampleLabel::Gesture(Gesture::Circle);
        let session_speeds: Vec<f64> = (0..40)
            .map(|s| u0.trial_params(label, s, 0, seed).speed)
            .collect();
        let var = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
        };
        assert!(
            var(&user_speeds) > 2.0 * var(&session_speeds),
            "user var {} vs session var {}",
            var(&user_speeds),
            var(&session_speeds)
        );
    }

    #[test]
    fn trial_params_deterministic() {
        let u = UserProfile::sample(2, 9);
        let l = SampleLabel::Gesture(Gesture::Rub);
        assert_eq!(u.trial_params(l, 1, 3, 9), u.trial_params(l, 1, 3, 9));
    }

    #[test]
    fn trial_params_vary_by_rep() {
        let u = UserProfile::sample(2, 9);
        let l = SampleLabel::Gesture(Gesture::Rub);
        assert_ne!(u.trial_params(l, 1, 3, 9), u.trial_params(l, 1, 4, 9));
    }

    #[test]
    fn heights_stay_physical() {
        for u in 0..30 {
            let p = UserProfile::sample(u, 3);
            for s in 0..5 {
                for r in 0..5 {
                    let mp = p.trial_params(SampleLabel::Gesture(Gesture::Click), s, r, 3);
                    assert!((0.006..=0.12).contains(&mp.base.z));
                    assert!(mp.speed > 0.4 && mp.speed < 2.3);
                }
            }
        }
    }

    #[test]
    fn scroll_extent_mixes_partial_and_full() {
        let u = UserProfile::sample(1, 5);
        let l = SampleLabel::Gesture(Gesture::ScrollUp);
        let extents: Vec<f64> = (0..200)
            .map(|r| u.trial_params(l, 0, r, 5).scroll_extent)
            .collect();
        let partial = extents.iter().filter(|&&e| e < 0.6).count();
        let full = extents.iter().filter(|&&e| e >= 0.8).count();
        assert!(partial > 5, "some partial scrolls: {partial}");
        assert!(full > 120, "mostly full scrolls: {full}");
    }

    #[test]
    fn population_access() {
        let pop = Population::generate(10, 1);
        assert_eq!(pop.len(), 10);
        assert!(!pop.is_empty());
        assert_eq!(pop.profile(4).user_id, 4);
    }
}
