//! Recording-condition variants for the §V experiments.

use crate::trajectory::MotionParams;
use airfinger_nir_sim::ambient::{AmbientConditions, Interference};
use airfinger_nir_sim::layout::SensorLayout;
use airfinger_nir_sim::sampler::Scene;
use airfinger_nir_sim::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Body activity while wearing the wristband prototype (§V-K).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activity {
    /// Seated at a desk.
    Sitting,
    /// Standing still.
    Standing,
    /// Walking at a normal pace.
    Walking,
}

impl Activity {
    /// All three §V-K activities.
    pub const ALL: [Activity; 3] = [Activity::Sitting, Activity::Standing, Activity::Walking];

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Activity::Sitting => "sitting",
            Activity::Standing => "standing",
            Activity::Walking => "walking",
        }
    }

    /// Body-motion offset added to the whole hand at time `t` with a
    /// per-trial phase in `[0, 1)`.
    #[must_use]
    pub fn body_motion(&self, t: f64, phase: f64) -> Vec3 {
        match self {
            Activity::Sitting => Vec3::ZERO,
            Activity::Standing => {
                // Postural sway: slow, small.
                let w = std::f64::consts::TAU * (0.4 * t + phase);
                Vec3::new(0.0006 * w.sin(), 0.0005 * w.cos(), 0.0004 * (w * 1.3).sin())
            }
            Activity::Walking => {
                // Arm swing + step bounce around 1.8 Hz.
                let w = std::f64::consts::TAU * (1.8 * t + phase);
                Vec3::new(
                    0.0008 * w.sin(),
                    0.0006 * (w * 0.5).sin(),
                    0.0008 * (2.0 * w).sin().abs(),
                )
            }
        }
    }
}

impl std::fmt::Display for Activity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A recording condition: what differs from the standard desk setup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
#[derive(Default)]
pub enum Condition {
    /// The standard indoor desk setup of the main experiments.
    #[default]
    Standard,
    /// Fingers held at a specific height above the sensor (Fig. 8 sweep).
    Distance {
        /// Hover height in meters.
        height_m: f64,
    },
    /// A specific local hour controlling ambient NIR (Fig. 15 sweep).
    AmbientHour {
        /// Hour of day in `[0, 24)`.
        hour: f64,
    },
    /// Wristband prototype worn during an activity (Fig. 17).
    Wristband {
        /// Body activity.
        activity: Activity,
    },
    /// Non-dominant hand with the prototype mirrored (Fig. 16).
    Mirrored,
    /// Interference sources active nearby (§V-J4).
    Interference {
        /// Active sources.
        sources: Vec<Interference>,
    },
    /// Harsh outdoor noon sunlight — the §VI failure case the lock-in
    /// front end exists to solve.
    OutdoorNoon,
}

impl Condition {
    /// Build the recording scene for this condition over the paper's
    /// 3-photodiode board.
    #[must_use]
    pub fn scene(&self) -> Scene {
        self.scene_for(3)
    }

    /// Build the recording scene for this condition over a board with
    /// `pd_count` photodiodes (§VI: "build a sensor with more number of
    /// LEDs and PDs … improve input resolution").
    ///
    /// # Panics
    ///
    /// Panics if `pd_count` is zero.
    #[must_use]
    pub fn scene_for(&self, pd_count: usize) -> Scene {
        let base = SensorLayout::alternating(
            pd_count,
            5.0e-3,
            airfinger_nir_sim::components::LedSpec::ir304c94(),
            airfinger_nir_sim::components::PhotodiodeSpec::pt304(),
        );
        let layout = if matches!(self, Condition::Mirrored) {
            base.mirrored()
        } else {
            base
        };
        if matches!(self, Condition::OutdoorNoon) {
            return Scene::outdoor_noon(layout);
        }
        let mut scene = Scene::new(layout);
        match self {
            Condition::AmbientHour { hour } => {
                scene = scene.with_ambient(AmbientConditions::indoor_at_hour(*hour));
            }
            Condition::Interference { sources } => {
                for s in sources {
                    scene = scene.with_interference(*s);
                }
            }
            Condition::Wristband { .. }
            | Condition::Standard
            | Condition::Distance { .. }
            | Condition::OutdoorNoon
            | Condition::Mirrored => {}
        }
        scene
    }

    /// Adjust the trial motion parameters for this condition.
    #[must_use]
    pub fn adjust_params(&self, mut params: MotionParams) -> MotionParams {
        match self {
            Condition::Distance { height_m } => {
                params.base.z = *height_m;
                params
            }
            Condition::Wristband { activity } => {
                // Wearing the band on the opposite wrist constrains the pose
                // slightly and walking adds tremor.
                if matches!(activity, Activity::Walking) {
                    params.tremor_m *= 1.6;
                }
                params
            }
            Condition::Mirrored => {
                // The gesture itself mirrors too (left hand); layout
                // mirroring happens in `scene()`, trajectory mirroring in
                // the dataset generator.
                params
            }
            _ => params,
        }
    }

    /// Whether the dataset generator should mirror trajectories.
    #[must_use]
    pub fn mirrors_trajectory(&self) -> bool {
        matches!(self, Condition::Mirrored)
    }

    /// Activity, if this is a wristband condition.
    #[must_use]
    pub fn activity(&self) -> Option<Activity> {
        match self {
            Condition::Wristband { activity } => Some(*activity),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_overrides_height() {
        let p = MotionParams::default();
        let adj = Condition::Distance { height_m: 0.08 }.adjust_params(p);
        assert_eq!(adj.base.z, 0.08);
    }

    #[test]
    fn standard_leaves_params_alone() {
        let p = MotionParams::default();
        assert_eq!(Condition::Standard.adjust_params(p), p);
    }

    #[test]
    fn walking_increases_tremor() {
        let p = MotionParams::default();
        let adj = Condition::Wristband {
            activity: Activity::Walking,
        }
        .adjust_params(p);
        assert!(adj.tremor_m > p.tremor_m);
    }

    #[test]
    fn walking_motion_larger_than_sitting() {
        let peak = |a: Activity| {
            (0..200)
                .map(|i| a.body_motion(i as f64 * 0.01, 0.2).length())
                .fold(0.0f64, f64::max)
        };
        assert_eq!(peak(Activity::Sitting), 0.0);
        assert!(peak(Activity::Walking) > peak(Activity::Standing));
    }

    #[test]
    fn mirrored_condition_mirrors() {
        assert!(Condition::Mirrored.mirrors_trajectory());
        assert!(!Condition::Standard.mirrors_trajectory());
    }

    #[test]
    fn scenes_build_for_every_condition() {
        let conds = [
            Condition::Standard,
            Condition::Distance { height_m: 0.05 },
            Condition::AmbientHour { hour: 14.0 },
            Condition::Wristband {
                activity: Activity::Walking,
            },
            Condition::Mirrored,
            Condition::Interference {
                sources: vec![Interference::passerby()],
            },
        ];
        for c in conds {
            let s = c.scene();
            assert_eq!(s.layout.photodiodes().len(), 3);
        }
    }

    #[test]
    fn ambient_hour_scene_uses_hour() {
        let noon = Condition::AmbientHour { hour: 13.0 }.scene();
        let night = Condition::AmbientHour { hour: 23.0 }.scene();
        assert!(noon.ambient.irradiance(0.0) > night.ambient.irradiance(0.0));
    }

    #[test]
    fn activity_accessor() {
        assert_eq!(
            Condition::Wristband {
                activity: Activity::Standing
            }
            .activity(),
            Some(Activity::Standing)
        );
        assert_eq!(Condition::Standard.activity(), None);
    }
}
