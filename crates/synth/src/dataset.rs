//! Corpus assembly: the paper's data-collection protocol, synthesized.
//!
//! §V-B: 10 volunteers × 8 gestures × 5 sessions × 25 repetitions = 10,000
//! labelled samples. [`generate_corpus`] reproduces that protocol (with
//! configurable sizes) under any [`Condition`]; companion generators build
//! the unintentional-motion corpus of §V-J1 and condition sweeps.

use crate::conditions::Condition;
use crate::gesture::{Gesture, NonGestureKind, SampleLabel};
use crate::mix_seed;
use crate::profile::UserProfile;
use crate::trajectory::Trajectory;
use airfinger_nir_sim::modulation::ModulatedSampler;
use airfinger_nir_sim::sampler::Sampler;
use airfinger_nir_sim::trace::RssTrace;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// One labelled recording.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GestureSample {
    /// Volunteer id.
    pub user: usize,
    /// Session index.
    pub session: usize,
    /// Repetition index within the session.
    pub rep: usize,
    /// Ground-truth label.
    pub label: SampleLabel,
    /// The recorded multi-channel RSS trace.
    pub trace: RssTrace,
}

/// A labelled corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Corpus {
    samples: Vec<GestureSample>,
}

impl Corpus {
    /// Wrap a sample list.
    #[must_use]
    pub fn new(samples: Vec<GestureSample>) -> Self {
        Corpus { samples }
    }

    /// All samples.
    #[must_use]
    pub fn samples(&self) -> &[GestureSample] {
        &self.samples
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the corpus is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples whose label satisfies `pred`.
    #[must_use]
    pub fn filter<F: Fn(&GestureSample) -> bool>(&self, pred: F) -> Corpus {
        Corpus {
            samples: self.samples.iter().filter(|s| pred(s)).cloned().collect(),
        }
    }

    /// Only the detect-aimed gesture samples.
    #[must_use]
    pub fn detect_aimed(&self) -> Corpus {
        self.filter(|s| s.label.gesture().is_some_and(|g| !g.is_track_aimed()))
    }

    /// Only the track-aimed gesture samples.
    #[must_use]
    pub fn track_aimed(&self) -> Corpus {
        self.filter(|s| s.label.gesture().is_some_and(|g| g.is_track_aimed()))
    }

    /// Merge two corpora.
    #[must_use]
    pub fn merged(mut self, other: Corpus) -> Corpus {
        self.samples.extend(other.samples);
        self
    }

    /// Serialize to JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O failures.
    pub fn write_json<W: Write>(&self, writer: W) -> Result<(), serde_json::Error> {
        serde_json::to_writer(writer, self)
    }

    /// Deserialize from JSON.
    ///
    /// # Errors
    ///
    /// Propagates deserialization and I/O failures.
    pub fn read_json<R: Read>(reader: R) -> Result<Corpus, serde_json::Error> {
        serde_json::from_reader(reader)
    }
}

impl FromIterator<GestureSample> for Corpus {
    fn from_iter<I: IntoIterator<Item = GestureSample>>(iter: I) -> Self {
        Corpus {
            samples: iter.into_iter().collect(),
        }
    }
}

impl Extend<GestureSample> for Corpus {
    fn extend<I: IntoIterator<Item = GestureSample>>(&mut self, iter: I) {
        self.samples.extend(iter);
    }
}

/// Which ADC front end records the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Frontend {
    /// Plain DC sampling (the paper's prototype).
    #[default]
    Dc,
    /// Chopped LEDs with lock-in demodulation (the §VI outdoor extension).
    LockIn,
}

/// Specification of a gesture corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusSpec {
    /// Number of volunteers.
    pub users: usize,
    /// Sessions per volunteer.
    pub sessions: usize,
    /// Repetitions of each gesture per session.
    pub reps: usize,
    /// Gesture set (defaults to all eight).
    pub gestures: Vec<Gesture>,
    /// Recording condition.
    pub condition: Condition,
    /// Master seed; everything else derives deterministically.
    pub seed: u64,
    /// ADC sampling rate in Hz (the prototype's 100 Hz).
    pub sample_rate_hz: f64,
    /// Which front end records the traces.
    pub frontend: Frontend,
    /// Photodiodes on the board (the prototype's 3; §VI scales this up).
    pub board_pds: usize,
}

impl Default for CorpusSpec {
    /// The paper's protocol: 10 users × 5 sessions × 25 reps × 8 gestures.
    fn default() -> Self {
        CorpusSpec {
            users: 10,
            sessions: 5,
            reps: 25,
            gestures: Gesture::ALL.to_vec(),
            condition: Condition::Standard,
            seed: 0x41F1_6E12,
            sample_rate_hz: 100.0,
            frontend: Frontend::Dc,
            board_pds: 3,
        }
    }
}

impl CorpusSpec {
    /// The paper's full 10,000-sample protocol with a given seed.
    #[must_use]
    pub fn paper_protocol(seed: u64) -> Self {
        CorpusSpec {
            seed,
            ..Default::default()
        }
    }

    /// A small smoke-test corpus (2 users × 2 sessions × 3 reps).
    #[must_use]
    pub fn small(seed: u64) -> Self {
        CorpusSpec {
            users: 2,
            sessions: 2,
            reps: 3,
            seed,
            ..Default::default()
        }
    }
}

/// The deterministic fingertip trajectory of one trial — the ground truth
/// behind the corresponding [`GestureSample`]. Exposed so evaluation
/// harnesses can compare tracked velocity/displacement against the true
/// motion.
#[must_use]
pub fn trial_trajectory(
    profile: &UserProfile,
    label: SampleLabel,
    session: usize,
    rep: usize,
    spec: &CorpusSpec,
) -> Trajectory {
    let params = spec
        .condition
        .adjust_params(profile.trial_params(label, session, rep, spec.seed));
    let label_tag = match label {
        SampleLabel::Gesture(g) => g.index() as u64,
        SampleLabel::NonGesture(n) => 100 + n as u64,
    };
    let traj_seed = mix_seed(&[
        spec.seed,
        0x7247,
        profile.user_id as u64,
        session as u64,
        rep as u64,
        label_tag,
    ]);
    let traj = Trajectory::generate(label, &params, traj_seed);
    if spec.condition.mirrors_trajectory() {
        traj.mirrored()
    } else {
        traj
    }
}

/// Generate one labelled sample.
#[must_use]
pub fn generate_sample(
    profile: &UserProfile,
    label: SampleLabel,
    session: usize,
    rep: usize,
    spec: &CorpusSpec,
) -> GestureSample {
    let label_tag = match label {
        SampleLabel::Gesture(g) => g.index() as u64,
        SampleLabel::NonGesture(n) => 100 + n as u64,
    };
    let traj_seed = mix_seed(&[
        spec.seed,
        0x7247,
        profile.user_id as u64,
        session as u64,
        rep as u64,
        label_tag,
    ]);
    let traj = trial_trajectory(profile, label, session, rep, spec);
    let scene = spec.condition.scene_for(spec.board_pds);
    let activity = spec.condition.activity();
    let phase = (traj_seed % 1000) as f64 / 1000.0;
    let duration = traj.duration_s();
    let pose = |t: f64| {
        let body = activity.map_or(airfinger_nir_sim::vec3::Vec3::ZERO, |a| {
            a.body_motion(t, phase)
        });
        traj.position(t).map(|p| p + body)
    };
    let trace = match spec.frontend {
        Frontend::Dc => Sampler::new(scene, spec.sample_rate_hz).sample(
            duration,
            mix_seed(&[traj_seed, 0xADC]),
            pose,
        ),
        Frontend::LockIn => ModulatedSampler::new(scene, spec.sample_rate_hz, 4).sample(
            duration,
            mix_seed(&[traj_seed, 0xADC]),
            pose,
        ),
    };
    GestureSample {
        user: profile.user_id,
        session,
        rep,
        label,
        trace,
    }
}

/// Generate a full gesture corpus per `spec` (users × sessions × reps ×
/// gestures samples).
#[must_use]
pub fn generate_corpus(spec: &CorpusSpec) -> Corpus {
    let mut samples =
        Vec::with_capacity(spec.users * spec.sessions * spec.reps * spec.gestures.len());
    for user in 0..spec.users {
        let profile = UserProfile::sample(user, spec.seed);
        for session in 0..spec.sessions {
            for rep in 0..spec.reps {
                for &g in &spec.gestures {
                    samples.push(generate_sample(
                        &profile,
                        SampleLabel::Gesture(g),
                        session,
                        rep,
                        spec,
                    ));
                }
            }
        }
    }
    Corpus::new(samples)
}

/// Generate the §V-J1 unintentional-motion corpus: for every user/session,
/// `reps` non-gestures cycling through the three kinds.
#[must_use]
pub fn generate_nongesture_corpus(spec: &CorpusSpec) -> Corpus {
    let mut samples = Vec::with_capacity(spec.users * spec.sessions * spec.reps);
    for user in 0..spec.users {
        let profile = UserProfile::sample(user, mix_seed(&[spec.seed, 0x9E5]));
        for session in 0..spec.sessions {
            for rep in 0..spec.reps {
                let kind = NonGestureKind::ALL[rep % NonGestureKind::ALL.len()];
                samples.push(generate_sample(
                    &profile,
                    SampleLabel::NonGesture(kind),
                    session,
                    rep,
                    spec,
                ));
            }
        }
    }
    Corpus::new(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_corpus_counts() {
        let spec = CorpusSpec {
            users: 2,
            sessions: 2,
            reps: 2,
            ..Default::default()
        };
        let c = generate_corpus(&spec);
        assert_eq!(c.len(), 2 * 2 * 2 * 8);
    }

    #[test]
    fn corpus_is_deterministic() {
        let spec = CorpusSpec {
            users: 1,
            sessions: 1,
            reps: 1,
            ..Default::default()
        };
        assert_eq!(generate_corpus(&spec), generate_corpus(&spec));
    }

    #[test]
    fn different_seeds_differ() {
        let a = CorpusSpec {
            users: 1,
            sessions: 1,
            reps: 1,
            seed: 1,
            ..Default::default()
        };
        let b = CorpusSpec {
            users: 1,
            sessions: 1,
            reps: 1,
            seed: 2,
            ..Default::default()
        };
        assert_ne!(generate_corpus(&a), generate_corpus(&b));
    }

    #[test]
    fn traces_have_three_channels_and_signal() {
        let spec = CorpusSpec {
            users: 1,
            sessions: 1,
            reps: 1,
            ..Default::default()
        };
        for s in generate_corpus(&spec).samples() {
            assert_eq!(s.trace.channel_count(), 3);
            assert!(s.trace.len() > 50, "{} len {}", s.label, s.trace.len());
            // A gesture should visibly modulate at least one channel.
            let swing: f64 = s
                .trace
                .channels()
                .iter()
                .map(|c| {
                    c.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                        - c.iter().cloned().fold(f64::INFINITY, f64::min)
                })
                .fold(0.0, f64::max);
            assert!(swing > 10.0, "{}: swing {swing}", s.label);
        }
    }

    #[test]
    fn filters_partition_gestures() {
        let spec = CorpusSpec {
            users: 1,
            sessions: 1,
            reps: 1,
            ..Default::default()
        };
        let c = generate_corpus(&spec);
        assert_eq!(c.detect_aimed().len(), 6);
        assert_eq!(c.track_aimed().len(), 2);
    }

    #[test]
    fn nongesture_corpus_cycles_kinds() {
        let spec = CorpusSpec {
            users: 1,
            sessions: 1,
            reps: 6,
            ..Default::default()
        };
        let c = generate_nongesture_corpus(&spec);
        assert_eq!(c.len(), 6);
        let scratches = c
            .samples()
            .iter()
            .filter(|s| s.label == SampleLabel::NonGesture(NonGestureKind::Scratch))
            .count();
        assert_eq!(scratches, 2);
    }

    #[test]
    fn json_roundtrip() {
        let spec = CorpusSpec {
            users: 1,
            sessions: 1,
            reps: 1,
            gestures: vec![Gesture::Click],
            ..Default::default()
        };
        let c = generate_corpus(&spec);
        let mut buf = Vec::new();
        c.write_json(&mut buf).unwrap();
        let back = Corpus::read_json(&buf[..]).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn merged_concatenates() {
        let spec = CorpusSpec {
            users: 1,
            sessions: 1,
            reps: 1,
            gestures: vec![Gesture::Click],
            ..Default::default()
        };
        let a = generate_corpus(&spec);
        let b = generate_nongesture_corpus(&CorpusSpec { reps: 2, ..spec });
        let n = a.len() + b.len();
        assert_eq!(a.merged(b).len(), n);
    }

    #[test]
    fn from_iterator_collects() {
        let spec = CorpusSpec {
            users: 1,
            sessions: 1,
            reps: 1,
            ..Default::default()
        };
        let c = generate_corpus(&spec);
        let collected: Corpus = c.samples().iter().cloned().collect();
        assert_eq!(collected.len(), c.len());
    }
}
