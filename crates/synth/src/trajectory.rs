//! Parametric fingertip trajectories for every gesture and non-gesture.
//!
//! A [`Trajectory`] is a dense keyframe path (5 ms steps) of the fingertip
//! in board coordinates. Generators combine a canonical gesture shape with
//! per-trial [`MotionParams`] (resting pose, amplitude, speed, plane tilt,
//! tremor, repeat gap …) that the user/session/trial model of
//! [`crate::profile`] supplies.

use crate::gesture::{Gesture, NonGestureKind, SampleLabel};
use airfinger_nir_sim::vec3::Vec3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Keyframe spacing in seconds.
const KEY_DT: f64 = 0.005;

/// Per-trial motion parameters (output of the user/session/trial model).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MotionParams {
    /// Resting fingertip position in meters (z = hover height).
    pub base: Vec3,
    /// Spatial scale of the gesture (1.0 = canonical).
    pub amplitude: f64,
    /// Temporal scale (1.0 = canonical; larger = faster).
    pub speed: f64,
    /// Rotation of the gesture plane about the `y` axis, radians.
    pub tilt_rad: f64,
    /// Amplitude of smooth path tremor in meters.
    pub tremor_m: f64,
    /// Pause between the two halves of a double gesture, seconds.
    pub double_gap_s: f64,
    /// Style phase (circle start angle, rub asymmetry), radians.
    pub phase: f64,
    /// Idle hold before the gesture starts, seconds.
    pub lead_in_s: f64,
    /// Idle hold after the gesture ends, seconds.
    pub lead_out_s: f64,
    /// How far a scroll crosses the board, in `[0, 1]`: 1.0 sweeps the
    /// whole sensing span, ~0.4 passes only the first photodiode.
    pub scroll_extent: f64,
}

impl Default for MotionParams {
    fn default() -> Self {
        MotionParams {
            base: Vec3::new(0.0, 0.0, 0.02),
            amplitude: 1.0,
            speed: 1.0,
            tilt_rad: 0.0,
            tremor_m: 0.0004,
            double_gap_s: 0.18,
            phase: 0.0,
            lead_in_s: 0.3,
            lead_out_s: 0.35,
            scroll_extent: 1.0,
        }
    }
}

/// A dense fingertip path with 5 ms keyframes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    points: Vec<Vec3>,
}

impl Trajectory {
    /// Build from explicit keyframes (5 ms apart).
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    #[must_use]
    pub fn from_points(points: Vec<Vec3>) -> Self {
        assert!(!points.is_empty(), "trajectory needs at least one point");
        Trajectory { points }
    }

    /// Number of keyframes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the trajectory has no keyframes (never true after
    /// construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total duration in seconds.
    #[must_use]
    pub fn duration_s(&self) -> f64 {
        (self.points.len().saturating_sub(1)) as f64 * KEY_DT
    }

    /// Keyframes.
    #[must_use]
    pub fn points(&self) -> &[Vec3] {
        &self.points
    }

    /// Linearly interpolated position at time `t`; clamps to the endpoints
    /// outside the recorded span, `None` for negative `t`.
    #[must_use]
    pub fn position(&self, t: f64) -> Option<Vec3> {
        if t < 0.0 {
            return None;
        }
        let ft = t / KEY_DT;
        let i = ft.floor() as usize;
        if i + 1 >= self.points.len() {
            return self.points.last().copied();
        }
        Some(self.points[i].lerp(self.points[i + 1], ft - i as f64))
    }

    /// Mirror across the `yz` plane (non-dominant hand, §V-J3).
    #[must_use]
    pub fn mirrored(&self) -> Trajectory {
        Trajectory {
            points: self
                .points
                .iter()
                .map(|p| Vec3::new(-p.x, p.y, p.z))
                .collect(),
        }
    }

    /// Maximum distance between consecutive keyframes (m) — a smoothness
    /// diagnostic used by tests.
    #[must_use]
    pub fn max_step_m(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[0].distance(w[1]))
            .fold(0.0, f64::max)
    }

    /// Generate the trajectory for `label` under `params`, seeded by `seed`.
    #[must_use]
    pub fn generate(label: SampleLabel, params: &MotionParams, seed: u64) -> Trajectory {
        let mut rng = StdRng::seed_from_u64(seed);
        match label {
            SampleLabel::Gesture(g) => generate_gesture(g, params, &mut rng),
            SampleLabel::NonGesture(n) => generate_nongesture(n, params, &mut rng),
        }
    }
}

/// Canonical stroke durations in seconds (before the speed factor).
fn nominal_duration(g: Gesture) -> f64 {
    match g {
        Gesture::Circle => 0.9,
        Gesture::DoubleCircle => 1.7,
        Gesture::Rub => 0.6,
        Gesture::DoubleRub => 1.1,
        Gesture::Click => 0.4,
        Gesture::DoubleClick => 0.85,
        Gesture::ScrollUp | Gesture::ScrollDown => 0.6,
    }
}

/// Smoothstep easing.
fn ease(s: f64) -> f64 {
    let s = s.clamp(0.0, 1.0);
    s * s * (3.0 - 2.0 * s)
}

/// Local-coordinate gesture displacement at normalized stroke time
/// `s ∈ [0, 1]`. Units: meters at amplitude 1.
fn stroke(g: Gesture, s: f64, phase: f64, scroll_extent: f64) -> Vec3 {
    let tau = std::f64::consts::TAU;
    match g {
        Gesture::Circle | Gesture::DoubleCircle => {
            // One *micro* loop (thumb-tip drawing against the index tip):
            // the hand stays put; the tip circles ~4 mm laterally and
            // presses toward the sensor through the loop.
            let th = tau * s;
            let r = 0.004;
            Vec3::new(
                r * (th + phase).sin() - r * phase.sin(),
                0.5 * r * (1.0 - (th + phase).cos()) - 0.5 * r * (1.0 - phase.cos()),
                -0.0015 * (1.0 - th.cos()),
            )
        }
        Gesture::Rub | Gesture::DoubleRub => {
            // Micro forth-and-back rub along x with a pressure dip; the
            // whole motion stays within one photodiode pitch. Skin-on-skin
            // friction adds a high-frequency stick-slip texture — the
            // fast oscillation visible in the paper's Fig. 3 rub trace.
            let a = 0.005;
            let texture = 0.0010 * (tau * 9.0 * s + phase).sin() * (std::f64::consts::PI * s).sin();
            Vec3::new(
                a * (tau * s).sin() * (1.0 + 0.15 * phase.sin()),
                0.15 * a * (tau * s).sin().abs(),
                -0.0025 * (tau * 2.0 * s).sin().abs() + texture,
            )
        }
        Gesture::Click | Gesture::DoubleClick => {
            // Sharp press toward the sensor, a brief contact dwell, then
            // release — a flat-bottomed pulse, unlike the smooth circle.
            let depth = 0.008;
            let pulse = (std::f64::consts::PI * s).sin().powi(4);
            Vec3::new(0.001 * (tau * s).sin(), 0.0, -depth * pulse)
        }
        Gesture::ScrollUp | Gesture::ScrollDown => {
            // Sweep along x; ScrollUp enters at −x (past P1 first).
            let span = 0.056; // full crossing: −28 mm → +28 mm
            let from = -span / 2.0;
            let to = from + span * scroll_extent.clamp(0.35, 1.0);
            let x = from + (to - from) * ease(s);
            let arc = -0.002 * (std::f64::consts::PI * s).sin();
            let p = Vec3::new(x, 0.0, arc);
            if g == Gesture::ScrollDown {
                Vec3::new(-p.x, p.y, p.z)
            } else {
                p
            }
        }
    }
}

fn generate_gesture(g: Gesture, params: &MotionParams, rng: &mut StdRng) -> Trajectory {
    let stroke_dur = nominal_duration(g) / params.speed.max(0.2);
    let is_double = matches!(
        g,
        Gesture::DoubleCircle | Gesture::DoubleRub | Gesture::DoubleClick
    );
    // Doubles repeat the single stroke with a gap.
    let (single, base_gesture) = match g {
        Gesture::DoubleCircle => (
            nominal_duration(Gesture::Circle) / params.speed,
            Gesture::Circle,
        ),
        Gesture::DoubleRub => (nominal_duration(Gesture::Rub) / params.speed, Gesture::Rub),
        Gesture::DoubleClick => (
            nominal_duration(Gesture::Click) / params.speed,
            Gesture::Click,
        ),
        other => (stroke_dur, other),
    };
    let gap = if is_double { params.double_gap_s } else { 0.0 };
    let active = if is_double {
        2.0 * single + gap
    } else {
        single
    };
    let total = params.lead_in_s + active + params.lead_out_s;
    let n = (total / KEY_DT).ceil() as usize + 1;

    // Scrolls are positioned by the sweep itself, not by the user's resting
    // x offset (the hand crosses the whole board); other gestures anchor at
    // the rest pose.
    let anchor = if g.is_track_aimed() {
        Vec3::new(0.0, params.base.y, params.base.z)
    } else {
        params.base
    };

    let mut points = Vec::with_capacity(n);
    let mut tremor = TremorState::new(params.tremor_m);
    for k in 0..n {
        let t = k as f64 * KEY_DT;
        let local = if t < params.lead_in_s {
            // For scrolls, hold at the sweep start rather than the origin.
            if g.is_track_aimed() {
                stroke(base_gesture, 0.0, params.phase, params.scroll_extent)
            } else {
                Vec3::ZERO
            }
        } else if t < params.lead_in_s + active {
            let ta = t - params.lead_in_s;
            if is_double {
                if ta < single {
                    stroke(
                        base_gesture,
                        ta / single,
                        params.phase,
                        params.scroll_extent,
                    )
                } else if ta < single + gap {
                    Vec3::ZERO
                } else {
                    stroke(
                        base_gesture,
                        (ta - single - gap) / single,
                        params.phase,
                        params.scroll_extent,
                    )
                }
            } else {
                stroke(
                    base_gesture,
                    ta / single,
                    params.phase,
                    params.scroll_extent,
                )
            }
        } else if g.is_track_aimed() {
            stroke(base_gesture, 1.0, params.phase, params.scroll_extent)
        } else {
            Vec3::ZERO
        };
        let scaled = apply_pose(local, params, anchor);
        points.push(scaled + tremor.step(rng));
    }
    Trajectory::from_points(points)
}

fn generate_nongesture(n: NonGestureKind, params: &MotionParams, rng: &mut StdRng) -> Trajectory {
    let total = match n {
        NonGestureKind::Scratch => params.lead_in_s + 0.9 / params.speed + params.lead_out_s,
        NonGestureKind::Extend => params.lead_in_s + 1.0 / params.speed + params.lead_out_s,
        NonGestureKind::Reposition => params.lead_in_s + 0.9 / params.speed + params.lead_out_s,
    };
    let count = (total / KEY_DT).ceil() as usize + 1;
    let active_start = params.lead_in_s;
    let active_end = total - params.lead_out_s;
    // Scratch: 2–3 random sinusoids. Reposition: one smooth move. Extend:
    // retreat upward/outward.
    let f1 = 3.0 + 4.0 * rng.gen::<f64>();
    let f2 = 4.0 + 5.0 * rng.gen::<f64>();
    let ph1: f64 = rng.gen::<f64>() * std::f64::consts::TAU;
    let ph2: f64 = rng.gen::<f64>() * std::f64::consts::TAU;
    let repos_target = Vec3::new(
        0.012 * (rng.gen::<f64>() - 0.5),
        0.012 * (rng.gen::<f64>() - 0.5),
        0.008 * (rng.gen::<f64>() - 0.5),
    );
    let mut tremor = TremorState::new(params.tremor_m * 1.5);
    let mut points = Vec::with_capacity(count);
    for k in 0..count {
        let t = k as f64 * KEY_DT;
        let s = ((t - active_start) / (active_end - active_start)).clamp(0.0, 1.0);
        let local = match n {
            NonGestureKind::Scratch => {
                let w = (std::f64::consts::PI * s).sin(); // fade in/out
                Vec3::new(
                    0.004 * w * (std::f64::consts::TAU * f1 * t + ph1).sin(),
                    0.003 * w * (std::f64::consts::TAU * f2 * t + ph2).sin(),
                    0.002 * w * (std::f64::consts::TAU * (f1 * 0.7) * t + ph2).cos(),
                )
            }
            NonGestureKind::Extend => Vec3::new(0.008 * ease(s), 0.004 * ease(s), 0.035 * ease(s)),
            NonGestureKind::Reposition => repos_target * ease(s),
        };
        let pos = apply_pose(local, params, params.base);
        points.push(pos + tremor.step(rng));
    }
    Trajectory::from_points(points)
}

/// Scale, tilt (rotate about y) and translate a local displacement.
fn apply_pose(local: Vec3, params: &MotionParams, anchor: Vec3) -> Vec3 {
    let scaled = local * params.amplitude;
    let (c, s) = (params.tilt_rad.cos(), params.tilt_rad.sin());
    let tilted = Vec3::new(
        c * scaled.x + s * scaled.z,
        scaled.y,
        -s * scaled.x + c * scaled.z,
    );
    let mut p = anchor + tilted;
    // A fingertip cannot descend below the shield: clamp at 6 mm.
    p.z = p.z.max(0.006);
    p
}

/// Smooth AR(1) tremor noise.
#[derive(Debug, Clone)]
struct TremorState {
    amp: f64,
    state: Vec3,
}

impl TremorState {
    fn new(amp: f64) -> Self {
        TremorState {
            amp,
            state: Vec3::ZERO,
        }
    }

    fn step(&mut self, rng: &mut StdRng) -> Vec3 {
        let g = |r: &mut StdRng| (r.gen::<f64>() - 0.5) * 2.0;
        // Physiological tremor of a hovering finger is mostly lateral; the
        // axial (pressing) component is much smaller.
        let innov = Vec3::new(g(rng), g(rng), 0.3 * g(rng)) * (self.amp * 0.3);
        self.state = self.state * 0.92 + innov;
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(g: Gesture) -> Trajectory {
        Trajectory::generate(SampleLabel::Gesture(g), &MotionParams::default(), 7)
    }

    #[test]
    fn durations_scale_with_speed() {
        let slow = Trajectory::generate(
            SampleLabel::Gesture(Gesture::Circle),
            &MotionParams {
                speed: 0.8,
                ..Default::default()
            },
            1,
        );
        let fast = Trajectory::generate(
            SampleLabel::Gesture(Gesture::Circle),
            &MotionParams {
                speed: 1.4,
                ..Default::default()
            },
            1,
        );
        assert!(slow.duration_s() > fast.duration_s());
    }

    #[test]
    fn doubles_are_longer_than_singles() {
        assert!(gen(Gesture::DoubleCircle).duration_s() > gen(Gesture::Circle).duration_s());
        assert!(gen(Gesture::DoubleRub).duration_s() > gen(Gesture::Rub).duration_s());
        assert!(gen(Gesture::DoubleClick).duration_s() > gen(Gesture::Click).duration_s());
    }

    #[test]
    fn gesture_starts_and_ends_near_rest() {
        for g in Gesture::DETECT_AIMED {
            let t = gen(g);
            let base = MotionParams::default().base;
            let start = t.position(0.0).unwrap();
            let end = t.position(t.duration_s()).unwrap();
            assert!(start.distance(base) < 0.004, "{g}: start {start:?}");
            assert!(end.distance(base) < 0.004, "{g}: end {end:?}");
        }
    }

    #[test]
    fn scroll_up_moves_left_to_right() {
        let t = gen(Gesture::ScrollUp);
        let first = t.position(0.0).unwrap();
        let last = t.position(t.duration_s()).unwrap();
        assert!(first.x < -0.02, "starts left: {}", first.x);
        assert!(last.x > 0.02, "ends right: {}", last.x);
    }

    #[test]
    fn scroll_down_is_mirror_of_up() {
        let up = gen(Gesture::ScrollUp);
        let down = gen(Gesture::ScrollDown);
        assert!(down.position(0.0).unwrap().x > 0.02);
        assert!(down.position(down.duration_s()).unwrap().x < -0.02);
        assert!((up.duration_s() - down.duration_s()).abs() < 0.02);
    }

    #[test]
    fn partial_scroll_stops_before_far_side() {
        let p = MotionParams {
            scroll_extent: 0.4,
            ..Default::default()
        };
        let t = Trajectory::generate(SampleLabel::Gesture(Gesture::ScrollUp), &p, 3);
        let last = t.position(t.duration_s()).unwrap();
        assert!(
            last.x < 0.005,
            "partial scroll should stay near P1 side: {}",
            last.x
        );
    }

    #[test]
    fn click_dips_toward_sensor() {
        let t = gen(Gesture::Click);
        let base_z = MotionParams::default().base.z;
        let min_z = t.points().iter().map(|p| p.z).fold(f64::INFINITY, f64::min);
        assert!(
            min_z < base_z - 0.006,
            "click depth: {min_z} vs base {base_z}"
        );
    }

    #[test]
    fn double_click_has_two_dips() {
        let t = gen(Gesture::DoubleClick);
        let base_z = MotionParams::default().base.z;
        // Count excursions below base − 5 mm.
        let mut dips = 0;
        let mut below = false;
        for p in t.points() {
            let is_below = p.z < base_z - 0.005;
            if is_below && !below {
                dips += 1;
            }
            below = is_below;
        }
        assert_eq!(dips, 2);
    }

    #[test]
    fn trajectories_are_smooth() {
        for g in Gesture::ALL {
            let t = gen(g);
            // No keyframe jump larger than 3 mm (≤ 0.6 m/s at 5 ms steps).
            assert!(t.max_step_m() < 0.003, "{g}: step {}", t.max_step_m());
        }
    }

    #[test]
    fn amplitude_scales_extent() {
        let small = Trajectory::generate(
            SampleLabel::Gesture(Gesture::Rub),
            &MotionParams {
                amplitude: 0.7,
                tremor_m: 0.0,
                ..Default::default()
            },
            1,
        );
        let large = Trajectory::generate(
            SampleLabel::Gesture(Gesture::Rub),
            &MotionParams {
                amplitude: 1.3,
                tremor_m: 0.0,
                ..Default::default()
            },
            1,
        );
        let extent = |t: &Trajectory| {
            let xs: Vec<f64> = t.points().iter().map(|p| p.x).collect();
            xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - xs.iter().cloned().fold(f64::INFINITY, f64::min)
        };
        assert!(extent(&large) > 1.5 * extent(&small));
    }

    #[test]
    fn mirrored_flips_x_only() {
        let t = gen(Gesture::ScrollUp);
        let m = t.mirrored();
        for (a, b) in t.points().iter().zip(m.points()) {
            assert_eq!(a.x, -b.x);
            assert_eq!(a.y, b.y);
            assert_eq!(a.z, b.z);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = gen(Gesture::Circle);
        let b = gen(Gesture::Circle);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ_via_tremor() {
        let p = MotionParams::default();
        let a = Trajectory::generate(SampleLabel::Gesture(Gesture::Circle), &p, 1);
        let b = Trajectory::generate(SampleLabel::Gesture(Gesture::Circle), &p, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn nongestures_generate_and_move() {
        for n in NonGestureKind::ALL {
            let t = Trajectory::generate(SampleLabel::NonGesture(n), &MotionParams::default(), 5);
            assert!(t.duration_s() > 0.5);
            let spread = t.max_step_m();
            assert!(spread > 0.0, "{n} should move");
        }
    }

    #[test]
    fn extend_retreats_from_sensor() {
        let t = Trajectory::generate(
            SampleLabel::NonGesture(NonGestureKind::Extend),
            &MotionParams::default(),
            5,
        );
        let z0 = t.position(0.0).unwrap().z;
        let z1 = t.position(t.duration_s()).unwrap().z;
        assert!(z1 > z0 + 0.02, "extend: {z0} → {z1}");
    }

    #[test]
    fn position_clamps_and_rejects_negative() {
        let t = gen(Gesture::Click);
        assert_eq!(t.position(-0.1), None);
        assert_eq!(t.position(1e9), Some(*t.points().last().unwrap()));
    }

    #[test]
    fn tilt_mixes_x_into_z() {
        let flat = Trajectory::generate(
            SampleLabel::Gesture(Gesture::Rub),
            &MotionParams {
                tremor_m: 0.0,
                ..Default::default()
            },
            1,
        );
        let tilted = Trajectory::generate(
            SampleLabel::Gesture(Gesture::Rub),
            &MotionParams {
                tilt_rad: 0.4,
                tremor_m: 0.0,
                ..Default::default()
            },
            1,
        );
        let z_spread = |t: &Trajectory| {
            let zs: Vec<f64> = t.points().iter().map(|p| p.z).collect();
            zs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - zs.iter().cloned().fold(f64::INFINITY, f64::min)
        };
        assert!(z_spread(&tilted) > z_spread(&flat));
    }
}
