//! Long-running simulated sessions with scripted fault injection.
//!
//! The corpus generator ([`crate::dataset`]) produces one short trace per
//! gesture trial; soak-testing the streaming engine's health monitoring
//! needs the opposite: a single continuous multi-thousand-sample feed
//! with gestures interleaved at a steady cadence, plus *faults* — the
//! ambient failure modes the paper's §V-J interference study identifies
//! (a directly-pointed IR remote saturating the photodiodes) and the
//! classic hardware one (a sensor dropping out and reading flat).
//!
//! Fault injection works by compositing two full-length `nir-sim`
//! renders of the same scripted session — one clean, one with
//! [`Interference::ir_remote_direct`] — and switching between them per
//! fault window:
//!
//! - [`FaultKind::AmbientSpike`] — samples come from the interference
//!   render: periodic near-saturation bursts that flood the segmenter
//!   and drag the dynamic threshold far from its calibrated baseline.
//! - [`FaultKind::SensorDropout`] — every channel freezes at its last
//!   pre-fault value (a stuck ADC), so ΔRSS² flatlines and segmentation
//!   stalls.
//!
//! Everything is deterministic in the spec: same [`SessionSpec`], same
//! trace, bit for bit.

use crate::gesture::{Gesture, SampleLabel};
use crate::profile::UserProfile;
use crate::trajectory::Trajectory;
use airfinger_nir_sim::ambient::Interference;
use airfinger_nir_sim::noise::NoiseModel;
use airfinger_nir_sim::sampler::{Sampler, Scene};
use airfinger_nir_sim::trace::RssTrace;
use airfinger_nir_sim::SensorLayout;

/// Which failure mode a fault window injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Directly-pointed IR remote: near-saturation interference bursts.
    AmbientSpike,
    /// Stuck sensor: all channels hold their last pre-fault value.
    SensorDropout,
}

/// One scripted fault window, in sample indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Failure mode.
    pub kind: FaultKind,
    /// First affected sample.
    pub start: usize,
    /// Length in samples.
    pub duration: usize,
}

impl Fault {
    /// Whether `sample` falls inside this window.
    #[must_use]
    pub fn covers(&self, sample: usize) -> bool {
        sample >= self.start && sample < self.start + self.duration
    }
}

/// A scripted continuous session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// Session length in samples.
    pub samples: usize,
    /// Master seed; the whole session derives deterministically.
    pub seed: u64,
    /// Which volunteer performs the gestures.
    pub user: usize,
    /// One gesture starts every this many seconds, cycling through the
    /// 8-gesture set.
    pub gesture_period_s: f64,
    /// ADC sample rate.
    pub sample_rate_hz: f64,
    /// Scripted fault windows (may be empty: a clean session).
    pub faults: Vec<Fault>,
}

impl Default for SessionSpec {
    fn default() -> Self {
        SessionSpec {
            samples: 2000,
            seed: 0x41F1_6E12,
            user: 0,
            gesture_period_s: 2.5,
            sample_rate_hz: 100.0,
            faults: Vec::new(),
        }
    }
}

impl SessionSpec {
    /// Session length in seconds.
    #[must_use]
    pub fn duration_s(&self) -> f64 {
        self.samples as f64 / self.sample_rate_hz.max(1.0)
    }
}

/// The standard fault schedule used by `airfinger monitor --fault` and
/// the `soak` bench experiment: an ambient spike over [20%, 45%) of the
/// session and/or a sensor dropout over [45%, 95%), back-to-back so a
/// spike-degraded engine slides straight into the stall without an
/// intervening recovery (one unhealthy episode ⇒ exactly one dump).
#[must_use]
pub fn standard_fault_schedule(samples: usize, spike: bool, dropout: bool) -> Vec<Fault> {
    let at = |pct: usize| samples * pct / 100;
    let mut faults = Vec::new();
    if spike {
        faults.push(Fault {
            kind: FaultKind::AmbientSpike,
            start: at(20),
            duration: at(45) - at(20),
        });
    }
    if dropout {
        faults.push(Fault {
            kind: FaultKind::SensorDropout,
            start: at(45),
            duration: at(95) - at(45),
        });
    }
    faults
}

/// Render the session: a continuous trace with gestures every
/// [`SessionSpec::gesture_period_s`] and the scripted faults applied.
#[must_use]
pub fn generate_session(spec: &SessionSpec) -> RssTrace {
    let rate = spec.sample_rate_hz.max(1.0);
    let duration_s = spec.duration_s();
    let profile = UserProfile::sample(spec.user, spec.seed);
    let rest = profile.base;
    let period = spec.gesture_period_s.max(0.5);

    // Script: gesture k starts at k·period (+ a lead-in), cycling the set.
    let slots = (duration_s / period).floor() as usize;
    let trajectories: Vec<(f64, Trajectory)> = (0..slots)
        .map(|k| {
            let label = SampleLabel::Gesture(Gesture::ALL[k % Gesture::ALL.len()]);
            let params = profile.trial_params(label, 0, k, spec.seed);
            (
                k as f64 * period + 0.3,
                Trajectory::generate(label, &params, spec.seed.wrapping_add(k as u64)),
            )
        })
        .collect();
    let trajectory = move |t: f64| {
        for (start, traj) in &trajectories {
            if t >= *start && t < *start + traj.duration_s() {
                return traj.position(t - *start);
            }
        }
        Some(rest)
    };

    // Two full-length renders of the same script: clean, and drowned in
    // ambient interference. Identical seed ⇒ identical underlying random
    // stream, so switching regimes mid-session stays coherent.
    let scene = Scene::new(SensorLayout::paper_prototype());
    // The spike regime layers a directly-pointed IR remote (pressed much
    // harder than the stock `ir_remote_direct`, so every fault window
    // catches bursts) on top of a flooded noise floor — broadband ambient
    // pickup that drags the segmenter's Otsu threshold off its calibrated
    // baseline, which is exactly the drift signature the health monitor's
    // SLO rules watch for.
    let spike_scene = scene
        .clone()
        .with_interference(Interference::IrRemote {
            presses_per_s: 2.0,
            amplitude: 4000.0,
            direct: true,
        })
        .with_noise(NoiseModel {
            thermal_sigma: 6.0,
            ..NoiseModel::prototype()
        });
    let clean = Sampler::new(scene, rate).sample(duration_s, spec.seed, &trajectory);
    let needs_spike = spec
        .faults
        .iter()
        .any(|f| f.kind == FaultKind::AmbientSpike);
    let spiked = if needs_spike {
        Some(Sampler::new(spike_scene, rate).sample(duration_s, spec.seed, &trajectory))
    } else {
        None
    };

    let len = spec.samples.min(clean.len());
    let n_channels = clean.channel_count();
    let mut channels: Vec<Vec<f64>> = vec![Vec::with_capacity(len); n_channels];
    let mut held: Vec<f64> = (0..n_channels)
        .map(|k| clean.channel(k).first().copied().unwrap_or(0.0))
        .collect();
    for i in 0..len {
        let fault = spec.faults.iter().find(|f| f.covers(i)).map(|f| f.kind);
        for (k, channel) in channels.iter_mut().enumerate() {
            let value = match fault {
                Some(FaultKind::SensorDropout) => held[k],
                Some(FaultKind::AmbientSpike) => match &spiked {
                    Some(s) => s.channel(k)[i],
                    None => clean.channel(k)[i],
                },
                None => clean.channel(k)[i],
            };
            if fault != Some(FaultKind::SensorDropout) {
                held[k] = value;
            }
            channel.push(value);
        }
    }
    RssTrace::from_channels(channels, rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_is_deterministic() {
        let spec = SessionSpec {
            samples: 800,
            ..Default::default()
        };
        let a = generate_session(&spec);
        let b = generate_session(&spec);
        assert_eq!(a, b);
        assert_eq!(a.len(), 800);
        assert_eq!(a.channel_count(), 3);
    }

    #[test]
    fn gestures_modulate_the_clean_session() {
        let spec = SessionSpec {
            samples: 1000,
            ..Default::default()
        };
        let trace = generate_session(&spec);
        let ch0 = trace.channel(0);
        let (min, max) = ch0
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            });
        assert!(max - min > 1.0, "gesture activity visible: {min}..{max}");
    }

    #[test]
    fn dropout_freezes_every_channel() {
        let spec = SessionSpec {
            samples: 600,
            faults: vec![Fault {
                kind: FaultKind::SensorDropout,
                start: 300,
                duration: 200,
            }],
            ..Default::default()
        };
        let trace = generate_session(&spec);
        for k in 0..trace.channel_count() {
            let ch = trace.channel(k);
            let frozen = ch[299];
            assert!(
                ch[300..500].iter().all(|&v| v == frozen),
                "channel {k} frozen during dropout"
            );
        }
        // Live again afterwards.
        let clean = generate_session(&SessionSpec {
            samples: 600,
            ..Default::default()
        });
        assert_eq!(trace.channel(0)[550], clean.channel(0)[550]);
    }

    #[test]
    fn spike_diverges_from_clean_inside_the_window() {
        let samples = 600;
        let spec = SessionSpec {
            samples,
            faults: standard_fault_schedule(samples, true, false),
            ..Default::default()
        };
        let spiked = generate_session(&spec);
        let clean = generate_session(&SessionSpec {
            samples,
            ..Default::default()
        });
        let window = 120..270; // [20%, 45%)
        let diverging = window
            .clone()
            .filter(|&i| (spiked.channel(0)[i] - clean.channel(0)[i]).abs() > 1.0)
            .count();
        assert!(diverging > 20, "spike visible in {diverging} samples");
        // Outside the fault the renders agree.
        assert_eq!(spiked.channel(0)[50], clean.channel(0)[50]);
        assert_eq!(spiked.channel(0)[400], clean.channel(0)[400]);
    }

    #[test]
    fn standard_schedule_is_back_to_back() {
        let faults = standard_fault_schedule(1000, true, true);
        assert_eq!(faults.len(), 2);
        assert_eq!(faults[0].start + faults[0].duration, faults[1].start);
        assert_eq!(faults[1].start + faults[1].duration, 950);
    }
}
