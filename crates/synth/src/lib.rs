//! Synthetic micro finger gesture corpus generator.
//!
//! The paper's evaluation rests on a 10,000-sample corpus recorded from 10
//! volunteers (8 gestures × 5 sessions × 25 repetitions), plus a series of
//! condition studies (sensing distance, ambient light by time of day,
//! non-dominant hand, wristband activities, unintentional motions,
//! interference). None of that data is published, so this crate generates
//! it synthetically:
//!
//! * [`gesture`] — the 8-gesture set of Fig. 2 and the non-gesture kinds of
//!   §V-J1.
//! * [`trajectory`] — parametric fingertip paths for every gesture,
//!   sampled into keyframes.
//! * [`profile`] — the two-level random-effects model: per-user profiles
//!   (speed, amplitude, resting pose, tilt, tremor) drawn once per
//!   volunteer, per-session drifts, and per-trial jitter. Between-user
//!   variance deliberately exceeds between-session variance, which is the
//!   paper's own observation (leave-one-user-out hurts, leave-one-
//!   session-out barely does).
//! * [`conditions`] — recording-condition variants for the §V experiments.
//! * [`dataset`] — corpus assembly and (de)serialization.
//! * [`session`] — continuous multi-thousand-sample soak sessions with
//!   scripted fault injection (ambient spikes, sensor dropout) for the
//!   streaming engine's health monitoring.
//!
//! # Example
//!
//! ```
//! use airfinger_synth::dataset::{CorpusSpec, generate_corpus};
//!
//! let spec = CorpusSpec { users: 2, sessions: 1, reps: 2, ..Default::default() };
//! let corpus = generate_corpus(&spec);
//! assert_eq!(corpus.len(), 2 * 1 * 2 * 8); // users × sessions × reps × gestures
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conditions;
pub mod dataset;
pub mod gesture;
pub mod profile;
pub mod session;
pub mod trajectory;

pub use conditions::Condition;
pub use dataset::{generate_corpus, Corpus, CorpusSpec, GestureSample};
pub use gesture::{Gesture, NonGestureKind, SampleLabel};
pub use profile::UserProfile;
pub use session::{generate_session, Fault, FaultKind, SessionSpec};
pub use trajectory::Trajectory;

/// Deterministically combine seed components (splitmix64-style).
#[must_use]
pub fn mix_seed(parts: &[u64]) -> u64 {
    let mut h = 0x9E37_79B9_7F4A_7C15u64;
    for &p in parts {
        let mut z = h ^ p.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h = z ^ (z >> 31);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_seed_is_deterministic() {
        assert_eq!(mix_seed(&[1, 2, 3]), mix_seed(&[1, 2, 3]));
    }

    #[test]
    fn mix_seed_is_order_sensitive() {
        assert_ne!(mix_seed(&[1, 2]), mix_seed(&[2, 1]));
    }

    #[test]
    fn mix_seed_spreads_small_inputs() {
        let a = mix_seed(&[0]);
        let b = mix_seed(&[1]);
        assert!((a ^ b).count_ones() > 10);
    }
}
